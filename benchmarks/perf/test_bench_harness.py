"""Smoke tests for the perf harness and its compare gate.

These run one tiny workload through the real measurement loop (so the
BENCH payload schema stays exercised in tier-1) and check the compare
gate's pass/fail behaviour with doctored payloads.  The actual speedup
numbers are asserted only loosely here — the CI perf job and the committed
baseline gate the real magnitudes.
"""

from __future__ import annotations

import copy
import json

import pytest

from repro.bench import (
    BENCH_SCHEMA_VERSION,
    BenchWorkload,
    CampaignBench,
    compare_payloads,
    load_payload,
    render_report,
    run_benchmarks,
)
from repro.bench.__main__ import main as bench_main
from repro.bench.harness import _build_system

TINY = BenchWorkload(
    name="small/round_robin/load",
    preset="small",
    arbiter="round_robin",
    iterations=120,
    quick_iterations=120,
)

TINY_CAMPAIGN = CampaignBench(
    name="small/tiny",
    preset="small",
    seeds=(7,),
    quick_seeds=(7,),
    workloads=1,
    quick_workloads=1,
    iterations=4,
    quick_iterations=4,
    rsk_iterations=8,
    quick_rsk_iterations=8,
    jobs_axis=(2,),
)


@pytest.fixture(scope="module")
def payload():
    return run_benchmarks(
        workloads=(TINY,), quick=True, repeats=1, rev="test", campaigns=(TINY_CAMPAIGN,)
    )


class TestHarness:
    def test_payload_schema(self, payload):
        assert payload["schema"] == BENCH_SCHEMA_VERSION
        assert payload["rev"] == "test"
        (entry,) = payload["workloads"]
        assert entry["name"] == TINY.name
        assert entry["cycles"] > 0
        assert entry["engines"]["stepped"]["cycles"] == entry["engines"]["event"]["cycles"]
        assert entry["engines"]["stepped"]["cycles"] == entry["engines"]["codegen"]["cycles"]
        assert entry["speedup"] > 0
        assert entry["speedups"]["event"] == entry["speedup"]
        assert entry["speedups"]["codegen"] > 0
        assert entry["speedups"]["replay"] > 0
        assert payload["summary"]["min_speedup"] == entry["speedup"]
        assert set(payload["summary"]["engines"]) == {"event", "codegen", "replay"}

    def test_payload_is_json_serialisable(self, payload):
        rebuilt = json.loads(json.dumps(payload))
        assert rebuilt["workloads"][0]["name"] == TINY.name

    def test_render_report_mentions_every_workload(self, payload):
        report = render_report(payload)
        assert TINY.name in report
        assert "speedup" in report

    def test_bank_queue_workload_measures_and_stamps_topology(self):
        """The bank-contention scenario runs through the harness: a chained
        topology, no L2 preload (every miss arbitrates for its bank) and the
        cross-engine cycle check that run_benchmarks performs internally."""
        chained = BenchWorkload(
            name="small/round_robin/load-bank-queues",
            preset="small",
            arbiter="round_robin",
            topology="bus_bank_queues",
            preload_l2=False,
            iterations=80,
            quick_iterations=80,
        )
        payload = run_benchmarks(workloads=(chained,), quick=True, repeats=1, rev="t")
        (entry,) = payload["workloads"]
        assert entry["topology"] == "bus_bank_queues"
        assert entry["engines"]["stepped"]["cycles"] == entry["engines"]["event"]["cycles"]

    def test_campaign_entry_schema_and_guarantees(self, payload):
        """The campaigns section records cold/warm runs-per-sec, the gated
        warm_speedup ratio and the parallel-efficiency series; the warm
        phase must have answered from the index alone (zero artifact
        reads, zero simulations — violations raise inside the harness)."""
        (entry,) = payload["campaigns"]
        assert entry["name"] == TINY_CAMPAIGN.name
        assert entry["runs"] == 2  # one workload + the rsk reference
        assert entry["unique_runs"] == 2
        assert entry["cold"]["runs_per_sec"] > 0
        assert entry["warm"]["runs_per_sec"] > 0
        # A warm re-run skips every simulation, so it must beat cold.
        assert entry["warm_speedup"] > 1.0
        assert entry["warm"]["counters"]["artifact_reads"] == 0
        assert entry["warm"]["counters"]["index_queries"] >= 1
        assert set(entry["parallel"]) == {"2"}
        series = entry["parallel"]["2"]
        assert series["runs_per_sec"] > 0
        assert series["efficiency"] == pytest.approx(series["speedup"] / 2)
        assert payload["summary"]["campaign_geomean_warm_speedup"] > 1.0

    def test_campaigns_render_and_serialise(self, payload):
        report = render_report(payload)
        assert TINY_CAMPAIGN.name in report
        assert "warm" in report
        rebuilt = json.loads(json.dumps(payload))
        assert rebuilt["campaigns"][0]["name"] == TINY_CAMPAIGN.name

    def test_campaign_family_can_be_skipped(self):
        payload = run_benchmarks(
            workloads=(TINY,), quick=True, repeats=1, rev="t", campaigns=()
        )
        assert payload["campaigns"] == []
        assert payload["summary"]["campaign_geomean_warm_speedup"] is None

    def test_topology_bearing_preset_keeps_its_topology(self):
        """A workload that does not override the topology runs on the
        preset's own — multi_resource must not silently downgrade to
        bus_only — and the payload entry records the effective topology."""
        workload = BenchWorkload(
            name="multi_resource/round_robin/load",
            preset="multi_resource",
            arbiter="round_robin",
            preload_l2=False,
            iterations=60,
            quick_iterations=60,
        )
        system, _ = _build_system(workload, quick=True)
        assert system.config.topology.name == "bus_bank_queues"
        payload = run_benchmarks(workloads=(workload,), quick=True, repeats=1, rev="t")
        assert payload["workloads"][0]["topology"] == "bus_bank_queues"


class TestCompareGate:
    def test_identical_payloads_pass(self, payload):
        result = compare_payloads(payload, payload)
        assert result.ok
        assert not result.regressions

    def test_regression_fails(self, payload):
        slower = copy.deepcopy(payload)
        slower["workloads"][0]["speedup"] *= 0.5
        result = compare_payloads(payload, slower, max_regression=0.15)
        assert not result.ok
        assert result.regressions == [TINY.name]
        assert "REGRESSED" in result.render()

    def test_within_tolerance_passes(self, payload):
        slightly = copy.deepcopy(payload)
        slightly["workloads"][0]["speedup"] *= 0.9
        assert compare_payloads(payload, slightly, max_regression=0.15).ok

    def test_codegen_speedup_metric_gates_the_generated_loop(self, payload):
        """The codegen leg of the perf job gates entry["speedups"]["codegen"]
        — a regression of the generated loop must fail even when the event
        engine's legacy speedup scalar is untouched."""
        slower = copy.deepcopy(payload)
        slower["workloads"][0]["speedups"]["codegen"] *= 0.5
        assert compare_payloads(payload, slower, metric="codegen_speedup").ok is False
        assert compare_payloads(payload, slower, metric="speedup").ok

    def test_campaign_warm_speedup_metric_gates_the_store_path(self, payload):
        """The campaign leg of the perf job gates entry["warm_speedup"] of
        the campaigns section — a slower warm-hit path must fail even when
        every engine workload is untouched, and vice versa."""
        slower = copy.deepcopy(payload)
        slower["campaigns"][0]["warm_speedup"] *= 0.5
        assert compare_payloads(payload, slower, metric="campaign_warm_speedup").ok is False
        assert compare_payloads(payload, slower, metric="speedup").ok

    def test_missing_workload_fails(self, payload):
        empty = copy.deepcopy(payload)
        empty["workloads"] = []
        result = compare_payloads(payload, empty)
        assert not result.ok
        assert "MISSING" in result.render()

    def test_new_workloads_are_additions_warn_not_fail(self, payload):
        """Scenarios missing from the baseline are additions: reported with
        a refresh-the-baseline warning, but never gated, so adding bench
        coverage cannot break the perf gate."""
        grown = copy.deepcopy(payload)
        extra = copy.deepcopy(grown["workloads"][0])
        extra["name"] = "extra/workload"
        grown["workloads"].append(extra)
        result = compare_payloads(payload, grown)
        assert result.ok
        assert not result.regressions
        rendered = result.render()
        assert "ADDED" in rendered
        assert "warning" in rendered
        assert "extra/workload" in rendered


class TestCli:
    def test_run_and_compare_round_trip(self, tmp_path, capsys):
        code = bench_main(
            [
                "run",
                "--quick",
                "--repeats",
                "1",
                "--rev",
                "cli-test",
                "--out",
                str(tmp_path),
                "--workload",
                "ref/round_robin/load",
            ]
        )
        assert code == 0
        artifact = tmp_path / "BENCH_cli-test.json"
        assert artifact.is_file()
        payload = load_payload(artifact)
        assert payload["workloads"][0]["name"] == "ref/round_robin/load"
        code = bench_main(["compare", str(artifact), str(artifact), "--max-regression", "0.15"])
        assert code == 0
        out = capsys.readouterr().out
        assert "PASS" in out

    def test_compare_rejects_newer_schema_but_loads_older(self, tmp_path):
        """A payload stamped by a *newer* tool is refused (its metrics may
        have changed meaning); an *older* stamp loads fine — the section
        layout is append-only and compare warns on metrics it predates."""
        newer = tmp_path / "BENCH_newer.json"
        newer.write_text(
            json.dumps({"schema": BENCH_SCHEMA_VERSION + 1, "workloads": []}),
            encoding="utf-8",
        )
        with pytest.raises(ValueError):
            load_payload(newer)
        older = tmp_path / "BENCH_older.json"
        older.write_text(json.dumps({"schema": 1, "workloads": []}), encoding="utf-8")
        assert load_payload(older)["schema"] == 1
        not_an_int = tmp_path / "BENCH_bad.json"
        not_an_int.write_text(json.dumps({"schema": "x", "workloads": []}), encoding="utf-8")
        with pytest.raises(ValueError):
            load_payload(not_an_int)
