"""Ablation: contention under different arbitration policies.

The paper's related-work section contrasts round robin with TDMA and
priority-based schemes.  This ablation runs the same saturated rsk workload
under four arbiters on the small validation platform and reports the
contention-delay distribution of the observed core:

* round robin — bounded by ``ubd`` and independent of the observed core;
* FIFO (first-come-first-served) — similar magnitude under symmetric load;
* fixed priority — the highest-priority core sees almost no contention, so a
  bound measured there says nothing about the other cores (not composable);
* TDMA — bounded but not work conserving: the observed worst case grows to a
  full TDMA round even though the bus has idle slots.
"""

from __future__ import annotations

from repro.analysis.contention import contention_histogram
from repro.config import small_config
from repro.kernels.rsk import build_rsk
from repro.methodology.experiment import build_contender_set
from repro.report.tables import render_table
from repro.sim.arbiter import (
    FifoArbiter,
    FixedPriorityArbiter,
    RoundRobinArbiter,
    TdmaArbiter,
)
from repro.sim.system import System

from .conftest import write_artifact


def run_with_arbiter(config, arbiter, iterations: int):
    scua = build_rsk(config, 0, iterations=iterations)
    contenders = build_contender_set(config, scua_core=0)
    programs = [scua] + [contenders[core] for core in sorted(contenders)]
    system = System(
        config, programs, trace=True, preload_l2=True, preload_il1=True, arbiter=arbiter
    )
    result = system.run(observed_cores=[0])
    histogram = contention_histogram(result.trace, 0)
    return histogram, result


def run_ablation(iterations: int):
    config = small_config()
    ports = config.num_cores + 1
    slot = config.bus_service_l2_hit
    arbiters = {
        "round_robin": RoundRobinArbiter(ports),
        "fifo": FifoArbiter(ports),
        "fixed_priority (observed highest)": FixedPriorityArbiter(ports),
        "tdma": TdmaArbiter(ports, slot_cycles=slot),
    }
    rows = []
    data = {}
    for name, arbiter in arbiters.items():
        histogram, result = run_with_arbiter(config, arbiter, iterations)
        data[name] = histogram
        rows.append(
            [
                name,
                config.ubd,
                histogram.max_observed,
                histogram.mode,
                result.execution_time(0),
            ]
        )
    return config, rows, data


def test_ablation_arbitration_policies(benchmark, artifact_dir, quick_mode):
    iterations = 40 if quick_mode else 120
    config, rows, data = benchmark.pedantic(
        run_ablation, args=(iterations,), rounds=1, iterations=1
    )
    by_name = {row[0]: row for row in rows}

    # Round robin: the observed plateau follows Equation 2 and never exceeds ubd.
    assert by_name["round_robin"][2] <= config.ubd
    assert by_name["round_robin"][3] == config.ubd - config.expected_rsk_injection_time
    # Fixed priority with the observed core on top: almost no contention, hence
    # a measurement there cannot be reused as a bound for other cores.
    assert by_name["fixed_priority (observed highest)"][2] < by_name["round_robin"][2]
    # TDMA: the worst observed delay reaches at least the round-robin bound
    # (it waits for its slot even when the bus idles).
    assert by_name["tdma"][2] >= by_name["round_robin"][2]
    # FIFO stays bounded by a full round under symmetric saturated load.
    assert by_name["fifo"][2] <= config.ubd + config.bus_service_l2_hit

    table = render_table(
        ["arbiter", "RR ubd (Eq. 1)", "max gamma observed", "modal gamma", "exec time"],
        rows,
    )
    write_artifact(artifact_dir, "ablation_arbiters.txt", table)
