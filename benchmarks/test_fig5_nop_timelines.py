"""Figure 5: the effect of inserting nop instructions between bus accesses.

The figure walks through the reference scenario (delta_rsk = 1, gamma = 5 in
its small example) and shows how adding k = 1, 2, 5, 6 nops moves the request
within the round-robin window: the contention first decreases step by step and
then jumps back up once the injection time crosses a multiple of ubd.

This benchmark reproduces the walk-through on the full reference platform
(ubd = 27): for each k it runs ``rsk-nop(load, k)`` against three rsk and
records the per-request contention delay observed on the bus trace.
"""

from __future__ import annotations

from repro.analysis.contention import contention_histogram
from repro.analysis.model import gamma_of_delta
from repro.config import reference_config
from repro.kernels.rsk import build_rsk_nop
from repro.methodology.experiment import ExperimentRunner
from repro.report.tables import render_table

from .conftest import write_artifact

#: The nop counts Figure 5 walks through, extended to the points where the
#: reference platform's tooth bottoms out (k = 26) and re-arms (k = 27).
K_VALUES = (0, 1, 2, 5, 6, 25, 26, 27)


def measure(iterations: int = 25):
    config = reference_config()
    runner = ExperimentRunner(config)
    rows = []
    for k in K_VALUES:
        scua = build_rsk_nop(config, 0, k=k, iterations=iterations)
        contended = runner.run_against_rsk(scua, trace=True)
        histogram = contention_histogram(contended.trace, 0)
        delta = config.expected_rsk_injection_time + k
        rows.append(
            [
                k,
                delta,
                gamma_of_delta(delta, config.ubd),
                histogram.mode,
                round(histogram.fraction_at_mode(), 3),
            ]
        )
    return rows


def test_fig5_nop_insertion_timeline(benchmark, artifact_dir, quick_mode):
    iterations = 10 if quick_mode else 25
    rows = benchmark.pedantic(measure, args=(iterations,), rounds=1, iterations=1)
    by_k = {row[0]: row for row in rows}

    # Figure 5(a)-(c): adding nops decreases the contention one cycle at a time.
    assert by_k[1][3] == by_k[0][3] - 1
    assert by_k[2][3] == by_k[0][3] - 2
    assert by_k[5][3] == by_k[0][3] - 5
    # Figure 5(d): once delta crosses a multiple of ubd the contention jumps up.
    assert by_k[27][3] > by_k[26][3]
    # Simulation matches the analytical prediction everywhere.
    for k, delta, predicted, measured, fraction in rows:
        assert predicted == measured
        assert fraction > 0.9, "the synchrony effect pins nearly every request to one delay"

    table = render_table(
        ["k (nops)", "delta", "gamma predicted", "gamma measured", "fraction at mode"], rows
    )
    write_artifact(artifact_dir, "fig5_nop_timelines.txt", table)
