"""Benchmark harness regenerating every table and figure of the paper."""
