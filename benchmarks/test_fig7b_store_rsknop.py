"""Figure 7(b): slowdown of the store rsk-nop as a function of the nop count.

With store kernels the per-core store buffer decouples the core from the bus:
stores retire into the buffer and the core only stalls when it is full.  As a
result the slowdown curve shows a single decreasing stretch — spanning
roughly one contended drain interval — and collapses to (exactly) zero once
the injection time exceeds it, because the buffer then hides the entire bus
latency.

The paper reports the decreasing stretch spanning k in [1..28] (one cycle
more than ubd, attributed to the buffer's size and processing time).  In this
reproduction the stretch extends to ``ubd + lbus - delta_rsk`` because the
modelled buffer frees a slot only when the store's full bus occupancy ends;
the qualitative shape — one saw-tooth flank, then zero — is preserved, and
EXPERIMENTS.md records the deviation.
"""

from __future__ import annotations

from repro.config import reference_config
from repro.methodology.ubd import UbdEstimator
from repro.report.tables import render_table

from .conftest import write_artifact


def sweep_store(k_max: int, iterations: int):
    config = reference_config()
    estimator = UbdEstimator(
        config, instruction_type="store", k_max=k_max, iterations=iterations,
        auto_extend=False,
    )
    return estimator.sweep(list(range(1, k_max + 1)))


def test_fig7b_store_rsknop_slowdown(benchmark, artifact_dir, quick_mode):
    config = reference_config()
    drain_interval = config.ubd + config.bus_service_l2_hit
    k_max = drain_interval + 10
    iterations = 12 if quick_mode else 40
    points = benchmark.pedantic(sweep_store, args=(k_max, iterations), rounds=1, iterations=1)

    dbus = [point.dbus for point in points]
    ks = [point.k for point in points]

    # Shape of Figure 7(b): a non-increasing first stretch ...
    assert dbus[0] > 0
    assert all(a >= b for a, b in zip(dbus, dbus[1:]))
    # ... and exactly zero slowdown once the store buffer hides the bus.
    tail = [value for k, value in zip(ks, dbus) if k >= drain_interval]
    assert tail and all(value == 0 for value in tail)
    # The zero-crossing falls within a few cycles of one contended drain
    # interval, i.e. it still reveals a quantity tied to ubd.
    first_zero_k = next(k for k, value in zip(ks, dbus) if value == 0)
    assert config.ubd - 2 <= first_zero_k <= drain_interval + 2

    table = render_table(["k (nops)", "dbus store (cycles)"], list(zip(ks, dbus)))
    header = (
        f"First zero-slowdown k = {first_zero_k} "
        f"(ubd = {config.ubd}, contended drain interval = {drain_interval})\n\n"
    )
    write_artifact(artifact_dir, "fig7b_store_rsknop.txt", header + table)
