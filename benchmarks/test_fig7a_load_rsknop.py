"""Figure 7(a): slowdown of the load rsk-nop as a function of the nop count.

For both the ``ref`` and ``var`` platforms, ``rsk-nop(load, k)`` runs against
three load rsk contenders for every k in the sweep; the plotted quantity is
the slowdown versus isolation, ``dbus(load, k)``.  The curve is saw-tooth
shaped and its period is the same — 27 cycles — on both platforms, even
though their absolute slowdown levels differ.  The period *is* the measured
``ubd``; that the two setups agree is the robustness evidence of Section 5.3.
"""

from __future__ import annotations

from repro.analysis.sawtooth import SawtoothAnalyzer
from repro.config import reference_config, variant_config
from repro.methodology.ubd import UbdEstimator
from repro.report.tables import render_table

from .conftest import write_artifact


def sweep_both_platforms(k_max: int, iterations: int):
    results = {}
    for config in (reference_config(), variant_config()):
        estimator = UbdEstimator(
            config, instruction_type="load", k_max=k_max, iterations=iterations,
            auto_extend=False,
        )
        points = estimator.sweep(list(range(1, k_max + 1)))
        results[config.name] = points
    return results


def test_fig7a_load_rsknop_slowdown(benchmark, artifact_dir, quick_mode):
    k_max = 56 if not quick_mode else 56  # two full periods are required
    iterations = 12 if quick_mode else 40
    results = benchmark.pedantic(
        sweep_both_platforms, args=(k_max, iterations), rounds=1, iterations=1
    )
    ubd = reference_config().ubd

    periods = {}
    for name, points in results.items():
        ks = [point.k for point in points]
        dbus = [point.dbus for point in points]
        estimate = SawtoothAnalyzer(ks, dbus).estimate()
        periods[name] = estimate.period_k
        # The bus stays saturated throughout (confidence condition).
        assert min(point.bus_utilisation for point in points) > 0.95

    # The paper's reading of Figure 7(a): period 27 = 54 - 27 on ref and
    # 27 = 51 - 24 on var; identical on both platforms and equal to ubd.
    assert periods["ref"] == ubd
    assert periods["var"] == ubd
    assert periods["ref"] == periods["var"]

    rows = []
    for k_index in range(k_max):
        rows.append(
            [
                results["ref"][k_index].k,
                results["ref"][k_index].dbus,
                results["var"][k_index].dbus,
            ]
        )
    table = render_table(["k (nops)", "dbus ref (cycles)", "dbus var (cycles)"], rows)
    header = (
        f"Detected saw-tooth period: ref = {periods['ref']}, var = {periods['var']} "
        f"(analytical ubd = {ubd})\n\n"
    )
    write_artifact(artifact_dir, "fig7a_load_rsknop.txt", header + table)
