"""Ablation: robustness of the methodology to the platform's injection time.

The paper evaluates two L1 latencies (1 and 4 cycles).  This ablation sweeps
the DL1 latency further: the naive plateau (what a direct measurement sees)
drifts with the injection time, while the saw-tooth period recovered by the
rsk-nop methodology stays pinned at the analytical ubd.
"""

from __future__ import annotations

from repro.analysis.contention import contention_histogram
from repro.config import CacheConfig, small_config
from repro.kernels.rsk import build_rsk
from repro.methodology.experiment import ExperimentRunner
from repro.methodology.ubd import UbdEstimator
from repro.report.tables import render_table

from .conftest import write_artifact

L1_LATENCIES = (1, 2, 3, 4, 5)


def platform_with_l1_latency(latency: int):
    """A 4-core variant of the small platform.

    Four cores (rather than the small preset's three) keep the bus saturated
    by the ``Nc - 1`` contenders even at the largest swept injection time —
    the methodology's precondition (Section 4.3): saturation requires
    ``delta_rsk <= (Nc - 2) * lbus``.
    """
    from repro.config import L2Config

    return small_config(
        num_cores=4,
        il1=CacheConfig(size_bytes=1024, ways=2, hit_latency=latency),
        dl1=CacheConfig(size_bytes=1024, ways=2, hit_latency=latency),
        l2=L2Config(cache=CacheConfig(size_bytes=32 * 1024, ways=4, line_size=32, hit_latency=2)),
    )


def run_sweep(iterations: int):
    rows = []
    for latency in L1_LATENCIES:
        config = platform_with_l1_latency(latency)
        runner = ExperimentRunner(config)
        scua = build_rsk(config, 0, iterations=iterations)
        contended = runner.run_against_rsk(scua, trace=True)
        plateau = contention_histogram(contended.trace, 0).mode
        result = UbdEstimator(
            config, k_max=2 * config.ubd + 4, iterations=max(10, iterations // 4)
        ).run()
        rows.append([latency, config.ubd, plateau, result.ubdm])
    return rows


def test_ablation_injection_time_robustness(benchmark, artifact_dir, quick_mode):
    iterations = 30 if quick_mode else 80
    rows = benchmark.pedantic(run_sweep, args=(iterations,), rounds=1, iterations=1)

    ubd = rows[0][1]
    for latency, ubd_value, plateau, ubdm in rows:
        assert ubd_value == ubd, "changing the L1 latency must not change ubd"
        assert plateau == ubd - latency, "the naive plateau follows Equation 2"
        assert ubdm == ubd, "the methodology must stay latency independent"
    # The plateaus are all different (so a naive measurement is platform bound)...
    assert len({row[2] for row in rows}) == len(rows)
    # ...while the methodology returns one and the same value everywhere.
    assert len({row[3] for row in rows}) == 1

    table = render_table(
        ["L1 latency (delta_rsk)", "ubd", "naive plateau (ubd - delta)", "ubdm (rsk-nop)"],
        rows,
    )
    write_artifact(artifact_dir, "ablation_injection_time.txt", table)
