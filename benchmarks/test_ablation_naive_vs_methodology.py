"""Ablation: the naive det/nr estimate versus the rsk-nop methodology.

Sections 3.1 and 3.2 of the paper argue that the classic approach — run a
scua against rsk contenders and divide the slowdown by the request count —
depends on which scua is used and underestimates ``ubd``.  This ablation
quantifies that on the reference platform: the naive estimate is computed for
several scuas (the rsk itself and bus-heavy synthetic kernels), and compared
with the scua-independent rsk-nop result and the analytical bound, together
with the ETB each bound would produce for one task.
"""

from __future__ import annotations

from repro.config import reference_config
from repro.kernels.rsk import build_rsk
from repro.kernels.synthetic import build_synthetic_kernel
from repro.methodology.etb import build_etb_report
from repro.methodology.experiment import ExperimentRunner
from repro.methodology.naive import NaiveUbdEstimator
from repro.methodology.ubd import UbdEstimator
from repro.report.tables import render_table

from .conftest import write_artifact


def run_comparison(iterations: int):
    config = reference_config()
    naive = NaiveUbdEstimator(config)
    scuas = {
        "rsk(load)": build_rsk(config, 0, iterations=iterations),
        "cacheb": build_synthetic_kernel(config, "cacheb", 0, iterations=max(4, iterations // 8)),
        "tblook": build_synthetic_kernel(config, "tblook", 0, iterations=max(4, iterations // 8)),
    }
    naive_rows = []
    for name, scua in scuas.items():
        estimate = naive.estimate(scua)
        naive_rows.append([name, estimate.requests, f"{estimate.ubdm:.2f}"])

    methodology = UbdEstimator(
        config, k_max=2 * config.ubd + 6, iterations=max(15, iterations // 2)
    ).run()

    # ETB comparison for one task padded with each bound.
    runner = ExperimentRunner(config)
    task = build_rsk(config, 0, iterations=iterations)
    isolation = runner.run_isolation(task)
    contended = runner.run_against_rsk(task)
    etb_rows = []
    for label, bound in (
        ("naive det/nr (rsk scua)", float(naive_rows[0][2])),
        ("rsk-nop methodology", float(methodology.ubdm)),
        ("analytical ubd", float(config.ubd)),
    ):
        report = build_etb_report(
            task.name,
            isolation_time=isolation.execution_time,
            requests=isolation.bus_requests,
            ubdm=bound,
            observed_contended_time=contended.execution_time,
        )
        etb_rows.append([label, f"{bound:.2f}", report.etb, report.covers_observation])
    return config, naive_rows, methodology, etb_rows


def test_ablation_naive_vs_methodology(benchmark, artifact_dir, quick_mode):
    iterations = 20 if quick_mode else 40
    config, naive_rows, methodology, etb_rows = benchmark.pedantic(
        run_comparison, args=(iterations,), rounds=1, iterations=1
    )

    # Every naive estimate underestimates the analytical bound...
    for name, _requests, value in naive_rows:
        assert float(value) < config.ubd, f"naive estimate for {name} should underestimate"
    # ...and the naive values differ between scuas (they are scua dependent).
    assert len({value for _, _, value in naive_rows}) > 1
    # The methodology recovers the exact bound.
    assert methodology.ubdm == config.ubd
    # ETBs padded with the methodology's bound (and the analytical one) cover
    # the observed contended execution time.
    by_label = {row[0]: row for row in etb_rows}
    assert by_label["rsk-nop methodology"][3] is True
    assert by_label["analytical ubd"][3] is True

    sections = [
        "Naive det/nr estimates (scua dependent):",
        render_table(["scua", "requests nr", "ubdm = det/nr"], naive_rows),
        "",
        f"rsk-nop methodology: ubdm = {methodology.ubdm} cycles "
        f"(analytical ubd = {config.ubd})",
        "",
        "ETB for the rsk task under each bound:",
        render_table(["bound", "cycles/request", "ETB", "covers contended run"], etb_rows),
    ]
    write_artifact(artifact_dir, "ablation_naive_vs_methodology.txt", "\n".join(sections))
