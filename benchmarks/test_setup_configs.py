"""Section 5.1 (experimental setup): the ref and var platform configurations.

Regenerates the setup description as a table: cache geometry, latencies, bus
occupancy and the resulting analytical ubd for both platforms, which every
other benchmark builds on.
"""

from __future__ import annotations

from repro.config import reference_config, variant_config
from repro.report.tables import render_table

from .conftest import write_artifact


def build_setup_table() -> str:
    rows = []
    for config in (reference_config(), variant_config()):
        info = config.describe()
        rows.append(
            [
                info["name"],
                info["cores"],
                info["dl1"],
                info["dl1_latency"],
                info["l2"],
                info["l2_latency"],
                info["bus_transfer"],
                info["lbus"],
                info["ubd"],
            ]
        )
    return render_table(
        ["setup", "cores", "DL1", "L1 lat", "L2", "L2 lat", "transfer", "lbus", "ubd"],
        rows,
    )


def test_section51_setup_table(benchmark, artifact_dir):
    table = benchmark.pedantic(build_setup_table, rounds=1, iterations=1)

    ref = reference_config()
    var = variant_config()
    # The quantities the paper states explicitly in Sections 5.1 and 5.2.
    assert ref.bus_service_l2_hit == 9
    assert ref.ubd == 27
    assert var.ubd == 27
    assert ref.dl1.hit_latency == 1 and var.dl1.hit_latency == 4

    write_artifact(artifact_dir, "section51_setup.txt", table)
