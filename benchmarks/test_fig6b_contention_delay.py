"""Figure 6(b): histogram of the contention delay suffered by rsk requests.

A load rsk runs against three load rsk on both the ``ref`` and the ``var``
platforms.  The synchrony effect makes nearly every request suffer the same
delay, and that plateau — the measured ``ubdm`` — is 26 cycles on ``ref`` and
23 on ``var``, both below the true ``ubd`` of 27.  This is the paper's
motivation: the straightforward measurement is platform-alignment dependent
and underestimates the bound.
"""

from __future__ import annotations

from repro.analysis.contention import contention_histogram
from repro.config import reference_config, variant_config
from repro.kernels.rsk import build_rsk
from repro.methodology.experiment import ExperimentRunner
from repro.report.histogram import render_histogram
from repro.report.tables import render_table

from .conftest import write_artifact


def measure(iterations: int):
    results = {}
    for config in (reference_config(), variant_config()):
        runner = ExperimentRunner(config)
        scua = build_rsk(config, 0, iterations=iterations)
        contended = runner.run_against_rsk(scua, trace=True)
        results[config.name] = contention_histogram(contended.trace, 0)
    return results


def test_fig6b_contention_delay_histograms(benchmark, artifact_dir, quick_mode):
    iterations = 60 if quick_mode else 200
    histograms = benchmark.pedantic(measure, args=(iterations,), rounds=1, iterations=1)
    ubd = reference_config().ubd

    # The paper's numbers: ubdm = 26 (ref) and 23 (var), actual ubd = 27.
    assert histograms["ref"].max_observed == 26
    assert histograms["var"].max_observed == 23
    assert histograms["ref"].max_observed < ubd
    assert histograms["var"].max_observed < ubd
    # "We observe that most of the requests, 98% of them, have the same
    # contention delay" — the synchrony plateau.
    assert histograms["ref"].fraction_at_mode() > 0.95
    assert histograms["var"].fraction_at_mode() > 0.95

    sections = [
        render_table(
            ["setup", "ubd (actual)", "ubdm (max observed)", "modal delay", "fraction at mode"],
            [
                [name, ubd, hist.max_observed, hist.mode, f"{hist.fraction_at_mode():.3f}"]
                for name, hist in histograms.items()
            ],
        ),
        "",
    ]
    for name, hist in histograms.items():
        sections.append(
            render_histogram(
                hist.counts,
                title=f"{name}: contention delay per rsk request (cycles)",
                label="gamma",
            )
        )
        sections.append("")
    write_artifact(artifact_dir, "fig6b_contention_delay.txt", "\n".join(sections))
