"""Figure 6(a): histogram of ready bus contenders.

Two workload classes are contrasted on the reference platform:

* 8 randomly composed 4-task workloads of EEMBC-like synthetic kernels
  (the paper uses EEMBC Autobench; see DESIGN.md for the substitution) — the
  observed task in core 0 finds the bus empty or with one contender most of
  the time;
* 4 rsk kernels — nearly every request finds all other cores contending.

The x axis counts *other* ready requesters, so it spans 0..3 on the 4-core
platform (the paper's variant counts the requester itself, shifting the axis
by one; the shape is identical).
"""

from __future__ import annotations

from repro.config import reference_config
from repro.methodology.workloads import run_rsk_reference_workload, run_workload_campaign
from repro.report.histogram import render_histogram
from repro.report.tables import render_table

from .conftest import write_artifact


def run_campaigns(num_workloads: int, observed_iterations: int, rsk_iterations: int, runner):
    config = reference_config()
    eembc_like = run_workload_campaign(
        config,
        num_workloads=num_workloads,
        observed_iterations=observed_iterations,
        seed=2015,
        runner=runner,
    )
    rsk = run_rsk_reference_workload(config, iterations=rsk_iterations)
    return eembc_like, rsk


def test_fig6a_contender_histograms(benchmark, artifact_dir, quick_mode, campaign_runner):
    num_workloads = 3 if quick_mode else 8
    observed_iterations = 10 if quick_mode else 25
    rsk_iterations = 100 if quick_mode else 300
    eembc_like, rsk = benchmark.pedantic(
        run_campaigns,
        args=(num_workloads, observed_iterations, rsk_iterations, campaign_runner),
        rounds=1,
        iterations=1,
    )
    config = reference_config()

    # Dark bars: real workloads almost never build the worst case.
    assert eembc_like.fraction_with_at_most(1) > 0.5
    # Light bars: four rsk saturate the bus and all contenders are ready.
    assert rsk.histogram.fraction_with(config.num_cores - 1) > 0.95
    assert rsk.bus_utilisation > 0.95

    sections = []
    sections.append("Per-workload composition (observed task runs on core 0):")
    sections.append(
        render_table(
            ["workload", "tasks", "bus utilisation"],
            [
                [index, " ".join(run.task_names), f"{run.bus_utilisation:.2f}"]
                for index, run in enumerate(eembc_like.runs)
            ],
        )
    )
    sections.append("")
    sections.append(
        render_histogram(
            eembc_like.aggregated_counts(),
            title="EEMBC-like 4-task workloads: ready contenders when core 0 accesses the bus",
            label="contenders",
        )
    )
    sections.append("")
    sections.append(
        render_histogram(
            rsk.histogram.counts,
            title="4x rsk workload: ready contenders when core 0 accesses the bus",
            label="contenders",
        )
    )
    write_artifact(artifact_dir, "fig6a_contender_histograms.txt", "\n".join(sections))
