"""Figure 4: the saw-tooth behaviour of round-robin under high load.

Regenerates the analytical curve gamma(delta) for the reference platform:
maximum contention ``ubd`` only at ``delta = 0``, a linear decrease to zero at
``delta = ubd`` and a wrap-around with period ``ubd`` afterwards, peaking at
``ubd - 1`` for every ``delta = m * ubd + 1``.
"""

from __future__ import annotations

from repro.analysis.model import sawtooth_curve
from repro.config import reference_config
from repro.report.tables import render_series

from .conftest import write_artifact


def build_curve():
    config = reference_config()
    deltas = list(range(0, 3 * config.ubd + 2))
    return deltas, sawtooth_curve(deltas, config.ubd)


def test_fig4_sawtooth_curve(benchmark, artifact_dir):
    deltas, curve = benchmark.pedantic(build_curve, rounds=1, iterations=1)
    ubd = reference_config().ubd

    # Shape checks straight from the figure.
    assert curve[0] == ubd, "delta = 0 is the only point reaching ubd"
    assert ubd not in curve[1:], "with delta > 0 the maximum is ubd - 1"
    assert curve[1] == ubd - 1
    assert curve[ubd] == 0
    assert curve[ubd + 1] == ubd - 1, "the tooth re-arms one cycle after each multiple of ubd"
    # Periodicity: the period of the saw-tooth is exactly ubd.
    assert curve[1 : 1 + ubd] == curve[1 + ubd : 1 + 2 * ubd]

    table = render_series(deltas, curve, x_label="delta", y_label="gamma")
    write_artifact(artifact_dir, "fig4_sawtooth_model.txt", table)
