"""Equations 1 and 2 validated against the cycle-level simulator.

A parametric sweep over core counts and bus occupancies: for each platform
the observed worst-case contention of a saturated rsk workload must track
``ubd = (Nc - 1) * lbus`` (Equation 1) shifted by the platform's injection
time (Equation 2), and the rsk-nop methodology must recover the exact ubd.
"""

from __future__ import annotations

from repro.analysis.contention import contention_histogram
from repro.config import BusConfig, CacheConfig, L2Config, small_config
from repro.kernels.rsk import build_rsk
from repro.methodology.experiment import ExperimentRunner
from repro.methodology.ubd import UbdEstimator
from repro.report.tables import render_table

from .conftest import write_artifact


def make_platform(num_cores: int, transfer: int, l2_latency: int):
    return small_config(
        num_cores=num_cores,
        bus=BusConfig(transfer_latency=transfer),
        l2=L2Config(
            cache=CacheConfig(
                size_bytes=32 * 1024,
                ways=max(4, num_cores),
                line_size=32,
                hit_latency=l2_latency,
            )
        ),
    )


PLATFORMS = [
    (3, 1, 2),   # ubd = 6
    (3, 2, 3),   # ubd = 10
    (4, 1, 2),   # ubd = 9
    (4, 3, 6),   # ubd = 27 (the NGMP timing with small caches)
]


def run_validation(iterations: int):
    rows = []
    for num_cores, transfer, l2_latency in PLATFORMS:
        config = make_platform(num_cores, transfer, l2_latency)
        runner = ExperimentRunner(config)
        scua = build_rsk(config, 0, iterations=iterations)
        contended = runner.run_against_rsk(scua, trace=True)
        plateau = contention_histogram(contended.trace, 0).mode
        estimator = UbdEstimator(
            config, k_max=2 * config.ubd + 4, iterations=max(10, iterations // 3)
        )
        ubdm = estimator.run().ubdm
        rows.append(
            [
                f"{num_cores} cores / lbus={config.bus_service_l2_hit}",
                config.ubd,
                plateau,
                config.ubd - config.expected_rsk_injection_time,
                ubdm,
            ]
        )
    return rows


def test_equation_validation_across_platforms(benchmark, artifact_dir, quick_mode):
    iterations = 20 if quick_mode else 40
    rows = benchmark.pedantic(run_validation, args=(iterations,), rounds=1, iterations=1)

    for label, ubd, plateau, expected_plateau, ubdm in rows:
        assert plateau == expected_plateau, f"{label}: plateau does not follow Equation 2"
        assert ubdm == ubd, f"{label}: methodology failed to recover Equation 1"

    table = render_table(
        ["platform", "ubd (Eq. 1)", "observed plateau", "Eq. 2 prediction", "ubdm (methodology)"],
        rows,
    )
    write_artifact(artifact_dir, "eq1_eq2_validation.txt", table)
