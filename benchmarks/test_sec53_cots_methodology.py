"""Section 5.3: the methodology applied as on a COTS platform.

This is the end-to-end use case: no bus latency, L2 latency or ubd value is
given to the estimator — only that arbitration is round robin and that load
instructions generate bus requests.  The estimator measures ``delta_nop``,
sweeps the nop count (auto-extending until two saw-tooth periods are
covered), detects the period and runs the confidence checks.

The derived ``ubdm`` must equal the analytical ``ubd = 27`` on both the
``ref`` and ``var`` setups, and must beat the naive det/nr estimate, which
stalls at the synchrony plateau (26 and 23 respectively).
"""

from __future__ import annotations

from repro.config import reference_config, variant_config
from repro.methodology.naive import NaiveUbdEstimator
from repro.methodology.ubd import UbdEstimator
from repro.report.tables import render_table

from .conftest import write_artifact


def run_cots_methodology(iterations: int):
    rows = []
    results = {}
    for config in (reference_config(), variant_config()):
        estimator = UbdEstimator(config, k_max=2 * config.ubd + 6, iterations=iterations)
        result = estimator.run()
        naive = NaiveUbdEstimator(config).estimate_with_rsk_as_scua(iterations=iterations)
        results[config.name] = (result, naive)
        rows.append(
            [
                config.name,
                config.ubd,
                result.delta_nop.rounded,
                result.period.period_k,
                result.ubdm,
                f"{naive.ubdm:.1f}",
                "PASS" if result.confidence.passed else "FAIL",
            ]
        )
    return rows, results


def test_sec53_cots_methodology(benchmark, artifact_dir, quick_mode):
    iterations = 15 if quick_mode else 30
    rows, results = benchmark.pedantic(
        run_cots_methodology, args=(iterations,), rounds=1, iterations=1
    )

    for config in (reference_config(), variant_config()):
        result, naive = results[config.name]
        assert result.ubdm == config.ubd, f"{config.name}: ubdm != ubd"
        assert result.confidence.passed, result.confidence.summary()
        assert naive.ubdm < config.ubd, "the naive estimate must underestimate"

    table = render_table(
        [
            "setup",
            "analytical ubd",
            "delta_nop",
            "sawtooth period (k)",
            "ubdm (rsk-nop)",
            "ubdm (naive det/nr)",
            "confidence",
        ],
        rows,
    )
    write_artifact(artifact_dir, "sec53_cots_methodology.txt", table)
