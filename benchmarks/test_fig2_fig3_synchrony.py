"""Figures 2 and 3: contention delay as a function of the injection time.

Figure 3's table lists, for each injection time delta, which core holds the
highest/lowest round-robin priority and the contention delay gamma suffered by
the observed request once the synchrony effect has locked the schedule.  This
benchmark regenerates that table twice:

* analytically, from Equation 2 / the schedule-based timeline;
* from the cycle-level simulator, by enforcing each delta with an
  ``rsk-nop(load, k)`` kernel on the reference platform and reading the modal
  per-request contention delay from the bus trace.

The two columns must agree — that is the correctness argument behind the
whole methodology.
"""

from __future__ import annotations

from repro.analysis.contention import contention_histogram
from repro.analysis.model import gamma_of_delta, synchrony_timeline
from repro.config import reference_config
from repro.kernels.rsk import build_rsk_nop
from repro.methodology.experiment import ExperimentRunner
from repro.report.tables import render_table

from .conftest import write_artifact


def simulated_gamma(config, k: int, iterations: int) -> int:
    runner = ExperimentRunner(config)
    scua = build_rsk_nop(config, 0, k=k, iterations=iterations)
    contended = runner.run_against_rsk(scua, trace=True)
    return contention_histogram(contended.trace, 0).mode


def build_gamma_table(iterations: int = 25):
    config = reference_config()
    ubd = config.ubd
    delta_rsk = config.expected_rsk_injection_time
    # Sample every third k plus the points where the tooth bottoms out
    # (delta = ubd and delta = 2*ubd), so the table spans gamma = ubd-1 .. 0.
    k_values = sorted(set(range(0, 2 * ubd + 2, 3)) | {ubd - delta_rsk, 2 * ubd - delta_rsk})
    rows = []
    for k in k_values:
        delta = delta_rsk + k
        analytical = gamma_of_delta(delta, ubd)
        timeline = synchrony_timeline(config.num_cores, config.bus_service_l2_hit, delta)
        simulated = simulated_gamma(config, k, iterations)
        rows.append([delta, analytical, timeline["contention"], simulated])
    return rows


def test_fig2_fig3_gamma_versus_delta(benchmark, artifact_dir, quick_mode):
    iterations = 10 if quick_mode else 25
    rows = benchmark.pedantic(build_gamma_table, args=(iterations,), rounds=1, iterations=1)

    # Every simulated value must match both analytical derivations exactly.
    for delta, analytical, timeline, simulated in rows:
        assert analytical == timeline, f"timeline mismatch at delta={delta}"
        assert analytical == simulated, f"simulator mismatch at delta={delta}"

    ubd = reference_config().ubd
    # The table covers the full dynamic range: from ubd-1 down to 0.
    gammas = [row[1] for row in rows]
    assert max(gammas) == ubd - 1
    assert min(gammas) == 0

    table = render_table(["delta", "gamma (Eq. 2)", "gamma (timeline)", "gamma (simulated)"], rows)
    write_artifact(artifact_dir, "fig2_fig3_gamma_vs_delta.txt", table)
