"""Shared infrastructure for the benchmark harness.

Every benchmark module regenerates one table or figure of the paper.  The
regenerated series/rows are printed to stdout and also written as plain-text
artefacts under ``benchmarks/out/`` so they can be inspected and compared
against the numbers recorded in ``EXPERIMENTS.md``.

All simulation-based benchmarks run the workload exactly once through
``benchmark.pedantic(..., rounds=1, iterations=1)``: the interesting output is
the regenerated figure, and a single cycle-accurate run is already
deterministic, so repeating it would only multiply the runtime.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

# Make the package importable when the benchmarks are run without an
# installed distribution (mirrors the pythonpath setting used for tests/).
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

#: Directory where regenerated figures are written.
OUTPUT_DIR = Path(__file__).resolve().parent / "out"


@pytest.fixture(scope="session")
def artifact_dir() -> Path:
    """Directory for regenerated-figure artefacts (created on demand)."""
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture(scope="session")
def campaign_runner():
    """Shared campaign runner for figure sweeps (see ``repro.campaign``).

    ``REPRO_BENCH_JOBS`` sets the worker-process count (default: one per
    CPU, capped at 4); serial and parallel execution produce bit-identical
    figures.  ``REPRO_BENCH_CACHE=1`` additionally persists per-run results
    under ``benchmarks/out/.cache`` so re-generating an unchanged figure
    skips its simulations.
    """
    from repro.campaign import ParallelRunner, ResultCache

    jobs = int(os.environ.get("REPRO_BENCH_JOBS", min(4, os.cpu_count() or 1)))
    cache = None
    if os.environ.get("REPRO_BENCH_CACHE", "0") == "1":
        cache = ResultCache(OUTPUT_DIR / ".cache")
    return ParallelRunner(jobs=max(1, jobs), cache=cache)


@pytest.fixture(scope="session")
def quick_mode() -> bool:
    """Reduce workload sizes when REPRO_BENCH_QUICK=1 is set.

    The default sizes regenerate the figures with the same qualitative shape
    as the paper in a couple of minutes; quick mode is for smoke-testing the
    harness itself.
    """
    return os.environ.get("REPRO_BENCH_QUICK", "0") == "1"


def write_artifact(directory: Path, name: str, content: str) -> Path:
    """Write ``content`` to ``directory/name`` and echo it to stdout."""
    path = directory / name
    path.write_text(content, encoding="utf-8")
    print(f"\n----- {name} -----")
    print(content)
    return path
