"""Legacy setup shim.

Editable installs on machines without the ``wheel`` package can use
``python setup.py develop`` instead of ``pip install -e .``.
"""

from setuptools import setup

setup()
