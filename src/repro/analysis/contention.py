"""Per-request contention analysis and the histograms of Figure 6.

Figure 6(a) histograms *how many contenders are ready* whenever the observed
core tries to access the bus — showing that real (EEMBC-like) workloads
almost never build the worst-case scenario, while four rsk saturate the bus.

Figure 6(b) histograms the *contention delay* each rsk request actually
suffers — showing that under the synchrony effect nearly every request sees
the same delay, and that this plateau (``ubdm`` = 26 on ``ref``, 23 on
``var``) underestimates the real ``ubd`` of 27.

Both histograms are produced from the request trace collected by
:class:`repro.sim.trace.TraceRecorder`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import AnalysisError
from ..sim.trace import TraceRecorder


@dataclass(frozen=True)
class ContentionHistogram:
    """Histogram of per-request contention delays (Figure 6(b)).

    Attributes:
        counts: mapping contention delay (cycles) -> number of requests.
        total_requests: number of requests analysed.
        observed_core: the core whose requests were analysed.
    """

    counts: Dict[int, int]
    total_requests: int
    observed_core: int

    @property
    def max_observed(self) -> int:
        """The largest contention delay observed — this is ``ubdm``."""
        if not self.counts:
            return 0
        return max(self.counts)

    @property
    def mode(self) -> int:
        """The most frequent contention delay (the synchrony plateau)."""
        if not self.counts:
            return 0
        return max(self.counts.items(), key=lambda item: (item[1], item[0]))[0]

    def fraction_at_mode(self) -> float:
        """Fraction of requests that suffered exactly the modal delay."""
        if self.total_requests == 0:
            return 0.0
        return self.counts[self.mode] / self.total_requests

    def fraction_at(self, delay: int) -> float:
        """Fraction of requests that suffered exactly ``delay`` cycles."""
        if self.total_requests == 0:
            return 0.0
        return self.counts.get(delay, 0) / self.total_requests

    def as_sorted_items(self) -> List[Tuple[int, int]]:
        """Histogram entries sorted by contention delay."""
        return sorted(self.counts.items())


@dataclass(frozen=True)
class ContenderHistogram:
    """Histogram of ready contenders at request time (Figure 6(a)).

    Attributes:
        counts: mapping number of ready contenders -> number of requests.
        total_requests: number of requests analysed.
        observed_core: the core whose requests were analysed.
        num_cores: total number of cores on the platform (so the histogram's
            x axis spans 0 .. num_cores - 1).
    """

    counts: Dict[int, int]
    total_requests: int
    observed_core: int
    num_cores: int

    def fraction_with_at_most(self, contenders: int) -> float:
        """Fraction of requests that found at most ``contenders`` ready contenders."""
        if self.total_requests == 0:
            return 0.0
        matching = sum(count for value, count in self.counts.items() if value <= contenders)
        return matching / self.total_requests

    def fraction_with(self, contenders: int) -> float:
        """Fraction of requests that found exactly ``contenders`` ready contenders."""
        if self.total_requests == 0:
            return 0.0
        return self.counts.get(contenders, 0) / self.total_requests

    def as_sorted_items(self) -> List[Tuple[int, int]]:
        """Histogram entries sorted by contender count."""
        return sorted(self.counts.items())


def contention_histogram(
    trace: TraceRecorder,
    observed_core: int,
    kinds: Sequence[str] = ("load",),
    skip_first: int = 1,
) -> ContentionHistogram:
    """Histogram the contention delay of the observed core's requests.

    Args:
        trace: the request trace of a contended run.
        observed_core: core whose requests are analysed.
        kinds: request kinds to include (demand loads by default; Figure 6(b)
            analyses a load rsk).
        skip_first: number of leading requests to drop — the first request of
            a run pre-dates the synchrony lock-in and its delay depends only
            on the arbitrary initial arbiter state.
    """
    records = [r for r in trace.for_port(observed_core, kinds) if r.completed]
    if not records:
        raise AnalysisError(
            f"trace holds no completed {list(kinds)} requests for core {observed_core}"
        )
    selected = records[skip_first:] if skip_first < len(records) else records
    counts = Counter(record.contention_delay for record in selected)
    return ContentionHistogram(
        counts=dict(counts),
        total_requests=len(selected),
        observed_core=observed_core,
    )


def contender_histogram(
    trace: TraceRecorder,
    observed_core: int,
    num_cores: int,
    kinds: Optional[Sequence[str]] = None,
    skip_first: int = 0,
) -> ContenderHistogram:
    """Histogram how many contenders were ready when the observed core's requests arrived."""
    kinds = kinds if kinds is not None else ("load", "store", "ifetch")
    records = list(trace.for_port(observed_core, kinds))
    if not records:
        raise AnalysisError(
            f"trace holds no {list(kinds)} requests for core {observed_core}"
        )
    selected = records[skip_first:] if skip_first < len(records) else records
    counts = Counter(record.contenders_at_ready for record in selected)
    return ContenderHistogram(
        counts=dict(counts),
        total_requests=len(selected),
        observed_core=observed_core,
        num_cores=num_cores,
    )


def injection_time_histogram(
    trace: TraceRecorder,
    observed_core: int,
    kinds: Sequence[str] = ("load",),
) -> Dict[int, int]:
    """Histogram of injection times ``delta_i`` between consecutive requests."""
    deltas = trace.injection_times(observed_core, kinds)
    if not deltas:
        raise AnalysisError(
            f"trace holds fewer than two requests for core {observed_core}; "
            "injection times are undefined"
        )
    return dict(Counter(deltas))
