"""Per-request contention analysis and the histograms of Figure 6.

Figure 6(a) histograms *how many contenders are ready* whenever the observed
core tries to access the bus — showing that real (EEMBC-like) workloads
almost never build the worst-case scenario, while four rsk saturate the bus.

Figure 6(b) histograms the *contention delay* each rsk request actually
suffers — showing that under the synchrony effect nearly every request sees
the same delay, and that this plateau (``ubdm`` = 26 on ``ref``, 23 on
``var``) underestimates the real ``ubd`` of 27.

On multi-resource topologies a request's end-to-end latency is more than its
bus-grant wait: an L2 miss also waits for its DRAM bank queue, is served by
the DRAM, and waits again for the response transfer.
:func:`latency_decomposition` attributes each request's latency to those
stages — per-resource Figure 6(b)-style histograms plus totals that
cross-check against the :class:`repro.sim.memctrl.MemCtrlStats` queue
counters — using the stage timestamps the simulator stamps into each
:class:`repro.sim.trace.RequestRecord`.

All analyses are produced from the request trace collected by
:class:`repro.sim.trace.TraceRecorder`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import AnalysisError
from ..sim.memctrl import MemCtrlStats
from ..sim.trace import TraceRecorder


@dataclass(frozen=True)
class ContentionHistogram:
    """Histogram of per-request contention delays (Figure 6(b)).

    Attributes:
        counts: mapping contention delay (cycles) -> number of requests.
        total_requests: number of requests analysed.
        observed_core: the core whose requests were analysed.
    """

    counts: Dict[int, int]
    total_requests: int
    observed_core: int

    @property
    def max_observed(self) -> int:
        """The largest contention delay observed — this is ``ubdm``."""
        if not self.counts:
            return 0
        return max(self.counts)

    @property
    def mode(self) -> int:
        """The most frequent contention delay (the synchrony plateau)."""
        if not self.counts:
            return 0
        return max(self.counts.items(), key=lambda item: (item[1], item[0]))[0]

    def fraction_at_mode(self) -> float:
        """Fraction of requests that suffered exactly the modal delay."""
        if self.total_requests == 0:
            return 0.0
        return self.counts[self.mode] / self.total_requests

    def fraction_at(self, delay: int) -> float:
        """Fraction of requests that suffered exactly ``delay`` cycles."""
        if self.total_requests == 0:
            return 0.0
        return self.counts.get(delay, 0) / self.total_requests

    def as_sorted_items(self) -> List[Tuple[int, int]]:
        """Histogram entries sorted by contention delay."""
        return sorted(self.counts.items())


@dataclass(frozen=True)
class ContenderHistogram:
    """Histogram of ready contenders at request time (Figure 6(a)).

    Attributes:
        counts: mapping number of ready contenders -> number of requests.
        total_requests: number of requests analysed.
        observed_core: the core whose requests were analysed.
        num_cores: total number of cores on the platform (so the histogram's
            x axis spans 0 .. num_cores - 1).
    """

    counts: Dict[int, int]
    total_requests: int
    observed_core: int
    num_cores: int

    def fraction_with_at_most(self, contenders: int) -> float:
        """Fraction of requests that found at most ``contenders`` ready contenders."""
        if self.total_requests == 0:
            return 0.0
        matching = sum(count for value, count in self.counts.items() if value <= contenders)
        return matching / self.total_requests

    def fraction_with(self, contenders: int) -> float:
        """Fraction of requests that found exactly ``contenders`` ready contenders."""
        if self.total_requests == 0:
            return 0.0
        return self.counts.get(contenders, 0) / self.total_requests

    def as_sorted_items(self) -> List[Tuple[int, int]]:
        """Histogram entries sorted by contender count."""
        return sorted(self.counts.items())


def contention_histogram(
    trace: TraceRecorder,
    observed_core: int,
    kinds: Sequence[str] = ("load",),
    skip_first: int = 1,
) -> ContentionHistogram:
    """Histogram the contention delay of the observed core's requests.

    Args:
        trace: the request trace of a contended run.
        observed_core: core whose requests are analysed.
        kinds: request kinds to include (demand loads by default; Figure 6(b)
            analyses a load rsk).
        skip_first: number of leading requests to drop — the first request of
            a run pre-dates the synchrony lock-in and its delay depends only
            on the arbitrary initial arbiter state.
    """
    records = [r for r in trace.for_port(observed_core, kinds) if r.completed]
    if not records:
        raise AnalysisError(
            f"trace holds no completed {list(kinds)} requests for core {observed_core}"
        )
    selected = records[skip_first:] if skip_first < len(records) else records
    counts = Counter(record.contention_delay for record in selected)
    return ContentionHistogram(
        counts=dict(counts),
        total_requests=len(selected),
        observed_core=observed_core,
    )


def contender_histogram(
    trace: TraceRecorder,
    observed_core: int,
    num_cores: int,
    kinds: Optional[Sequence[str]] = None,
    skip_first: int = 0,
) -> ContenderHistogram:
    """Histogram how many contenders were ready when the observed core's requests arrived."""
    kinds = kinds if kinds is not None else ("load", "store", "ifetch")
    records = list(trace.for_port(observed_core, kinds))
    if not records:
        raise AnalysisError(f"trace holds no {list(kinds)} requests for core {observed_core}")
    selected = records[skip_first:] if skip_first < len(records) else records
    counts = Counter(record.contenders_at_ready for record in selected)
    return ContenderHistogram(
        counts=dict(counts),
        total_requests=len(selected),
        observed_core=observed_core,
        num_cores=num_cores,
    )


#: Decomposition stage -> the resource it measures, in end-to-end order.
#: ``bus`` is the request-phase grant wait (the request channel on
#: ``split_bus``), ``memory`` the bank-queue wait, ``dram`` the DRAM service,
#: ``bus_response`` the response-phase grant wait.  The stage names align
#: with the ``ArchConfig.ubd_terms`` keys so each per-request histogram can
#: be checked directly against its analytical per-resource bound.
DECOMPOSITION_STAGES = ("bus", "memory", "dram", "bus_response")


@dataclass(frozen=True)
class LatencyDecomposition:
    """Per-resource attribution of the observed core's request latencies.

    Attributes:
        observed_core: the core whose requests were analysed.
        total_requests: number of completed demand requests analysed.
        memory_requests: the subset that missed the L2 and reached the
            memory stage (only those contribute to the ``memory``, ``dram``
            and ``bus_response`` histograms).
        histograms: per-stage delay histograms
            (``stage -> {delay_cycles: request_count}``), stages as in
            :data:`DECOMPOSITION_STAGES`.
        totals: per-stage summed cycles over all analysed requests.
    """

    observed_core: int
    total_requests: int
    memory_requests: int
    histograms: Dict[str, Dict[int, int]] = field(default_factory=dict)
    totals: Dict[str, int] = field(default_factory=dict)

    def max_observed(self, stage: str) -> int:
        """Largest delay observed at ``stage`` (0 when the stage was idle)."""
        counts = self.histograms.get(stage)
        if not counts:
            return 0
        return max(counts)

    def mean_observed(self, stage: str) -> float:
        """Mean delay at ``stage`` over the requests that visited it."""
        counts = self.histograms.get(stage)
        if not counts:
            return 0.0
        total = sum(delay * count for delay, count in counts.items())
        visits = sum(counts.values())
        return total / visits

    def consistent_with(self, stats: MemCtrlStats) -> bool:
        """Cross-check the ``memory`` stage against the controller's queue
        counters.

        The decomposition covers the observed core's demand reads, a subset
        of the accesses a bank-queued controller arbitrates (writes and
        other cores' traffic also accumulate into
        ``MemCtrlStats.total_queue_wait``), so the per-request waits can
        never exceed the aggregate; with the observed core's demand reads
        as the *only* memory traffic the two are exactly equal.  The plain
        arrival-scheduled controller records no queue grants at all — its
        implicit FIFO wait appears only in the per-request stamps — so
        there is no aggregate to check against and the method returns True
        vacuously.
        """
        if stats.queue_grants == 0:
            return True
        return self.totals.get("memory", 0) <= stats.total_queue_wait


def latency_decomposition(
    trace: TraceRecorder,
    observed_core: int,
    kinds: Sequence[str] = ("load", "ifetch"),
    skip_first: int = 0,
) -> LatencyDecomposition:
    """Attribute each request's end-to-end latency to the resource it waited at.

    Every completed demand request of ``observed_core`` contributes its
    request-phase grant wait to the ``bus`` histogram; the requests that
    missed the L2 additionally contribute their bank-queue wait
    (``memory``), their DRAM service time (``dram``) and their
    response-phase grant wait (``bus_response``) — the Figure 6(b) analysis,
    repeated per shared resource of the topology.

    Args:
        trace: the request trace of a contended run.
        observed_core: core whose requests are analysed.
        kinds: demand request kinds to include.
        skip_first: leading requests to drop (see :func:`contention_histogram`).
    """
    records = [
        r
        for r in trace.for_port(observed_core, kinds)
        if r.completed and r.origin_core in (observed_core, -1)
    ]
    if not records:
        raise AnalysisError(
            f"trace holds no completed {list(kinds)} requests for core {observed_core}"
        )
    selected = records[skip_first:] if skip_first < len(records) else records
    histograms: Dict[str, Counter] = {stage: Counter() for stage in DECOMPOSITION_STAGES}
    memory_requests = 0
    for record in selected:
        histograms["bus"][record.contention_delay] += 1
        if not record.reached_memory:
            continue
        memory_requests += 1
        histograms["memory"][record.memory_queue_wait] += 1
        histograms["dram"][record.dram_service] += 1
        if record.response_grant_cycle >= 0:
            histograms["bus_response"][record.response_wait] += 1
    totals = {
        stage: sum(delay * count for delay, count in counts.items())
        for stage, counts in histograms.items()
    }
    return LatencyDecomposition(
        observed_core=observed_core,
        total_requests=len(selected),
        memory_requests=memory_requests,
        histograms={stage: dict(counts) for stage, counts in histograms.items()},
        totals=totals,
    )


@dataclass(frozen=True)
class MemoryTermSplit:
    """Queue-wait vs DRAM-service split of the measured ``memory`` stage.

    The analytical ``memory`` term bundles two physically distinct effects —
    the wait in the arbitrated bank queue and the (row-state dependent) DRAM
    service of the access itself.  Splitting the measured decomposition the
    same way makes an analytical-vs-measured gap *attributable*: a queue-wait
    shortfall points at the ``Nc - 1`` competitor assumption, a service gap
    at the row-miss envelope.  Derived from the ``memory`` (queue wait) and
    ``dram`` (service) histograms of :class:`LatencyDecomposition`.
    """

    memory_requests: int
    queue_wait_max: int
    queue_wait_mean: float
    queue_wait_total: int
    service_max: int
    service_mean: float
    service_total: int

    def summary(self) -> str:
        """One-line human readable report."""
        return (
            f"memory stage split over {self.memory_requests} request(s): "
            f"queue wait max {self.queue_wait_max} (mean {self.queue_wait_mean:.1f}) "
            f"+ DRAM service max {self.service_max} (mean {self.service_mean:.1f})"
        )


def memory_term_split(decomposition: LatencyDecomposition) -> MemoryTermSplit:
    """Split the decomposition's memory-stage cycles into queue wait and service."""
    return MemoryTermSplit(
        memory_requests=decomposition.memory_requests,
        queue_wait_max=decomposition.max_observed("memory"),
        queue_wait_mean=decomposition.mean_observed("memory"),
        queue_wait_total=decomposition.totals.get("memory", 0),
        service_max=decomposition.max_observed("dram"),
        service_mean=decomposition.mean_observed("dram"),
        service_total=decomposition.totals.get("dram", 0),
    )


@dataclass(frozen=True)
class StageBoundCheck:
    """Cross-check of one resource's measured bound against its neighbours.

    A measured per-resource bound is trustworthy only when it is sandwiched:
    it must *cover* the worst contention actually observed at the resource
    (``observed_worst_case <= ubdm``, the paper's trustworthiness argument)
    and stay *within* the analytical envelope (``ubdm <= analytical``, the
    sanity direction — a measurement exceeding the analytical worst case
    means either the model or the measurement is wrong).
    """

    resource: str
    observed_worst_case: int
    ubdm: int
    analytical: int

    @property
    def covers_observation(self) -> bool:
        """True when the measured bound covers the observed worst case."""
        return self.ubdm >= self.observed_worst_case

    @property
    def within_envelope(self) -> bool:
        """True when the measured bound stays below the analytical term."""
        return self.ubdm <= self.analytical

    @property
    def passed(self) -> bool:
        """Both directions of the sandwich hold."""
        return self.covers_observation and self.within_envelope

    @property
    def status(self) -> str:
        """Short verdict label (``OK`` / ``NOT COVERING`` / ``EXCEEDS
        ENVELOPE``) shared by reports and the CLI table."""
        if not self.covers_observation:
            return "NOT COVERING"
        if not self.within_envelope:
            return "EXCEEDS ENVELOPE"
        return "OK"

    def summary(self) -> str:
        """One-line human readable report."""
        return (
            f"{self.resource}: observed {self.observed_worst_case} <= "
            f"ubdm {self.ubdm} <= analytical {self.analytical} [{self.status}]"
        )


@dataclass(frozen=True)
class BoundCrossCheck:
    """Per-stage sandwich checks for a whole measured-bound report."""

    checks: List[StageBoundCheck]

    @property
    def passed(self) -> bool:
        """True only if every stage's sandwich holds."""
        return all(check.passed for check in self.checks)

    def failed_checks(self) -> List[StageBoundCheck]:
        """The stages whose sandwich does not hold."""
        return [check for check in self.checks if not check.passed]

    def summary(self) -> str:
        """Multi-line human readable report."""
        return "\n".join(check.summary() for check in self.checks)


def cross_check_stage_bounds(
    observed: Mapping[str, int],
    measured: Mapping[str, int],
    analytical: Mapping[str, int],
) -> BoundCrossCheck:
    """Sandwich-check every measured per-resource bound.

    Args:
        observed: worst per-request delay observed at each resource (from
            :func:`latency_decomposition` of the stressing runs).
        measured: the measured ``ubdm`` terms, keyed like
            :attr:`repro.config.ArchConfig.ubd_terms`.
        analytical: the analytical per-resource terms.

    Raises:
        AnalysisError: when a measured term has no analytical counterpart —
            a sandwich with a missing side checks nothing.
    """
    checks: List[StageBoundCheck] = []
    for resource, ubdm in measured.items():
        if resource not in analytical:
            raise AnalysisError(
                f"measured term {resource!r} has no analytical counterpart; "
                f"analytical terms cover {sorted(analytical)}"
            )
        checks.append(
            StageBoundCheck(
                resource=resource,
                observed_worst_case=observed.get(resource, 0),
                ubdm=ubdm,
                analytical=analytical[resource],
            )
        )
    return BoundCrossCheck(checks=checks)


def injection_time_histogram(
    trace: TraceRecorder,
    observed_core: int,
    kinds: Sequence[str] = ("load",),
) -> Dict[int, int]:
    """Histogram of injection times ``delta_i`` between consecutive requests."""
    deltas = trace.injection_times(observed_core, kinds)
    if not deltas:
        raise AnalysisError(
            f"trace holds fewer than two requests for core {observed_core}; "
            "injection times are undefined"
        )
    return dict(Counter(deltas))
