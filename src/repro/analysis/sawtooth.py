"""Saw-tooth period detection: recovering ``ubd`` from ``dbus(k)``.

The heart of the methodology (Section 4.2): the execution-time increase
``dbus(t, k)`` of ``rsk-nop(t, k)`` run against ``Nc - 1`` rsk contenders is
periodic in ``k`` and its period — converted to cycles through ``delta_nop``
— *is* the upper-bound delay ``ubd``, independently of the unknown baseline
injection time ``delta_rsk``.

Equation 3 defines the period through exact equality of ``dbus`` values.  On
a simulator that works verbatim; on noisy measurements it does not, so this
module implements several estimators and a consensus wrapper:

* :meth:`SawtoothAnalyzer.period_exact` — Equation 3 with a tolerance;
* :meth:`SawtoothAnalyzer.period_rising_edges` — the saw-tooth re-arms with a
  large upward jump once per period; the median spacing of those jumps is the
  period;
* :meth:`SawtoothAnalyzer.period_autocorrelation` — lag of the first dominant
  peak of the autocorrelation of the detrended series;
* :meth:`SawtoothAnalyzer.period_fft` — inverse of the dominant non-DC
  frequency of the detrended series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from ..errors import AnalysisError


@dataclass(frozen=True)
class PeriodEstimate:
    """Result of the saw-tooth analysis.

    Attributes:
        period_k: consensus period expressed in nop-count steps.
        period_cycles: the period converted to cycles (``period_k *
            delta_nop``) — this is ``ubdm``.
        per_method: period (in ``k`` steps) reported by each estimator;
            ``None`` when an estimator could not produce a value.
        agreement: fraction of successful estimators that agree with the
            consensus (1.0 means unanimous).
        delta_nop: cycles per nop used for the conversion.
    """

    period_k: int
    period_cycles: int
    per_method: Dict[str, Optional[int]]
    agreement: float
    delta_nop: int = 1

    def summary(self) -> str:
        """One-line human readable summary."""
        methods = ", ".join(f"{name}={value}" for name, value in sorted(self.per_method.items()))
        return (
            f"period={self.period_k} k-steps ({self.period_cycles} cycles), "
            f"agreement={self.agreement:.0%} [{methods}]"
        )


class SawtoothAnalyzer:
    """Analyses one ``dbus(k)`` series.

    Args:
        ks: the swept nop counts (must be strictly increasing and uniformly
            spaced; spacing larger than 1 is allowed and accounted for).
        values: measured ``dbus`` for each ``k`` (same length as ``ks``).
        relative_tolerance: tolerance used when comparing two ``dbus`` values
            for "equality" in the Equation 3 estimator.
    """

    def __init__(
        self,
        ks: Sequence[int],
        values: Sequence[float],
        relative_tolerance: float = 0.02,
    ) -> None:
        if len(ks) != len(values):
            raise AnalysisError(
                f"ks and values have different lengths ({len(ks)} vs {len(values)})"
            )
        if len(ks) < 4:
            raise AnalysisError("need at least four sweep points to detect a period")
        k_array = np.asarray(ks, dtype=np.int64)
        spacing = np.diff(k_array)
        if np.any(spacing <= 0):
            raise AnalysisError("ks must be strictly increasing")
        if np.any(spacing != spacing[0]):
            raise AnalysisError("ks must be uniformly spaced")
        self.ks = k_array
        self.spacing = int(spacing[0])
        self.values = np.asarray(values, dtype=np.float64)
        self.relative_tolerance = relative_tolerance

    # ------------------------------------------------------------------ #
    # Individual estimators (periods returned in k units, not samples).
    # ------------------------------------------------------------------ #
    def period_exact(self) -> Optional[int]:
        """Equation 3: smallest shift that leaves the series unchanged."""
        n = len(self.values)
        scale = max(1.0, float(np.max(np.abs(self.values))))
        tolerance = self.relative_tolerance * scale
        span = float(np.max(self.values) - np.min(self.values))
        if span <= tolerance:
            # A (nearly) constant series carries no saw-tooth information: the
            # sweep did not modulate the contention at all.
            return None
        for lag in range(1, n // 2 + 1):
            left = self.values[: n - lag]
            right = self.values[lag:]
            if np.all(np.abs(left - right) <= tolerance):
                return lag * self.spacing
        return None

    def period_rising_edges(self) -> Optional[int]:
        """Median spacing between the saw-tooth's upward re-arming jumps."""
        diffs = np.diff(self.values)
        if len(diffs) == 0:
            return None
        span = float(np.max(self.values) - np.min(self.values))
        if span <= 0:
            return None
        threshold = 0.5 * span
        edges = np.nonzero(diffs > threshold)[0]
        if len(edges) < 2:
            return None
        spacings = np.diff(edges)
        return int(round(float(np.median(spacings)))) * self.spacing

    def period_autocorrelation(self) -> Optional[int]:
        """Lag of the first dominant autocorrelation peak of the detrended series."""
        series = self.values - np.mean(self.values)
        if np.allclose(series, 0.0):
            return None
        n = len(series)
        correlation = np.correlate(series, series, mode="full")[n - 1 :]
        if correlation[0] <= 0:
            return None
        correlation = correlation / correlation[0]
        best_lag: Optional[int] = None
        best_value = 0.35  # minimum correlation considered a real repetition
        for lag in range(2, n // 2 + 1):
            value = correlation[lag]
            is_peak = (
                correlation[lag - 1] < value
                and (lag + 1 >= len(correlation) or value >= correlation[lag + 1])
            )
            if is_peak and value > best_value:
                best_lag = lag
                best_value = value
                break
        if best_lag is None:
            return None
        return best_lag * self.spacing

    def period_fft(self) -> Optional[int]:
        """Period derived from the dominant non-DC Fourier component."""
        series = self.values - np.mean(self.values)
        if np.allclose(series, 0.0):
            return None
        spectrum = np.abs(np.fft.rfft(series))
        if len(spectrum) < 3:
            return None
        dominant = int(np.argmax(spectrum[1:])) + 1
        period_samples = len(series) / dominant
        return int(round(period_samples)) * self.spacing

    # ------------------------------------------------------------------ #
    # Consensus.
    # ------------------------------------------------------------------ #
    def estimate(self, delta_nop: int = 1) -> PeriodEstimate:
        """Combine the estimators into one consensus period.

        The Equation 3 estimator is used as the consensus when it succeeds
        (it is the paper's definition); otherwise the median of the
        successful robust estimators is used.  ``agreement`` reports how many
        estimators land within one sweep step of the consensus.
        """
        if delta_nop < 1:
            raise AnalysisError(f"delta_nop must be >= 1, got {delta_nop}")
        per_method: Dict[str, Optional[int]] = {
            "exact": self.period_exact(),
            "rising_edges": self.period_rising_edges(),
            "autocorrelation": self.period_autocorrelation(),
            "fft": self.period_fft(),
        }
        successful = [value for value in per_method.values() if value is not None]
        if not successful:
            raise AnalysisError(
                "no estimator could find a saw-tooth period; the k sweep probably "
                "does not cover a full period — extend the sweep range"
            )
        if per_method["exact"] is not None:
            consensus = per_method["exact"]
        else:
            consensus = int(np.median(np.asarray(successful)))
        agreeing = sum(1 for value in successful if abs(value - consensus) <= self.spacing)
        agreement = agreeing / len(successful)
        return PeriodEstimate(
            period_k=consensus,
            period_cycles=consensus * delta_nop,
            per_method=per_method,
            agreement=agreement,
            delta_nop=delta_nop,
        )
