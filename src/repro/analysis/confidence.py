"""Confidence checks for the measurement-based bound (Section 4.3).

The paper names two elements as "central to confidence on the obtained
``ubdm``":

1. ``Nc - 1`` cores running rsk must be enough to drive the bus to (close
   to) 100% utilisation, which can be verified with the platform's
   performance monitoring counters (NGMP counters 0x17/0x18 — modelled by
   :class:`repro.sim.pmc.PerformanceCounters`);
2. ``delta_nop`` must be derived reliably, because it converts the saw-tooth
   period from nop counts into cycles.

:func:`assess_confidence` bundles both checks, plus sanity checks on the
saw-tooth itself (estimator agreement and sweep coverage), into a single
report the methodology attaches to every estimate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

from .injection import DeltaNopEstimate
from .sawtooth import PeriodEstimate

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (config is layer 0)
    from ..config import ArchConfig
    from ..sim.pmc import PerformanceCounters

#: Bus utilisation below this threshold means the contenders did not saturate
#: the bus and the synchrony effect cannot be relied upon.
DEFAULT_UTILISATION_THRESHOLD = 0.90

#: Maximum tolerated relative rounding error on delta_nop.
DEFAULT_DELTA_NOP_TOLERANCE = 0.05


@dataclass(frozen=True)
class ConfidenceCheck:
    """One named check with its outcome and a human-readable explanation."""

    name: str
    passed: bool
    detail: str


@dataclass(frozen=True)
class ConfidenceReport:
    """Aggregated confidence assessment attached to a ``ubdm`` estimate."""

    checks: List[ConfidenceCheck]

    @property
    def passed(self) -> bool:
        """True only if every individual check passed."""
        return all(check.passed for check in self.checks)

    def failed_checks(self) -> List[ConfidenceCheck]:
        """The checks that did not pass."""
        return [check for check in self.checks if not check.passed]

    def summary(self) -> str:
        """Multi-line human readable report."""
        lines = []
        for check in self.checks:
            status = "PASS" if check.passed else "FAIL"
            lines.append(f"[{status}] {check.name}: {check.detail}")
        return "\n".join(lines)


def assess_confidence(
    bus_utilisation: float,
    delta_nop: Optional[DeltaNopEstimate] = None,
    period: Optional[PeriodEstimate] = None,
    sweep_span_k: Optional[int] = None,
    utilisation_threshold: float = DEFAULT_UTILISATION_THRESHOLD,
    delta_nop_tolerance: float = DEFAULT_DELTA_NOP_TOLERANCE,
) -> ConfidenceReport:
    """Evaluate the methodology's confidence conditions.

    Args:
        bus_utilisation: overall bus utilisation measured (via the PMCs)
            during the contended runs, in [0, 1].
        delta_nop: the measured per-nop latency, if available.
        period: the saw-tooth period estimate, if available.
        sweep_span_k: width of the swept ``k`` range; it must cover at least
            two periods for Equation 3 to be applicable.
        utilisation_threshold: minimum acceptable bus utilisation.
        delta_nop_tolerance: maximum acceptable relative rounding error of
            ``delta_nop``.
    """
    checks: List[ConfidenceCheck] = []

    checks.append(
        ConfidenceCheck(
            name="bus_saturation",
            passed=bus_utilisation >= utilisation_threshold,
            detail=(
                f"measured bus utilisation {bus_utilisation:.1%} "
                f"(threshold {utilisation_threshold:.0%})"
            ),
        )
    )

    if delta_nop is not None:
        error = delta_nop.relative_rounding_error
        checks.append(
            ConfidenceCheck(
                name="delta_nop",
                passed=error <= delta_nop_tolerance,
                detail=(
                    f"delta_nop = {delta_nop.cycles_per_nop:.3f} cycles/nop, rounded to "
                    f"{delta_nop.rounded} (relative error {error:.1%})"
                ),
            )
        )

    if period is not None:
        checks.append(
            ConfidenceCheck(
                name="estimator_agreement",
                passed=period.agreement >= 0.5,
                detail=(
                    f"{period.agreement:.0%} of period estimators agree on "
                    f"{period.period_k} k-steps"
                ),
            )
        )
        if sweep_span_k is not None:
            covers_two_periods = sweep_span_k >= 2 * period.period_k
            checks.append(
                ConfidenceCheck(
                    name="sweep_coverage",
                    passed=covers_two_periods,
                    detail=(
                        f"sweep spans {sweep_span_k} k-steps versus a detected period of "
                        f"{period.period_k} (two periods required)"
                    ),
                )
            )

    return ConfidenceReport(checks=checks)


def assess_write_burst(
    config: "ArchConfig", pmc: "PerformanceCounters"
) -> ConfidenceCheck:
    """Flag configurations where store-buffer write bursts can break the
    ``memory`` term's queueing assumption.

    The analytical ``memory`` term of :attr:`repro.config.ArchConfig.ubd_terms`
    assumes **at most one outstanding demand request per core**, which caps a
    bank queue at ``Nc - 1`` competing accesses.  Demand loads and ifetches
    satisfy this by construction (an in-order core blocks on them), but
    write-through stores drain *asynchronously* from the store buffer: a core
    with a deep buffer can have several writes in flight, and if they land on
    one DRAM bank faster than the bank drains, more than ``Nc - 1`` accesses
    queue up and the term silently under-bounds.

    The check is a conservative PMC gate, not a bound.  With arbitrated
    memory queues and a store buffer deeper than one entry, it flags the run
    when either counter witnesses a pileup:

    * ``store_buffer_full_stalls > 0`` — a core filled its buffer, so at
      least ``entries`` writes were outstanding at once (the direct
      witness; a bank-saturated store run always trips it even though its
      *throughput* collapses);
    * ``rate * row_miss_latency > 1`` — the observed per-core store rate
      refills a bank faster than a worst-case (row-miss) service drains it,
      so writes accumulate even before the buffer fills.

    Flagged configurations should bound the pileup explicitly (store-buffer
    depth x cores) instead of trusting the composed terms.
    """
    cycles = pmc.cycles
    store_rate = 0.0
    if cycles > 0:
        store_rate = max((core.stores / cycles for core in pmc.core), default=0.0)
    full_stalls = max((core.store_buffer_full_stalls for core in pmc.core), default=0)
    depth = config.store_buffer.entries
    service = config.dram.row_miss_latency
    if not config.topology.has_memory_queues:
        return ConfidenceCheck(
            name="write_burst",
            passed=True,
            detail=(
                "no arbitrated memory stage on topology "
                f"{config.topology.name!r}; the memory term does not apply"
            ),
        )
    burst_possible = depth > 1 and (full_stalls > 0 or store_rate * service > 1.0)
    detail = (
        f"worst per-core store rate {store_rate:.3f}/cycle x row-miss service "
        f"{service} cycles = {store_rate * service:.2f} writes per bank service, "
        f"{full_stalls} buffer-full stall(s) (store buffer holds {depth})"
    )
    if burst_possible:
        detail += (
            "; write bursts can queue more than Nc - 1 accesses on one bank — "
            "the analytical memory term under-bounds this traffic"
        )
    else:
        detail += "; at most one outstanding write per core per bank service"
    return ConfidenceCheck(name="write_burst", passed=not burst_possible, detail=detail)
