"""Confidence checks for the measurement-based bound (Section 4.3).

The paper names two elements as "central to confidence on the obtained
``ubdm``":

1. ``Nc - 1`` cores running rsk must be enough to drive the bus to (close
   to) 100% utilisation, which can be verified with the platform's
   performance monitoring counters (NGMP counters 0x17/0x18 — modelled by
   :class:`repro.sim.pmc.PerformanceCounters`);
2. ``delta_nop`` must be derived reliably, because it converts the saw-tooth
   period from nop counts into cycles.

:func:`assess_confidence` bundles both checks, plus sanity checks on the
saw-tooth itself (estimator agreement and sweep coverage), into a single
report the methodology attaches to every estimate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .injection import DeltaNopEstimate
from .sawtooth import PeriodEstimate

#: Bus utilisation below this threshold means the contenders did not saturate
#: the bus and the synchrony effect cannot be relied upon.
DEFAULT_UTILISATION_THRESHOLD = 0.90

#: Maximum tolerated relative rounding error on delta_nop.
DEFAULT_DELTA_NOP_TOLERANCE = 0.05


@dataclass(frozen=True)
class ConfidenceCheck:
    """One named check with its outcome and a human-readable explanation."""

    name: str
    passed: bool
    detail: str


@dataclass(frozen=True)
class ConfidenceReport:
    """Aggregated confidence assessment attached to a ``ubdm`` estimate."""

    checks: List[ConfidenceCheck]

    @property
    def passed(self) -> bool:
        """True only if every individual check passed."""
        return all(check.passed for check in self.checks)

    def failed_checks(self) -> List[ConfidenceCheck]:
        """The checks that did not pass."""
        return [check for check in self.checks if not check.passed]

    def summary(self) -> str:
        """Multi-line human readable report."""
        lines = []
        for check in self.checks:
            status = "PASS" if check.passed else "FAIL"
            lines.append(f"[{status}] {check.name}: {check.detail}")
        return "\n".join(lines)


def assess_confidence(
    bus_utilisation: float,
    delta_nop: Optional[DeltaNopEstimate] = None,
    period: Optional[PeriodEstimate] = None,
    sweep_span_k: Optional[int] = None,
    utilisation_threshold: float = DEFAULT_UTILISATION_THRESHOLD,
    delta_nop_tolerance: float = DEFAULT_DELTA_NOP_TOLERANCE,
) -> ConfidenceReport:
    """Evaluate the methodology's confidence conditions.

    Args:
        bus_utilisation: overall bus utilisation measured (via the PMCs)
            during the contended runs, in [0, 1].
        delta_nop: the measured per-nop latency, if available.
        period: the saw-tooth period estimate, if available.
        sweep_span_k: width of the swept ``k`` range; it must cover at least
            two periods for Equation 3 to be applicable.
        utilisation_threshold: minimum acceptable bus utilisation.
        delta_nop_tolerance: maximum acceptable relative rounding error of
            ``delta_nop``.
    """
    checks: List[ConfidenceCheck] = []

    checks.append(
        ConfidenceCheck(
            name="bus_saturation",
            passed=bus_utilisation >= utilisation_threshold,
            detail=(
                f"measured bus utilisation {bus_utilisation:.1%} "
                f"(threshold {utilisation_threshold:.0%})"
            ),
        )
    )

    if delta_nop is not None:
        error = delta_nop.relative_rounding_error
        checks.append(
            ConfidenceCheck(
                name="delta_nop",
                passed=error <= delta_nop_tolerance,
                detail=(
                    f"delta_nop = {delta_nop.cycles_per_nop:.3f} cycles/nop, rounded to "
                    f"{delta_nop.rounded} (relative error {error:.1%})"
                ),
            )
        )

    if period is not None:
        checks.append(
            ConfidenceCheck(
                name="estimator_agreement",
                passed=period.agreement >= 0.5,
                detail=(
                    f"{period.agreement:.0%} of period estimators agree on "
                    f"{period.period_k} k-steps"
                ),
            )
        )
        if sweep_span_k is not None:
            covers_two_periods = sweep_span_k >= 2 * period.period_k
            checks.append(
                ConfidenceCheck(
                    name="sweep_coverage",
                    passed=covers_two_periods,
                    detail=(
                        f"sweep spans {sweep_span_k} k-steps versus a detected period of "
                        f"{period.period_k} (two periods required)"
                    ),
                )
            )

    return ConfidenceReport(checks=checks)
