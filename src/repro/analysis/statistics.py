"""Small statistics helpers shared by the analysis and methodology layers.

Measurement-based timing analysis never trusts a single run: the paper's
experiments report histograms over all requests and the methodology is built
around execution-time differences of repeated, controlled runs.  This module
provides the summaries used when aggregating such repeated measurements, plus
an empirical exceedance helper useful when the estimates feed an MBTA-style
padding argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..errors import AnalysisError


@dataclass(frozen=True)
class SeriesSummary:
    """Summary statistics of one measurement series."""

    count: int
    minimum: float
    maximum: float
    mean: float
    median: float
    std: float

    @property
    def spread(self) -> float:
        """Max minus min — zero for a perfectly repeatable measurement."""
        return self.maximum - self.minimum

    @property
    def relative_spread(self) -> float:
        """Spread relative to the mean (0.0 for constant series)."""
        if self.mean == 0:
            return 0.0
        return self.spread / abs(self.mean)


def summarize(values: Sequence[float]) -> SeriesSummary:
    """Compute a :class:`SeriesSummary` for ``values`` (must be non-empty)."""
    if len(values) == 0:
        raise AnalysisError("cannot summarise an empty series")
    array = np.asarray(values, dtype=np.float64)
    return SeriesSummary(
        count=int(array.size),
        minimum=float(np.min(array)),
        maximum=float(np.max(array)),
        mean=float(np.mean(array)),
        median=float(np.median(array)),
        std=float(np.std(array)),
    )


def empirical_exceedance(values: Sequence[float], threshold: float) -> float:
    """Fraction of observations strictly above ``threshold``.

    Used to sanity-check a derived bound: if ``ubdm`` is sound for the
    observed platform, the exceedance of the per-request contention delays
    over ``ubdm`` must be zero.
    """
    if len(values) == 0:
        raise AnalysisError("cannot compute exceedance of an empty series")
    array = np.asarray(values, dtype=np.float64)
    return float(np.count_nonzero(array > threshold)) / array.size


def high_water_mark(values: Sequence[float]) -> float:
    """Largest observation of the series (the measurement-based bound itself)."""
    if len(values) == 0:
        raise AnalysisError("cannot compute the maximum of an empty series")
    return float(np.max(np.asarray(values, dtype=np.float64)))


def envelope_over_runs(runs: Sequence[Sequence[float]]) -> List[float]:
    """Point-wise maximum over repeated runs of the same sweep.

    All runs must have the same length; the result is the conservative
    envelope used when a sweep is repeated to wash out start-condition
    effects.
    """
    if not runs:
        raise AnalysisError("need at least one run to build an envelope")
    lengths = {len(run) for run in runs}
    if len(lengths) != 1:
        raise AnalysisError(f"runs have inconsistent lengths: {sorted(lengths)}")
    stacked = np.asarray(runs, dtype=np.float64)
    return [float(value) for value in np.max(stacked, axis=0)]
