"""Analysis layer: the paper's analytical model and measurement processing.

* :mod:`repro.analysis.model` — closed-form contention model (Equations 1
  and 2), the predicted saw-tooth of Figure 4 and the synchrony timeline of
  Figures 2/3.
* :mod:`repro.analysis.sawtooth` — period detectors that recover ``ubd`` from
  a measured ``dbus(k)`` series (Equation 3 plus robust alternatives).
* :mod:`repro.analysis.injection` — derivation of ``delta_nop`` from the
  nop-only kernel.
* :mod:`repro.analysis.contention` — per-request contention delays, the
  histograms of Figure 6, and the per-resource latency decomposition of
  multi-resource topologies.
* :mod:`repro.analysis.confidence` — the methodology's confidence checks
  (bus utilisation, saturation, delta_nop validity).
* :mod:`repro.analysis.statistics` — small statistics helpers shared by the
  above (summaries, envelopes over repeated runs).
"""

from .model import (
    ContentionModel,
    gamma_of_delta,
    predicted_slowdown_per_request,
    sawtooth_curve,
    synchrony_timeline,
    ubd_analytical,
)
from .sawtooth import PeriodEstimate, SawtoothAnalyzer
from .injection import DeltaNopEstimate, derive_delta_nop
from .contention import (
    DECOMPOSITION_STAGES,
    ContenderHistogram,
    ContentionHistogram,
    LatencyDecomposition,
    contender_histogram,
    contention_histogram,
    injection_time_histogram,
    latency_decomposition,
)
from .confidence import ConfidenceReport, assess_confidence
from .statistics import SeriesSummary, summarize

__all__ = [
    "ConfidenceReport",
    "ContenderHistogram",
    "ContentionHistogram",
    "ContentionModel",
    "DECOMPOSITION_STAGES",
    "DeltaNopEstimate",
    "LatencyDecomposition",
    "PeriodEstimate",
    "SawtoothAnalyzer",
    "SeriesSummary",
    "assess_confidence",
    "contender_histogram",
    "contention_histogram",
    "derive_delta_nop",
    "gamma_of_delta",
    "injection_time_histogram",
    "latency_decomposition",
    "predicted_slowdown_per_request",
    "sawtooth_curve",
    "summarize",
    "synchrony_timeline",
    "ubd_analytical",
]
