"""Closed-form contention model for round-robin buses (Sections 2-4).

This module implements the analytical side of the paper:

* Equation 1: ``ubd = (Nc - 1) * lbus``;
* Equation 2: the contention delay ``gamma(delta)`` suffered by a request
  whose injection time is ``delta`` once the synchrony effect has locked the
  arbitration sequence;
* the saw-tooth curve of Figure 4 (``gamma`` as a function of ``delta``);
* the predicted per-request slowdown of the rsk-nop methodology, both for
  loads (Figure 7(a)) and, with the store-buffer extension of Section 5.3,
  for stores (Figure 7(b));
* a cycle-by-cycle synchrony timeline equivalent to Figures 2, 3 and 5,
  useful to visualise and unit-test the effect without running the full
  simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..errors import AnalysisError


def ubd_analytical(num_cores: int, lbus: int) -> int:
    """Equation 1: the worst contention delay of a single request.

    Args:
        num_cores: number of requesters sharing the bus (``Nc``).
        lbus: worst-case bus occupancy of one request.
    """
    if num_cores < 1:
        raise AnalysisError(f"need at least one core, got {num_cores}")
    if lbus < 1:
        raise AnalysisError(f"bus occupancy must be >= 1 cycle, got {lbus}")
    return (num_cores - 1) * lbus


def gamma_of_delta(delta: int, ubd: int) -> int:
    """Equation 2: contention delay under the synchrony effect.

    ``delta`` is the injection time: the cycles elapsed between the previous
    request being served and the current one becoming ready.  A request
    injected back-to-back (``delta = 0``) observes the full ``ubd``; as
    ``delta`` grows the delay decreases linearly, reaches zero when the
    request arrives exactly when the round-robin pointer returns, and then
    wraps around with period ``ubd``.
    """
    if delta < 0:
        raise AnalysisError(f"injection time must be >= 0, got {delta}")
    if ubd < 1:
        raise AnalysisError(f"ubd must be >= 1, got {ubd}")
    if delta == 0:
        return ubd
    return (ubd - (delta % ubd)) % ubd


def sawtooth_curve(deltas: Sequence[int], ubd: int) -> List[int]:
    """Evaluate Equation 2 over a sweep of injection times (Figure 4)."""
    return [gamma_of_delta(delta, ubd) for delta in deltas]


def predicted_slowdown_per_request(
    k: int,
    ubd: int,
    delta_rsk: int,
    delta_nop: int = 1,
) -> int:
    """Predicted extra cycles per request of ``rsk-nop(load, k)`` vs isolation.

    Under the synchrony effect each bus request of the rsk-nop kernel suffers
    ``gamma(delta_rsk + k * delta_nop)`` cycles of contention that it does not
    suffer in isolation, so the measured ``dbus(k)`` is this value multiplied
    by the number of requests.

    Args:
        k: number of nops inserted between consecutive memory operations.
        ubd: the upper-bound delay of the platform.
        delta_rsk: injection time of the plain rsk (DL1 latency on the
            reference platform).
        delta_nop: cycles added per nop instruction.
    """
    if k < 0:
        raise AnalysisError(f"k must be >= 0, got {k}")
    if delta_rsk < 0 or delta_nop < 1:
        raise AnalysisError("delta_rsk must be >= 0 and delta_nop >= 1")
    return gamma_of_delta(delta_rsk + k * delta_nop, ubd)


def predicted_store_slowdown_per_request(
    k: int,
    ubd: int,
    lbus: int,
    delta_rsk: int,
    delta_nop: int = 1,
) -> int:
    """Predicted extra cycles per store of ``rsk-nop(store, k)`` vs isolation.

    With a store buffer the core only waits when the buffer is full, so the
    observed slowdown per store is the difference between the contended drain
    interval and the rate at which the core produces stores, clamped at the
    isolation drain interval (Section 5.3).  Beyond roughly one saw-tooth
    period the buffer hides the bus entirely and the slowdown is zero.

    The drain interval under full contention is ``ubd + lbus`` (the entry's
    own occupancy plus a full round of the other cores); in isolation it is
    ``lbus``.
    """
    if k < 0:
        raise AnalysisError(f"k must be >= 0, got {k}")
    production_interval = delta_rsk + k * delta_nop + 1
    contended_interval = ubd + lbus
    isolated_interval = lbus
    contended_time = max(production_interval, contended_interval)
    isolated_time = max(production_interval, isolated_interval)
    return contended_time - isolated_time


@dataclass(frozen=True)
class ContentionModel:
    """Bundle of the analytical quantities for one platform.

    Attributes:
        num_cores: number of requesters (``Nc``).
        lbus: worst-case bus occupancy of one request.
        delta_rsk: injection time of the plain rsk on this platform.
        delta_nop: cycles added per nop.
    """

    num_cores: int
    lbus: int
    delta_rsk: int = 1
    delta_nop: int = 1

    @property
    def ubd(self) -> int:
        """Equation 1 for this platform."""
        return ubd_analytical(self.num_cores, self.lbus)

    def gamma(self, delta: int) -> int:
        """Equation 2 for this platform."""
        return gamma_of_delta(delta, self.ubd)

    def gamma_for_k(self, k: int) -> int:
        """Contention delay of an rsk-nop request with ``k`` interposed nops."""
        return predicted_slowdown_per_request(k, self.ubd, self.delta_rsk, self.delta_nop)

    def dbus_curve(self, ks: Sequence[int], requests: int) -> List[int]:
        """Predicted ``dbus(k)`` (total slowdown) over a sweep of ``k`` values."""
        if requests < 1:
            raise AnalysisError("the kernel must issue at least one request")
        return [self.gamma_for_k(k) * requests for k in ks]

    def store_dbus_curve(self, ks: Sequence[int], requests: int) -> List[int]:
        """Predicted store-variant ``dbus(k)`` including the store buffer effect."""
        if requests < 1:
            raise AnalysisError("the kernel must issue at least one request")
        return [
            predicted_store_slowdown_per_request(
                k, self.ubd, self.lbus, self.delta_rsk, self.delta_nop
            )
            * requests
            for k in ks
        ]

    def maximum_observable_gamma(self) -> int:
        """Largest contention a measurement can observe when ``delta_rsk > 0``.

        The paper's key negative result (Section 3.2): with a non-zero
        minimum injection time the plain rsk can never observe ``ubd``
        itself, only ``ubd - delta_rsk`` — which is why the naive
        measurement underestimates the bound.
        """
        if self.delta_rsk == 0:
            return self.ubd
        return self.gamma(self.delta_rsk)


def synchrony_timeline(
    num_cores: int,
    lbus: int,
    delta: int,
    observed_core: int = 0,
    rounds: int = 3,
) -> Dict[str, object]:
    """Produce the locked arbitration schedule of Figures 2/3/5.

    Starting from the cycle at which a request of ``observed_core`` completes
    (cycle 0), all other cores have pending requests (the synchrony effect),
    so they are served in round-robin order, each occupying ``lbus`` cycles.
    The observed core's next request becomes ready ``delta`` cycles after
    cycle 0 and is granted at the first arbitration point at or after its
    readiness once it holds the highest priority.

    Returns a dictionary with the per-core service intervals, the readiness
    and grant cycle of the observed request and its contention delay, which
    equals :func:`gamma_of_delta` — the property the unit tests assert.
    """
    if not 0 <= observed_core < num_cores:
        raise AnalysisError(f"observed core {observed_core} out of range")
    if rounds < 1:
        raise AnalysisError("need at least one arbitration round")
    if delta < 0:
        raise AnalysisError(f"injection time must be >= 0, got {delta}")
    ubd = ubd_analytical(num_cores, lbus)
    others = [(observed_core + offset) % num_cores for offset in range(1, num_cores)]
    ready = delta
    intervals: List[Tuple[int, int, int]] = []  # (core, start, end)
    cursor = 0
    grant = None
    max_rounds = max(rounds, delta // max(ubd, 1) + 2)
    for _ in range(max_rounds):
        for core in others:
            intervals.append((core, cursor, cursor + lbus))
            cursor += lbus
        # Round-robin hands the highest priority back to the observed core; it
        # is granted here if (and only if) its request is already ready.  The
        # bus is work conserving, so otherwise the contenders go again.
        if grant is None and ready <= cursor:
            grant = cursor
            intervals.append((observed_core, cursor, cursor + lbus))
            cursor += lbus
        if grant is not None and len(intervals) >= rounds * num_cores:
            break
    if grant is None:
        raise AnalysisError(f"timeline search did not reach delta={delta}; increase rounds")
    contention = grant - ready
    return {
        "ubd": ubd,
        "ready_cycle": ready,
        "grant_cycle": grant,
        "contention": contention,
        "intervals": intervals,
    }
