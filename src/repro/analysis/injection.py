"""Derivation of ``delta_nop`` — the cycles one nop adds to the injection time.

Section 4.2 of the paper: "we have designed a rsk in which all the operations
in the loop-body are nops.  The loop body is made as big as possible without
causing instruction cache misses.  By dividing the execution time of such rsk
by the number of nop operations executed we can derive delta_nop very
accurately."

``delta_nop`` converts the saw-tooth period measured in *nop counts* into
*cycles*, which is what makes the methodology independent of any bus timing
knowledge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..config import ArchConfig
from ..errors import AnalysisError
from ..kernels.rsk import build_nop_kernel
from ..sim.isa import Program
from ..sim.system import System


@dataclass(frozen=True)
class DeltaNopEstimate:
    """Measured per-nop latency.

    Attributes:
        cycles_per_nop: the raw ratio execution time / executed nops.
        rounded: the integer latency used by the rest of the methodology.
        executed_nops: dynamic nop count of the measurement run.
        execution_time: measured execution time in cycles.
    """

    cycles_per_nop: float
    rounded: int
    executed_nops: int
    execution_time: int

    @property
    def relative_rounding_error(self) -> float:
        """How far the raw ratio is from the integer estimate (0.0 is exact)."""
        if self.rounded == 0:
            return float("inf")
        return abs(self.cycles_per_nop - self.rounded) / self.rounded


def derive_delta_nop(
    config: ArchConfig,
    core_id: int = 0,
    iterations: int = 10,
    kernel: Optional[Program] = None,
    preload_il1: bool = True,
) -> DeltaNopEstimate:
    """Measure ``delta_nop`` on ``config`` by running the nop-only kernel in isolation.

    Args:
        config: platform to measure.
        core_id: core on which the kernel runs (the other cores stay idle,
            matching the paper's isolation measurement).
        iterations: loop iterations of the nop kernel.
        kernel: optionally, a pre-built kernel (must consist of nops only);
            by default :func:`repro.kernels.rsk.build_nop_kernel` is used.
        preload_il1: warm the instruction cache first, modelling the paper's
            requirement that the loop body not cause instruction cache misses.
    """
    if kernel is None:
        kernel = build_nop_kernel(config, core_id, iterations=iterations)
    total = kernel.total_instructions
    if total is None or total == 0:
        raise AnalysisError("the delta_nop kernel must be finite and non-empty")
    programs = [None] * config.num_cores
    programs[core_id] = kernel
    system = System(config, programs, preload_il1=preload_il1)
    result = system.run()
    execution_time = result.execution_time(core_id)
    ratio = execution_time / total
    rounded = max(1, int(round(ratio)))
    return DeltaNopEstimate(
        cycles_per_nop=ratio,
        rounded=rounded,
        executed_nops=total,
        execution_time=execution_time,
    )
