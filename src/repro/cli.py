"""Command-line interface.

Five subcommands cover the library's main use cases without writing any
Python:

* ``repro-bounds derive-ubd`` — run the full rsk-nop methodology on a preset
  platform and print the derived ``ubdm`` with its confidence report;
* ``repro-bounds synchrony`` — run a load rsk against ``Nc - 1`` rsk and show
  the contention-delay histogram (the Figure 6(b) experiment);
* ``repro-bounds campaign`` — run an experiment campaign (randomly composed
  EEMBC-like workloads plus rsk reference runs, the Figure 6(a) experiment)
  through the parallel campaign engine, optionally writing JSON artifacts;
* ``repro-bounds audit`` — run every registered audit dimension over a
  preset, an ``ArchConfig`` JSON file or a finished campaign directory and
  emit a machine-readable ``flags.json`` plus a self-contained
  ``report.html``, exiting with the worst verdict (0 pass / 1 warn /
  2 fail) so CI can gate on it;
* ``repro-bounds cache`` — inspect and maintain a durable result store
  (``stats``), migrate a legacy flat cache directory into one (``migrate``)
  or expire old entries (``gc --keep-days N``).  Exit codes: 0 on success,
  2 on configuration errors (missing store/legacy directory, corrupt
  arguments) — the same convention every subcommand follows;
* ``repro-bounds list`` — print the registered presets, arbitration
  policies, simulation engines and topologies.  The listing is read straight
  from the factories' registries, so it can never drift from what the
  simulator actually builds.

Examples::

    repro-bounds derive-ubd --preset ref --k-max 60 --iterations 40
    repro-bounds synchrony --preset var
    repro-bounds campaign --preset ref --workloads 8
    repro-bounds campaign --jobs 4 --out out/campaign --store out/store
    repro-bounds campaign --topology bus_only --topology bus_bank_queues
    repro-bounds cache stats --store out/store
    repro-bounds cache migrate --store out/store --legacy out/cache
    repro-bounds cache gc --store out/store --keep-days 30
    repro-bounds audit small --topology split_bus --out out/audit
    repro-bounds audit out/campaign
    repro-bounds list
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis.confidence import assess_write_burst
from .analysis.contention import contention_histogram, latency_decomposition
from .campaign import (
    CampaignSpec,
    CampaignStreamWriter,
    ParallelRunner,
    ResultCache,
    ResultStore,
    campaign_digest,
    is_store_directory,
)
from .config import PRESETS, get_preset
from .errors import ConfigurationError, ReproError
from .sim.arbiter import registered_arbiters
from .sim.scheduler import registered_engines
from .sim.topology import registered_topologies
from .kernels.rsk import build_rsk
from .methodology.experiment import ExperimentRunner
from .methodology.naive import NaiveUbdEstimator
from .methodology.ubd import MeasuredBoundPipeline, UbdEstimator
from .report.campaign import render_campaign_summary
from .report.histogram import render_histogram
from .report.tables import render_series, render_table


def build_parser() -> argparse.ArgumentParser:
    """Create the argument parser for the ``repro-bounds`` command."""
    parser = argparse.ArgumentParser(
        prog="repro-bounds",
        description="Measurement-based contention bounds for round-robin buses "
        "(DAC 2015 reproduction)",
    )
    parser.add_argument(
        "--preset",
        choices=sorted(PRESETS),
        default="ref",
        help="platform preset to simulate (default: ref)",
    )
    parser.add_argument(
        "--engine",
        choices=registered_engines(),
        default="event",
        help="simulation engine: the event-driven fast path, the codegen "
        "engine (a loop generated for the configured topology chain and "
        "arbiter set, falling back to the event engine on unknown registry "
        "entries) or the stepped cycle-by-cycle oracle; all are cycle-exact "
        "(default: event)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    derive = subparsers.add_parser("derive-ubd", help="run the rsk-nop methodology and report ubdm")
    derive.add_argument("--k-max", type=int, default=60, help="initial nop sweep upper bound")
    derive.add_argument(
        "--iterations", type=int, default=40, help="loop iterations of each rsk-nop kernel"
    )
    derive.add_argument(
        "--instruction-type",
        choices=("load", "store"),
        default="load",
        help="bus access type used by the kernels",
    )
    derive.add_argument(
        "--show-sweep", action="store_true", help="print the measured dbus(k) series"
    )
    derive.add_argument(
        "--topology",
        choices=registered_topologies(),
        default=None,
        help="override the preset's shared-resource topology",
    )
    derive.add_argument(
        "--per-resource",
        action="store_true",
        help="run the resource-generic measured-bound pipeline: one measured "
        "ubdm term per shared resource of the topology (selected from the "
        "rsk registry), sandwich-checked against the analytical terms and "
        "composed into an end-to-end measured bound",
    )
    derive.add_argument(
        "--stress-iterations",
        type=int,
        default=40,
        help="loop iterations of each per-resource stressing kernel "
        "(--per-resource only)",
    )

    synchrony = subparsers.add_parser(
        "synchrony", help="show the per-request contention histogram of rsk vs rsk"
    )
    synchrony.add_argument("--iterations", type=int, default=150)
    synchrony.add_argument(
        "--topology",
        choices=registered_topologies(),
        default=None,
        help="override the preset's shared-resource topology",
    )
    synchrony.add_argument(
        "--decompose",
        action="store_true",
        help="additionally attribute each request's latency to bus wait, "
        "bank-queue wait, DRAM service and response wait (per-resource "
        "Figure 6(b)-style histograms; needs a run with memory traffic to "
        "show more than the bus stage)",
    )

    campaign = subparsers.add_parser(
        "campaign",
        help="run an experiment campaign (random workloads + rsk references) "
        "with optional parallelism, caching and JSON artifacts",
    )
    campaign.add_argument("--workloads", type=int, default=8)
    campaign.add_argument("--iterations", type=int, default=25)
    campaign.add_argument("--seed", type=int, default=2015)
    campaign.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes; 1 runs in-process (results are identical)",
    )
    campaign.add_argument(
        "--out",
        metavar="DIR",
        help="write results.jsonl, summary.json and the campaign.json "
        "manifest into DIR, streaming them while the campaign runs",
    )
    campaign.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="flat content-addressed result cache (one file per digest); "
        "re-runs only simulate misses",
    )
    campaign.add_argument(
        "--store",
        metavar="DIR",
        help="durable SQLite-indexed result store; like --cache-dir but "
        "lookups are batched index queries and hits dedupe across all "
        "historical campaigns (see 'repro-bounds cache')",
    )
    campaign.add_argument(
        "--shard-size",
        type=int,
        default=None,
        metavar="N",
        help="runs per dispatched shard (default: auto, ~4 shards per job)",
    )
    campaign.add_argument(
        "--arbiter",
        action="append",
        choices=registered_arbiters(),
        help="bus arbitration policy to sweep (repeatable; default round_robin)",
    )
    campaign.add_argument(
        "--contenders",
        type=int,
        action="append",
        help="number of co-runners to sweep (repeatable; default: all cores)",
    )
    campaign.add_argument(
        "--topology",
        action="append",
        choices=registered_topologies(),
        help="shared-resource topology to sweep (repeatable; default: the "
        "preset's own topology)",
    )

    audit = subparsers.add_parser(
        "audit",
        help="evaluate every registered audit dimension over a preset, an "
        "ArchConfig JSON file or a finished campaign directory; emits "
        "flags.json + report.html and exits with the worst verdict "
        "(0 pass / 1 warn / 2 fail)",
    )
    audit.add_argument(
        "target",
        help="preset name, ArchConfig JSON file, or campaign output directory",
    )
    audit.add_argument(
        "--topology",
        choices=registered_topologies(),
        default=None,
        help="override the topology of a preset/config target "
        "(invalid for campaign directories)",
    )
    audit.add_argument(
        "--out",
        metavar="DIR",
        default="out/audit",
        help="directory receiving flags.json and report.html "
        "(default: out/audit)",
    )
    audit.add_argument("--k-max", type=int, default=60, help="initial nop sweep upper bound")
    audit.add_argument(
        "--iterations",
        type=int,
        default=40,
        help="loop iterations of each rsk-nop kernel",
    )
    audit.add_argument(
        "--stress-iterations",
        type=int,
        default=40,
        help="loop iterations of each per-resource stressing kernel",
    )
    audit.add_argument(
        "--synchrony-iterations",
        type=int,
        default=150,
        help="loop iterations of the traced synchrony/store-probe runs",
    )
    audit.add_argument(
        "--equivalence-iterations",
        type=int,
        default=40,
        help="loop iterations of the engine cross-check run",
    )

    cache = subparsers.add_parser(
        "cache",
        help="inspect and maintain a durable result store (exit 0 on "
        "success, 2 on configuration errors)",
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cache_stats = cache_sub.add_parser(
        "stats",
        help="print entry counts, per-campaign attribution and on-disk sizes",
    )
    cache_stats.add_argument(
        "--store", metavar="DIR", required=True, help="result store directory"
    )
    cache_migrate = cache_sub.add_parser(
        "migrate",
        help="import a legacy flat cache directory (one JSON file per "
        "digest) into a store; already-present digests are skipped, the "
        "source is left untouched",
    )
    cache_migrate.add_argument(
        "--store", metavar="DIR", required=True, help="result store directory "
        "(created if missing)"
    )
    cache_migrate.add_argument(
        "--legacy",
        metavar="DIR",
        required=True,
        help="legacy --cache-dir directory to import; pass the store "
        "directory itself to index artifacts already in place",
    )
    cache_gc = cache_sub.add_parser(
        "gc", help="delete entries older than --keep-days (index and artifacts)"
    )
    cache_gc.add_argument(
        "--store", metavar="DIR", required=True, help="result store directory"
    )
    cache_gc.add_argument(
        "--keep-days",
        type=float,
        required=True,
        metavar="N",
        help="keep entries created within the last N days",
    )

    subparsers.add_parser(
        "list",
        help="print registered presets, arbiters, engines and topologies "
        "(read from the factories' registries)",
    )

    return parser


def _preset_config(args: argparse.Namespace):
    """Resolve the platform from the common --preset/--engine/--topology flags."""
    config = get_preset(args.preset, engine=args.engine)
    if getattr(args, "topology", None):
        config = config.with_topology_name(args.topology)
    return config


def _run_per_resource_derive(args: argparse.Namespace, config) -> int:
    """The ``derive-ubd --per-resource`` path: the measured-bound pipeline."""
    pipeline = MeasuredBoundPipeline(
        config,
        instruction_type=args.instruction_type,
        k_max=args.k_max,
        iterations=args.iterations,
        stress_iterations=args.stress_iterations,
    )
    report = pipeline.run()
    print(
        f"Platform: {args.preset} (topology {report.topology}; analytical "
        f"end-to-end bound {report.end_to_end_analytical} cycles)"
    )
    print()
    print("Measured per-resource bounds (observed <= ubdm <= analytical):")
    rows = []
    for term in report.terms.values():
        rows.append(
            [
                term.resource,
                term.observed_worst_case,
                term.ubdm,
                term.analytical,
                term.method,
                term.sandwich.status,
            ]
        )
    print(
        render_table(["resource", "observed", "ubdm", "analytical", "method", "check"], rows)
    )
    print()
    print(
        f"End-to-end measured bound: {report.end_to_end_ubdm} cycles "
        f"(analytical envelope {report.end_to_end_analytical}; the bus "
        f"saw-tooth alone gives {report.bus_methodology.ubdm})"
    )
    if report.memory_split is not None:
        print(f"Memory term split: {report.memory_split.summary()}")
    print()
    if report.write_burst is not None:
        status = "PASS" if report.write_burst.passed else "FAIL"
        print(f"[{status}] {report.write_burst.name}: {report.write_burst.detail}")
    print(report.bus_methodology.confidence.summary())
    if args.show_sweep:
        print()
        print(
            render_series(
                report.bus_methodology.ks,
                report.bus_methodology.dbus_values,
                "k",
                "dbus",
            )
        )
    return 0 if report.passed else 1


def _run_derive_ubd(args: argparse.Namespace) -> int:
    config = _preset_config(args)
    if args.per_resource:
        return _run_per_resource_derive(args, config)
    estimator = UbdEstimator(
        config,
        instruction_type=args.instruction_type,
        k_max=args.k_max,
        iterations=args.iterations,
    )
    result = estimator.run()
    print(f"Platform: {args.preset} (analytical ubd = {config.ubd} cycles)")
    if config.topology.has_memory_queues:
        if config.has_composable_bounds:
            terms = " + ".join(f"{resource}:{term}" for resource, term in config.ubd_terms.items())
            print(
                f"Topology {config.topology.name}: per-resource bounds {terms} "
                f"= end-to-end {config.end_to_end_ubd} cycles per memory request"
            )
        else:
            print(
                f"Topology {config.topology.name}: no analytical per-resource "
                f"bound for {config.topology.mem_arbitration!r} bank arbitration"
            )
    print(f"delta_nop = {result.delta_nop.cycles_per_nop:.3f} cycles/nop "
          f"(rounded {result.delta_nop.rounded})")
    print(result.period.summary())
    print(f"ubdm = {result.ubdm} cycles")
    print()
    print(result.confidence.summary())
    if args.show_sweep:
        print()
        print(render_series(result.ks, result.dbus_values, "k", "dbus"))
    return 0 if result.confidence.passed else 1


def _run_synchrony(args: argparse.Namespace) -> int:
    config = _preset_config(args)
    runner = ExperimentRunner(config)
    scua = build_rsk(config, 0, iterations=args.iterations)
    contended = runner.run_against_rsk(scua, trace=True)
    histogram = contention_histogram(contended.trace, 0)
    naive = NaiveUbdEstimator(config).estimate_with_rsk_as_scua(iterations=args.iterations)
    print(
        render_histogram(
            histogram.counts,
            title=f"{args.preset}: contention delay per rsk request "
            f"(bus utilisation {contended.bus_utilisation:.0%})",
            label="gamma",
        )
    )
    print()
    print(f"Observed plateau (naive ubdm): {histogram.mode} cycles "
          f"(det/nr = {naive.ubdm:.1f}); analytical ubd = {config.ubd} cycles")
    burst = assess_write_burst(config, contended.result.pmc)
    print(f"[{'PASS' if burst.passed else 'FAIL'}] {burst.name}: {burst.detail}")
    if args.decompose:
        decomposition = latency_decomposition(contended.trace, 0)
        print()
        print(
            f"Per-resource latency decomposition "
            f"({decomposition.total_requests} requests, "
            f"{decomposition.memory_requests} reached the memory stage):"
        )
        for stage, counts in decomposition.histograms.items():
            if not counts:
                continue
            print()
            print(
                render_histogram(
                    counts,
                    title=f"{stage}: wait/service cycles per request "
                    f"(max {decomposition.max_observed(stage)}, "
                    f"mean {decomposition.mean_observed(stage):.1f})",
                    label="cycles",
                )
            )
    return 0


def _run_campaign(args: argparse.Namespace) -> int:
    spec = CampaignSpec(
        presets=(args.preset,),
        arbiters=tuple(args.arbiter) if args.arbiter else ("round_robin",),
        topologies=tuple(args.topology) if args.topology else (),
        contender_counts=tuple(args.contenders) if args.contenders else (),
        seeds=(args.seed,),
        num_workloads=args.workloads,
        iterations=args.iterations,
        rsk_iterations=args.iterations * 5,
        engine=args.engine,
    )
    if args.cache_dir and args.store:
        raise ConfigurationError("--cache-dir and --store are mutually exclusive")
    descriptors = spec.expand()
    cache = None
    store = None
    if args.store:
        campaign_id = campaign_digest([descriptor.digest() for descriptor in descriptors])
        store = cache = ResultStore(args.store, campaign_id=campaign_id)
    elif args.cache_dir:
        cache = ResultCache(args.cache_dir)
    try:
        runner = ParallelRunner(jobs=args.jobs, cache=cache, shard_size=args.shard_size)
        if args.out:
            stream = CampaignStreamWriter(args.out)
            outcome = runner.run(descriptors, stream=stream)
            summary = outcome.summary()
            artifacts = stream.finalize(summary)
            print(render_campaign_summary(summary))
            print()
            print(f"Wrote {artifacts.results_path}")
            print(f"Wrote {artifacts.summary_path}")
            print(f"Wrote {artifacts.manifest_path}")
        else:
            outcome = runner.run(descriptors)
            summary = outcome.summary()
            print(render_campaign_summary(summary))
    finally:
        if store is not None:
            store.close()
    return 0


def _run_cache(args: argparse.Namespace) -> int:
    """The ``cache`` subcommand: durable-store maintenance.

    Exit codes: 0 on success; 2 when the store or legacy directory is
    missing/invalid (raised as :class:`ConfigurationError` and mapped by
    :func:`main`).
    """
    if args.cache_command in ("stats", "gc") and not is_store_directory(args.store):
        raise ConfigurationError(
            f"{args.store} is not a result store (no index); "
            "create one with 'repro-bounds campaign --store' or "
            "'repro-bounds cache migrate'"
        )
    with ResultStore(args.store) as store:
        if args.cache_command == "stats":
            stats = store.stats()
            print(f"Store: {stats['directory']} (schema {stats['schema']})")
            print(
                f"Entries: {stats['entries']} "
                f"({stats['artifact_bytes']} artifact bytes, "
                f"{stats['index_bytes']} index bytes)"
            )
            campaigns = stats["campaigns"]
            if isinstance(campaigns, dict) and campaigns:
                print("Per-campaign attribution:")
                print(
                    render_table(
                        ["campaign", "entries"],
                        [[name, campaigns[name]] for name in sorted(campaigns)],
                    )
                )
            return 0
        if args.cache_command == "migrate":
            added = store.migrate_legacy(args.legacy)
            print(f"Migrated {added} record(s) from {args.legacy} into {store.directory}")
            print(f"Store now holds {len(store)} entries")
            return 0
        if args.cache_command == "gc":
            if args.keep_days < 0:
                raise ConfigurationError("--keep-days must be non-negative")
            removed = store.gc(keep_days=args.keep_days)
            print(
                f"Removed {removed} entr{'y' if removed == 1 else 'ies'} older "
                f"than {args.keep_days:g} day(s); {len(store)} remain"
            )
            return 0
    raise ConfigurationError(
        f"unknown cache command {args.cache_command!r}"
    )  # pragma: no cover


def _run_audit(args: argparse.Namespace) -> int:
    """The ``audit`` subcommand: dimensions -> verdict -> artifacts."""
    from .audit import AuditOptions, run_audit

    options = AuditOptions(
        k_max=args.k_max,
        iterations=args.iterations,
        stress_iterations=args.stress_iterations,
        synchrony_iterations=args.synchrony_iterations,
        equivalence_iterations=args.equivalence_iterations,
    )
    artifacts = run_audit(args.target, args.out, topology=args.topology, options=options)
    report = artifacts.report
    target = " ".join(f"{key}={value}" for key, value in sorted(report.target.items()))
    print(f"Audit target: {target}")
    print()
    print(
        render_table(
            ["dimension", "verdict", "findings"],
            [
                [dimension.name, dimension.verdict.upper(), len(dimension.findings)]
                for dimension in report.dimensions
            ],
        )
    )
    flagged = [
        (dimension, finding)
        for dimension in report.dimensions
        for finding in dimension.findings
        if finding.verdict != "pass"
    ]
    if flagged:
        print()
        for dimension, finding in flagged:
            print(
                f"[{finding.verdict.upper()}] {dimension.name}/{finding.check}: "
                f"{finding.detail}"
            )
    print()
    print(f"Wrote {artifacts.flags_path}")
    print(f"Wrote {artifacts.html_path}")
    print(f"Verdict: {report.verdict} (exit code {report.exit_code})")
    return report.exit_code


def _run_list(args: argparse.Namespace) -> int:
    """Print every registered preset, arbiter, engine and topology.

    Reads the registries the factories themselves use
    (:mod:`repro.sim.arbiter`, :mod:`repro.sim.scheduler`,
    :mod:`repro.sim.topology`), so the listing cannot drift from what
    ``System`` actually builds.
    """
    del args
    from .sim.arbiter import ARBITER_REGISTRY
    from .sim.scheduler import ENGINE_REGISTRY
    from .sim.topology import TOPOLOGY_REGISTRY

    print("Presets (--preset):")
    rows = []
    for name in sorted(PRESETS):
        config = get_preset(name)
        rows.append(
            [
                name,
                config.num_cores,
                config.bus.arbitration,
                config.topology.name,
                config.engine,
                config.ubd,
            ]
        )
    print(render_table(["name", "cores", "bus arbiter", "topology", "engine", "ubd"], rows))

    print()
    print("Arbitration policies (--arbiter, TopologyConfig.mem_arbitration):")
    print(
        render_table(
            ["name", "description"],
            [[entry.name, entry.description] for entry in ARBITER_REGISTRY.values()],
        )
    )

    print()
    print("Simulation engines (--engine):")
    print(
        render_table(
            ["name", "description"],
            [[entry.name, entry.description] for entry in ENGINE_REGISTRY.values()],
        )
    )

    print()
    print("Topologies (--topology):")
    print(
        render_table(
            ["name", "description"],
            [[entry.name, entry.description] for entry in TOPOLOGY_REGISTRY.values()],
        )
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``repro-bounds`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "derive-ubd":
            return _run_derive_ubd(args)
        if args.command == "synchrony":
            return _run_synchrony(args)
        if args.command == "campaign":
            return _run_campaign(args)
        if args.command == "audit":
            return _run_audit(args)
        if args.command == "cache":
            return _run_cache(args)
        if args.command == "list":
            return _run_list(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
