"""Command-line interface.

Three subcommands cover the library's main use cases without writing any
Python:

* ``repro-bounds derive-ubd`` — run the full rsk-nop methodology on a preset
  platform and print the derived ``ubdm`` with its confidence report;
* ``repro-bounds synchrony`` — run a load rsk against ``Nc - 1`` rsk and show
  the contention-delay histogram (the Figure 6(b) experiment);
* ``repro-bounds campaign`` — run randomly composed EEMBC-like workloads and
  show the ready-contenders histogram (the Figure 6(a) experiment).

Examples::

    repro-bounds derive-ubd --preset ref --k-max 60 --iterations 40
    repro-bounds synchrony --preset var
    repro-bounds campaign --preset ref --workloads 8
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis.contention import contention_histogram
from .config import PRESETS, get_preset
from .kernels.rsk import build_rsk
from .methodology.experiment import ExperimentRunner
from .methodology.naive import NaiveUbdEstimator
from .methodology.ubd import UbdEstimator
from .methodology.workloads import run_rsk_reference_workload, run_workload_campaign
from .report.histogram import render_histogram
from .report.tables import render_series


def build_parser() -> argparse.ArgumentParser:
    """Create the argument parser for the ``repro-bounds`` command."""
    parser = argparse.ArgumentParser(
        prog="repro-bounds",
        description="Measurement-based contention bounds for round-robin buses (DAC 2015 reproduction)",
    )
    parser.add_argument(
        "--preset",
        choices=sorted(PRESETS),
        default="ref",
        help="platform preset to simulate (default: ref)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    derive = subparsers.add_parser(
        "derive-ubd", help="run the rsk-nop methodology and report ubdm"
    )
    derive.add_argument("--k-max", type=int, default=60, help="initial nop sweep upper bound")
    derive.add_argument(
        "--iterations", type=int, default=40, help="loop iterations of each rsk-nop kernel"
    )
    derive.add_argument(
        "--instruction-type",
        choices=("load", "store"),
        default="load",
        help="bus access type used by the kernels",
    )
    derive.add_argument(
        "--show-sweep", action="store_true", help="print the measured dbus(k) series"
    )

    synchrony = subparsers.add_parser(
        "synchrony", help="show the per-request contention histogram of rsk vs rsk"
    )
    synchrony.add_argument("--iterations", type=int, default=150)

    campaign = subparsers.add_parser(
        "campaign", help="show the ready-contenders histogram for random workloads"
    )
    campaign.add_argument("--workloads", type=int, default=8)
    campaign.add_argument("--iterations", type=int, default=25)
    campaign.add_argument("--seed", type=int, default=2015)

    return parser


def _run_derive_ubd(args: argparse.Namespace) -> int:
    config = get_preset(args.preset)
    estimator = UbdEstimator(
        config,
        instruction_type=args.instruction_type,
        k_max=args.k_max,
        iterations=args.iterations,
    )
    result = estimator.run()
    print(f"Platform: {args.preset} (analytical ubd = {config.ubd} cycles)")
    print(f"delta_nop = {result.delta_nop.cycles_per_nop:.3f} cycles/nop "
          f"(rounded {result.delta_nop.rounded})")
    print(result.period.summary())
    print(f"ubdm = {result.ubdm} cycles")
    print()
    print(result.confidence.summary())
    if args.show_sweep:
        print()
        print(render_series(result.ks, result.dbus_values, "k", "dbus"))
    return 0 if result.confidence.passed else 1


def _run_synchrony(args: argparse.Namespace) -> int:
    config = get_preset(args.preset)
    runner = ExperimentRunner(config)
    scua = build_rsk(config, 0, iterations=args.iterations)
    contended = runner.run_against_rsk(scua, trace=True)
    histogram = contention_histogram(contended.trace, 0)
    naive = NaiveUbdEstimator(config).estimate_with_rsk_as_scua(iterations=args.iterations)
    print(
        render_histogram(
            histogram.counts,
            title=f"{args.preset}: contention delay per rsk request "
            f"(bus utilisation {contended.bus_utilisation:.0%})",
            label="gamma",
        )
    )
    print()
    print(f"Observed plateau (naive ubdm): {histogram.mode} cycles "
          f"(det/nr = {naive.ubdm:.1f}); analytical ubd = {config.ubd} cycles")
    return 0


def _run_campaign(args: argparse.Namespace) -> int:
    config = get_preset(args.preset)
    campaign = run_workload_campaign(
        config,
        num_workloads=args.workloads,
        observed_iterations=args.iterations,
        seed=args.seed,
    )
    rsk_run = run_rsk_reference_workload(config, iterations=args.iterations * 5)
    print(
        render_histogram(
            campaign.aggregated_counts(),
            title=f"{args.preset}: ready contenders, EEMBC-like workloads",
            label="contenders",
        )
    )
    print()
    print(
        render_histogram(
            rsk_run.histogram.counts,
            title=f"{args.preset}: ready contenders, {config.num_cores} x rsk",
            label="contenders",
        )
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``repro-bounds`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "derive-ubd":
        return _run_derive_ubd(args)
    if args.command == "synchrony":
        return _run_synchrony(args)
    if args.command == "campaign":
        return _run_campaign(args)
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
