"""Command-line interface.

Five subcommands cover the library's main use cases without writing any
Python:

* ``repro-bounds derive-ubd`` — run the full rsk-nop methodology on a preset
  platform and print the derived ``ubdm`` with its confidence report;
* ``repro-bounds synchrony`` — run a load rsk against ``Nc - 1`` rsk and show
  the contention-delay histogram (the Figure 6(b) experiment);
* ``repro-bounds campaign`` — run an experiment campaign (randomly composed
  EEMBC-like workloads plus rsk reference runs, the Figure 6(a) experiment)
  through the parallel campaign engine, optionally writing JSON artifacts;
* ``repro-bounds audit`` — run every registered audit dimension over a
  preset, an ``ArchConfig`` JSON file or a finished campaign directory and
  emit a machine-readable ``flags.json`` plus a self-contained
  ``report.html``, exiting with the worst verdict (0 pass / 1 warn /
  2 fail) so CI can gate on it;
* ``repro-bounds cache`` — inspect and maintain a durable result store
  (``stats``), migrate a legacy flat cache directory into one (``migrate``)
  or expire old entries (``gc --keep-days N``).  Exit codes: 0 on success,
  2 on configuration errors (missing store/legacy directory, corrupt
  arguments) — the same convention every subcommand follows;
* ``repro-bounds list`` — print the registered presets, arbitration
  policies, simulation engines and topologies.  The listing is read straight
  from the factories' registries, so it can never drift from what the
  simulator actually builds;
* ``repro-bounds serve`` — run the campaign daemon: accept specs over a
  Unix/TCP socket, execute them FIFO against one shared store and worker
  pool, and hand shards to remote executors (DESIGN.md §11);
* ``repro-bounds submit | status | results | shutdown`` — the client
  commands against a running daemon;
* ``repro-bounds worker`` — connect to a daemon as a remote shard
  executor (pull shards, heartbeat, execute, report).

Examples::

    repro-bounds derive-ubd --preset ref --k-max 60 --iterations 40
    repro-bounds synchrony --preset var
    repro-bounds campaign --preset ref --workloads 8
    repro-bounds campaign --jobs 4 --out out/campaign --store out/store
    repro-bounds campaign --topology bus_only --topology bus_bank_queues
    repro-bounds cache stats --store out/store --json
    repro-bounds cache migrate --store out/store --legacy out/cache
    repro-bounds cache gc --store out/store --keep-days 30
    repro-bounds audit small --topology split_bus --out out/audit
    repro-bounds audit out/campaign
    repro-bounds serve --socket out/serve/daemon.sock --store out/store
    repro-bounds submit spec.json --socket out/serve/daemon.sock --wait
    repro-bounds status --socket out/serve/daemon.sock
    repro-bounds worker --connect tcp:daemon-host:7915
    repro-bounds list
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
from pathlib import Path
from typing import List, Optional

from .analysis.confidence import assess_write_burst
from .analysis.contention import contention_histogram, latency_decomposition
from .campaign import (
    CampaignSpec,
    CampaignStreamWriter,
    ParallelRunner,
    ResultCache,
    ResultStore,
    campaign_digest,
    is_store_directory,
)
from .config import PRESETS, get_preset
from .errors import ConfigurationError, ReproError
from .sim.arbiter import registered_arbiters
from .sim.scheduler import registered_engines
from .sim.topology import registered_topologies
from .kernels.rsk import build_rsk
from .methodology.experiment import ExperimentRunner
from .methodology.naive import NaiveUbdEstimator
from .methodology.ubd import MeasuredBoundPipeline, UbdEstimator
from .report.campaign import render_campaign_summary
from .report.histogram import render_histogram
from .report.tables import render_series, render_table


def build_parser() -> argparse.ArgumentParser:
    """Create the argument parser for the ``repro-bounds`` command."""
    parser = argparse.ArgumentParser(
        prog="repro-bounds",
        description="Measurement-based contention bounds for round-robin buses "
        "(DAC 2015 reproduction)",
    )
    parser.add_argument(
        "--preset",
        choices=sorted(PRESETS),
        default="ref",
        help="platform preset to simulate (default: ref)",
    )
    parser.add_argument(
        "--engine",
        choices=registered_engines(),
        default="event",
        help="simulation engine: the event-driven fast path, the codegen "
        "engine (a loop generated for the configured topology chain and "
        "arbiter set, falling back to the event engine on unknown registry "
        "entries) or the stepped cycle-by-cycle oracle; all are cycle-exact "
        "(default: event)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    derive = subparsers.add_parser("derive-ubd", help="run the rsk-nop methodology and report ubdm")
    derive.add_argument("--k-max", type=int, default=60, help="initial nop sweep upper bound")
    derive.add_argument(
        "--iterations", type=int, default=40, help="loop iterations of each rsk-nop kernel"
    )
    derive.add_argument(
        "--instruction-type",
        choices=("load", "store"),
        default="load",
        help="bus access type used by the kernels",
    )
    derive.add_argument(
        "--show-sweep", action="store_true", help="print the measured dbus(k) series"
    )
    derive.add_argument(
        "--topology",
        choices=registered_topologies(),
        default=None,
        help="override the preset's shared-resource topology",
    )
    derive.add_argument(
        "--per-resource",
        action="store_true",
        help="run the resource-generic measured-bound pipeline: one measured "
        "ubdm term per shared resource of the topology (selected from the "
        "rsk registry), sandwich-checked against the analytical terms and "
        "composed into an end-to-end measured bound",
    )
    derive.add_argument(
        "--stress-iterations",
        type=int,
        default=40,
        help="loop iterations of each per-resource stressing kernel "
        "(--per-resource only)",
    )

    synchrony = subparsers.add_parser(
        "synchrony", help="show the per-request contention histogram of rsk vs rsk"
    )
    synchrony.add_argument("--iterations", type=int, default=150)
    synchrony.add_argument(
        "--topology",
        choices=registered_topologies(),
        default=None,
        help="override the preset's shared-resource topology",
    )
    synchrony.add_argument(
        "--decompose",
        action="store_true",
        help="additionally attribute each request's latency to bus wait, "
        "bank-queue wait, DRAM service and response wait (per-resource "
        "Figure 6(b)-style histograms; needs a run with memory traffic to "
        "show more than the bus stage)",
    )

    campaign = subparsers.add_parser(
        "campaign",
        help="run an experiment campaign (random workloads + rsk references) "
        "with optional parallelism, caching and JSON artifacts",
    )
    campaign.add_argument("--workloads", type=int, default=8)
    campaign.add_argument("--iterations", type=int, default=25)
    campaign.add_argument("--seed", type=int, default=2015)
    campaign.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes; 1 runs in-process (results are identical)",
    )
    campaign.add_argument(
        "--out",
        metavar="DIR",
        help="write results.jsonl, summary.json and the campaign.json "
        "manifest into DIR, streaming them while the campaign runs",
    )
    campaign.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="flat content-addressed result cache (one file per digest); "
        "re-runs only simulate misses",
    )
    campaign.add_argument(
        "--store",
        metavar="DIR",
        help="durable SQLite-indexed result store; like --cache-dir but "
        "lookups are batched index queries and hits dedupe across all "
        "historical campaigns (see 'repro-bounds cache')",
    )
    campaign.add_argument(
        "--shard-size",
        type=int,
        default=None,
        metavar="N",
        help="runs per dispatched shard (default: auto, ~4 shards per job)",
    )
    campaign.add_argument(
        "--arbiter",
        action="append",
        choices=registered_arbiters(),
        help="bus arbitration policy to sweep (repeatable; default round_robin)",
    )
    campaign.add_argument(
        "--contenders",
        type=int,
        action="append",
        help="number of co-runners to sweep (repeatable; default: all cores)",
    )
    campaign.add_argument(
        "--topology",
        action="append",
        choices=registered_topologies(),
        help="shared-resource topology to sweep (repeatable; default: the "
        "preset's own topology)",
    )

    audit = subparsers.add_parser(
        "audit",
        help="evaluate every registered audit dimension over a preset, an "
        "ArchConfig JSON file or a finished campaign directory; emits "
        "flags.json + report.html and exits with the worst verdict "
        "(0 pass / 1 warn / 2 fail)",
    )
    audit.add_argument(
        "target",
        help="preset name, ArchConfig JSON file, or campaign output directory",
    )
    audit.add_argument(
        "--topology",
        choices=registered_topologies(),
        default=None,
        help="override the topology of a preset/config target "
        "(invalid for campaign directories)",
    )
    audit.add_argument(
        "--out",
        metavar="DIR",
        default="out/audit",
        help="directory receiving flags.json and report.html "
        "(default: out/audit)",
    )
    audit.add_argument("--k-max", type=int, default=60, help="initial nop sweep upper bound")
    audit.add_argument(
        "--iterations",
        type=int,
        default=40,
        help="loop iterations of each rsk-nop kernel",
    )
    audit.add_argument(
        "--stress-iterations",
        type=int,
        default=40,
        help="loop iterations of each per-resource stressing kernel",
    )
    audit.add_argument(
        "--synchrony-iterations",
        type=int,
        default=150,
        help="loop iterations of the traced synchrony/store-probe runs",
    )
    audit.add_argument(
        "--equivalence-iterations",
        type=int,
        default=40,
        help="loop iterations of the engine cross-check run",
    )

    cache = subparsers.add_parser(
        "cache",
        help="inspect and maintain a durable result store (exit 0 on "
        "success, 2 on configuration errors)",
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cache_stats = cache_sub.add_parser(
        "stats",
        help="print entry counts, per-campaign attribution and on-disk sizes",
    )
    cache_stats.add_argument(
        "--store", metavar="DIR", required=True, help="result store directory"
    )
    cache_migrate = cache_sub.add_parser(
        "migrate",
        help="import a legacy flat cache directory (one JSON file per "
        "digest) into a store; already-present digests are skipped, the "
        "source is left untouched",
    )
    cache_migrate.add_argument(
        "--store", metavar="DIR", required=True, help="result store directory "
        "(created if missing)"
    )
    cache_migrate.add_argument(
        "--legacy",
        metavar="DIR",
        required=True,
        help="legacy --cache-dir directory to import; pass the store "
        "directory itself to index artifacts already in place",
    )
    cache_gc = cache_sub.add_parser(
        "gc", help="delete entries older than --keep-days (index and artifacts)"
    )
    cache_gc.add_argument(
        "--store", metavar="DIR", required=True, help="result store directory"
    )
    cache_gc.add_argument(
        "--keep-days",
        type=float,
        required=True,
        metavar="N",
        help="keep entries created within the last N days",
    )
    for cache_parser in (cache_stats, cache_gc):
        cache_parser.add_argument(
            "--json",
            action="store_true",
            help="emit the result as one JSON object (for scripting)",
        )

    serve = subparsers.add_parser(
        "serve",
        help="run the campaign daemon: accept specs over a socket, execute "
        "them FIFO against one shared store and worker pool, ship shards "
        "to remote workers, drain gracefully on SIGTERM/shutdown",
    )
    serve.add_argument(
        "--socket",
        metavar="ADDR",
        required=True,
        help="listen address: a Unix socket path (default form, also "
        "'unix:/path'), or 'tcp:host:port' for multi-host setups",
    )
    serve.add_argument(
        "--store",
        metavar="DIR",
        required=True,
        help="shared durable result store (created if missing); every "
        "submitted campaign reads and writes it, so overlapping "
        "submissions simulate only their miss-frontier",
    )
    serve.add_argument(
        "--data-dir",
        metavar="DIR",
        default="out/serve",
        help="daemon working directory; job artifacts stream to "
        "DATA_DIR/jobs/<job-id>/ (default: out/serve)",
    )
    serve.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="local worker processes (default: CPU count); 0 disables "
        "local execution so shards only flow to remote workers",
    )
    serve.add_argument(
        "--shard-size",
        type=int,
        default=None,
        metavar="N",
        help="runs per dispatched shard (default: auto per job)",
    )
    serve.add_argument(
        "--shard-timeout",
        type=float,
        default=120.0,
        metavar="SECONDS",
        help="requeue a remote shard whose worker has not heartbeat for "
        "this long (default: 120)",
    )
    serve.add_argument(
        "--log",
        metavar="FILE",
        default=None,
        help="append operational log lines to FILE (default: stderr)",
    )

    submit = subparsers.add_parser(
        "submit",
        help="submit a campaign spec (JSON file) to a running daemon",
    )
    submit.add_argument(
        "spec",
        metavar="SPEC.json",
        help="campaign spec file: a JSON object with CampaignSpec fields "
        "(presets, arbiters, seeds, num_workloads, ...); unknown fields "
        "are rejected",
    )
    submit.add_argument(
        "--socket", metavar="ADDR", required=True, help="daemon address"
    )
    submit.add_argument(
        "--out",
        metavar="DIR",
        default=None,
        help="write this job's artifacts into DIR instead of the daemon's "
        "data directory",
    )
    submit.add_argument(
        "--wait",
        action="store_true",
        help="block until the job finishes and print its statistics",
    )
    submit.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="give up on --wait after this long (default: wait forever)",
    )
    submit.add_argument(
        "--json", action="store_true", help="print the response as JSON"
    )

    status = subparsers.add_parser(
        "status", help="show one job (or the whole job table) of a daemon"
    )
    status.add_argument(
        "job_id", nargs="?", default=None, metavar="JOB-ID",
        help="job to query (omit for the full table)",
    )
    status.add_argument(
        "--socket", metavar="ADDR", required=True, help="daemon address"
    )
    status.add_argument(
        "--json", action="store_true", help="print the response as JSON"
    )

    results = subparsers.add_parser(
        "results", help="fetch a completed job's summary (and records with --json)"
    )
    results.add_argument("job_id", metavar="JOB-ID")
    results.add_argument(
        "--socket", metavar="ADDR", required=True, help="daemon address"
    )
    results.add_argument(
        "--json",
        action="store_true",
        help="print the full results frame (records + summary) as JSON",
    )

    shutdown = subparsers.add_parser(
        "shutdown",
        help="ask a daemon to drain its queue and exit (graceful; queued "
        "jobs still run)",
    )
    shutdown.add_argument(
        "--socket", metavar="ADDR", required=True, help="daemon address"
    )
    shutdown.add_argument(
        "--json", action="store_true", help="print the response as JSON"
    )

    worker = subparsers.add_parser(
        "worker",
        help="connect to a daemon as a remote shard executor: pull leased "
        "shards, heartbeat while executing, report results; exits when "
        "the daemon drains",
    )
    worker.add_argument(
        "--connect", metavar="ADDR", required=True, help="daemon address"
    )
    worker.add_argument(
        "--id",
        dest="worker_id",
        metavar="NAME",
        default=None,
        help="worker name shown in the daemon log (default: host:pid)",
    )
    worker.add_argument(
        "--max-shards",
        type=int,
        default=None,
        metavar="N",
        help="exit after completing N shards (default: run until drain)",
    )
    worker.add_argument(
        "--quiet", action="store_true", help="suppress per-shard log lines"
    )

    subparsers.add_parser(
        "list",
        help="print registered presets, arbiters, engines and topologies "
        "(read from the factories' registries)",
    )

    return parser


def _preset_config(args: argparse.Namespace):
    """Resolve the platform from the common --preset/--engine/--topology flags."""
    config = get_preset(args.preset, engine=args.engine)
    if getattr(args, "topology", None):
        config = config.with_topology_name(args.topology)
    return config


def _run_per_resource_derive(args: argparse.Namespace, config) -> int:
    """The ``derive-ubd --per-resource`` path: the measured-bound pipeline."""
    pipeline = MeasuredBoundPipeline(
        config,
        instruction_type=args.instruction_type,
        k_max=args.k_max,
        iterations=args.iterations,
        stress_iterations=args.stress_iterations,
    )
    report = pipeline.run()
    print(
        f"Platform: {args.preset} (topology {report.topology}; analytical "
        f"end-to-end bound {report.end_to_end_analytical} cycles)"
    )
    print()
    print("Measured per-resource bounds (observed <= ubdm <= analytical):")
    rows = []
    for term in report.terms.values():
        rows.append(
            [
                term.resource,
                term.observed_worst_case,
                term.ubdm,
                term.analytical,
                term.method,
                term.sandwich.status,
            ]
        )
    print(
        render_table(["resource", "observed", "ubdm", "analytical", "method", "check"], rows)
    )
    print()
    print(
        f"End-to-end measured bound: {report.end_to_end_ubdm} cycles "
        f"(analytical envelope {report.end_to_end_analytical}; the bus "
        f"saw-tooth alone gives {report.bus_methodology.ubdm})"
    )
    if report.memory_split is not None:
        print(f"Memory term split: {report.memory_split.summary()}")
    print()
    if report.write_burst is not None:
        status = "PASS" if report.write_burst.passed else "FAIL"
        print(f"[{status}] {report.write_burst.name}: {report.write_burst.detail}")
    print(report.bus_methodology.confidence.summary())
    if args.show_sweep:
        print()
        print(
            render_series(
                report.bus_methodology.ks,
                report.bus_methodology.dbus_values,
                "k",
                "dbus",
            )
        )
    return 0 if report.passed else 1


def _run_derive_ubd(args: argparse.Namespace) -> int:
    config = _preset_config(args)
    if args.per_resource:
        return _run_per_resource_derive(args, config)
    estimator = UbdEstimator(
        config,
        instruction_type=args.instruction_type,
        k_max=args.k_max,
        iterations=args.iterations,
    )
    result = estimator.run()
    print(f"Platform: {args.preset} (analytical ubd = {config.ubd} cycles)")
    if config.topology.has_memory_queues:
        if config.has_composable_bounds:
            terms = " + ".join(f"{resource}:{term}" for resource, term in config.ubd_terms.items())
            print(
                f"Topology {config.topology.name}: per-resource bounds {terms} "
                f"= end-to-end {config.end_to_end_ubd} cycles per memory request"
            )
        else:
            print(
                f"Topology {config.topology.name}: no analytical per-resource "
                f"bound for {config.topology.mem_arbitration!r} bank arbitration"
            )
    print(f"delta_nop = {result.delta_nop.cycles_per_nop:.3f} cycles/nop "
          f"(rounded {result.delta_nop.rounded})")
    print(result.period.summary())
    print(f"ubdm = {result.ubdm} cycles")
    print()
    print(result.confidence.summary())
    if args.show_sweep:
        print()
        print(render_series(result.ks, result.dbus_values, "k", "dbus"))
    return 0 if result.confidence.passed else 1


def _run_synchrony(args: argparse.Namespace) -> int:
    config = _preset_config(args)
    runner = ExperimentRunner(config)
    scua = build_rsk(config, 0, iterations=args.iterations)
    contended = runner.run_against_rsk(scua, trace=True)
    histogram = contention_histogram(contended.trace, 0)
    naive = NaiveUbdEstimator(config).estimate_with_rsk_as_scua(iterations=args.iterations)
    print(
        render_histogram(
            histogram.counts,
            title=f"{args.preset}: contention delay per rsk request "
            f"(bus utilisation {contended.bus_utilisation:.0%})",
            label="gamma",
        )
    )
    print()
    print(f"Observed plateau (naive ubdm): {histogram.mode} cycles "
          f"(det/nr = {naive.ubdm:.1f}); analytical ubd = {config.ubd} cycles")
    burst = assess_write_burst(config, contended.result.pmc)
    print(f"[{'PASS' if burst.passed else 'FAIL'}] {burst.name}: {burst.detail}")
    if args.decompose:
        decomposition = latency_decomposition(contended.trace, 0)
        print()
        print(
            f"Per-resource latency decomposition "
            f"({decomposition.total_requests} requests, "
            f"{decomposition.memory_requests} reached the memory stage):"
        )
        for stage, counts in decomposition.histograms.items():
            if not counts:
                continue
            print()
            print(
                render_histogram(
                    counts,
                    title=f"{stage}: wait/service cycles per request "
                    f"(max {decomposition.max_observed(stage)}, "
                    f"mean {decomposition.mean_observed(stage):.1f})",
                    label="cycles",
                )
            )
    return 0


def _run_campaign(args: argparse.Namespace) -> int:
    spec = CampaignSpec(
        presets=(args.preset,),
        arbiters=tuple(args.arbiter) if args.arbiter else ("round_robin",),
        topologies=tuple(args.topology) if args.topology else (),
        contender_counts=tuple(args.contenders) if args.contenders else (),
        seeds=(args.seed,),
        num_workloads=args.workloads,
        iterations=args.iterations,
        rsk_iterations=args.iterations * 5,
        engine=args.engine,
    )
    if args.cache_dir and args.store:
        raise ConfigurationError("--cache-dir and --store are mutually exclusive")
    descriptors = spec.expand()
    cache = None
    store = None
    if args.store:
        campaign_id = campaign_digest([descriptor.digest() for descriptor in descriptors])
        store = cache = ResultStore(args.store, campaign_id=campaign_id)
    elif args.cache_dir:
        cache = ResultCache(args.cache_dir)
    try:
        runner = ParallelRunner(jobs=args.jobs, cache=cache, shard_size=args.shard_size)
        if args.out:
            stream = CampaignStreamWriter(args.out)
            outcome = runner.run(descriptors, stream=stream)
            summary = outcome.summary()
            artifacts = stream.finalize(summary)
            print(render_campaign_summary(summary))
            print()
            print(f"Wrote {artifacts.results_path}")
            print(f"Wrote {artifacts.summary_path}")
            print(f"Wrote {artifacts.manifest_path}")
        else:
            outcome = runner.run(descriptors)
            summary = outcome.summary()
            print(render_campaign_summary(summary))
    finally:
        if store is not None:
            store.close()
    return 0


def _run_cache(args: argparse.Namespace) -> int:
    """The ``cache`` subcommand: durable-store maintenance.

    Exit codes: 0 on success; 2 when the store or legacy directory is
    missing/invalid (raised as :class:`ConfigurationError` and mapped by
    :func:`main`).
    """
    if args.cache_command in ("stats", "gc") and not is_store_directory(args.store):
        raise ConfigurationError(
            f"{args.store} is not a result store (no index); "
            "create one with 'repro-bounds campaign --store' or "
            "'repro-bounds cache migrate'"
        )
    with ResultStore(args.store) as store:
        if args.cache_command == "stats":
            stats = store.stats()
            if args.json:
                print(json.dumps(stats, sort_keys=True, indent=2))
                return 0
            print(f"Store: {stats['directory']} (schema {stats['schema']})")
            print(
                f"Entries: {stats['entries']} "
                f"({stats['artifact_bytes']} artifact bytes, "
                f"{stats['index_bytes']} index bytes)"
            )
            traces = stats.get("traces")
            if isinstance(traces, dict):
                print(
                    f"Traces: {traces['entries']} "
                    f"({traces['bytes']} bytes, replay-engine core captures)"
                )
            campaigns = stats["campaigns"]
            if isinstance(campaigns, dict) and campaigns:
                print("Per-campaign attribution:")
                print(
                    render_table(
                        ["campaign", "entries"],
                        [[name, campaigns[name]] for name in sorted(campaigns)],
                    )
                )
            claims = stats["active_claims"]
            if isinstance(claims, dict) and claims:
                print("Active claims (campaigns a live process holds in use):")
                for campaign_id in sorted(claims):
                    claim = claims[campaign_id]
                    print(
                        f"  {campaign_id}: pid {claim['pid']}, "
                        f"heartbeat {claim['age_seconds']:.0f}s ago"
                    )
            return 0
        if args.cache_command == "migrate":
            added = store.migrate_legacy(args.legacy)
            print(f"Migrated {added} record(s) from {args.legacy} into {store.directory}")
            print(f"Store now holds {len(store)} entries")
            return 0
        if args.cache_command == "gc":
            if args.keep_days < 0:
                raise ConfigurationError("--keep-days must be non-negative")
            outcome = store.gc(keep_days=args.keep_days)
            if args.json:
                print(json.dumps(outcome.as_dict(), sort_keys=True, indent=2))
                return 0
            removed = outcome.removed
            print(
                f"Removed {removed} entr{'y' if removed == 1 else 'ies'} older "
                f"than {args.keep_days:g} day(s); {len(store)} remain"
            )
            if outcome.skipped_in_use:
                in_use = ", ".join(outcome.in_use_campaigns)
                print(
                    f"Skipped {outcome.skipped_in_use} in-use entr"
                    f"{'y' if outcome.skipped_in_use == 1 else 'ies'} "
                    f"(claimed by: {in_use})"
                )
            if outcome.traces_removed:
                print(f"Removed {outcome.traces_removed} expired core trace(s)")
            return 0
    raise ConfigurationError(
        f"unknown cache command {args.cache_command!r}"
    )  # pragma: no cover


def _run_audit(args: argparse.Namespace) -> int:
    """The ``audit`` subcommand: dimensions -> verdict -> artifacts."""
    from .audit import AuditOptions, run_audit

    options = AuditOptions(
        k_max=args.k_max,
        iterations=args.iterations,
        stress_iterations=args.stress_iterations,
        synchrony_iterations=args.synchrony_iterations,
        equivalence_iterations=args.equivalence_iterations,
    )
    artifacts = run_audit(args.target, args.out, topology=args.topology, options=options)
    report = artifacts.report
    target = " ".join(f"{key}={value}" for key, value in sorted(report.target.items()))
    print(f"Audit target: {target}")
    print()
    print(
        render_table(
            ["dimension", "verdict", "findings"],
            [
                [dimension.name, dimension.verdict.upper(), len(dimension.findings)]
                for dimension in report.dimensions
            ],
        )
    )
    flagged = [
        (dimension, finding)
        for dimension in report.dimensions
        for finding in dimension.findings
        if finding.verdict != "pass"
    ]
    if flagged:
        print()
        for dimension, finding in flagged:
            print(
                f"[{finding.verdict.upper()}] {dimension.name}/{finding.check}: "
                f"{finding.detail}"
            )
    print()
    print(f"Wrote {artifacts.flags_path}")
    print(f"Wrote {artifacts.html_path}")
    print(f"Verdict: {report.verdict} (exit code {report.exit_code})")
    return report.exit_code


def _job_stats_line(job: dict) -> str:
    """One-line completion report for a job payload; the ``N simulated``
    phrasing matches the campaign summary so scripts can grep either."""
    stats = job.get("stats", {})
    return (
        f"{job['job_id']} {job['state']}: {stats.get('simulated', '?')} simulated, "
        f"{stats.get('cached', '?')} cached ({job.get('total_runs', '?')} runs) "
        f"-> {job.get('out_dir', '?')}"
    )


def _run_serve(args: argparse.Namespace) -> int:
    """The ``serve`` subcommand: run the daemon until it drains."""
    from .service import CampaignDaemon, parse_address

    address = parse_address(args.socket)
    if address.kind == "unix":
        parent = Path(address.path).parent
        if str(parent) not in ("", "."):
            parent.mkdir(parents=True, exist_ok=True)
    jobs = args.jobs if args.jobs is not None else max(1, os.cpu_count() or 1)
    log_handle = open(args.log, "a", encoding="utf-8") if args.log else None
    daemon = CampaignDaemon(
        store_dir=args.store,
        data_dir=args.data_dir,
        jobs=jobs,
        shard_size=args.shard_size,
        shard_timeout=args.shard_timeout,
        log=log_handle,
    )

    def _drain(signum: int, frame: object) -> None:
        del signum, frame
        daemon.request_shutdown()

    previous = {
        sig: signal.signal(sig, _drain) for sig in (signal.SIGTERM, signal.SIGINT)
    }
    try:
        daemon.serve(address)
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
        if log_handle is not None:
            log_handle.close()
    return 0


def _run_submit(args: argparse.Namespace) -> int:
    """The ``submit`` subcommand: spec file -> daemon -> job id."""
    from .service import ServiceClient, parse_address

    try:
        with open(args.spec, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as exc:
        raise ConfigurationError(f"cannot read campaign spec {args.spec}: {exc}") from exc
    spec = CampaignSpec.from_dict(payload)
    client = ServiceClient(parse_address(args.socket))
    submitted = client.submit(spec, out=args.out)
    job_id = str(submitted["job_id"])
    if not args.wait:
        if args.json:
            print(json.dumps(submitted, sort_keys=True, indent=2))
        else:
            print(
                f"Submitted {job_id}: {submitted['total_runs']} runs "
                f"-> {submitted['out_dir']}"
            )
        return 0
    job = client.wait(job_id, timeout=args.timeout)
    if args.json:
        print(json.dumps(job, sort_keys=True, indent=2))
    else:
        print(_job_stats_line(job))
    return 0


def _run_status(args: argparse.Namespace) -> int:
    """The ``status`` subcommand: one job, or the daemon's job table."""
    from .service import ServiceClient, parse_address

    client = ServiceClient(parse_address(args.socket))
    response = client.status(args.job_id)
    if args.json:
        print(json.dumps(response, sort_keys=True, indent=2))
        return 0
    if args.job_id is not None:
        job = response["job"]
        assert isinstance(job, dict)
        print(_job_stats_line(job))
        if job.get("error"):
            print(f"error: {job['error']}")
        return 0
    jobs = response.get("jobs", [])
    assert isinstance(jobs, list)
    if not jobs:
        print("No jobs submitted yet")
    else:
        print(
            render_table(
                ["job", "state", "runs", "simulated", "cached"],
                [
                    [
                        job["job_id"],
                        job["state"],
                        job.get("total_runs", "?"),
                        job.get("stats", {}).get("simulated", "-"),
                        job.get("stats", {}).get("cached", "-"),
                    ]
                    for job in jobs
                ],
            )
        )
    print(
        f"Workers connected: {response.get('workers', 0)}; "
        f"draining: {response.get('draining', False)}"
    )
    return 0


def _run_results(args: argparse.Namespace) -> int:
    """The ``results`` subcommand: render a finished job's summary."""
    from .service import ServiceClient, parse_address

    client = ServiceClient(parse_address(args.socket))
    response = client.results(args.job_id)
    if args.json:
        print(json.dumps(response, sort_keys=True, indent=2))
        return 0
    summary = response["summary"]
    assert isinstance(summary, dict)
    print(render_campaign_summary(summary))
    job = response["job"]
    assert isinstance(job, dict)
    print()
    print(_job_stats_line(job))
    return 0


def _run_shutdown(args: argparse.Namespace) -> int:
    """The ``shutdown`` subcommand: start the daemon's graceful drain."""
    from .service import ServiceClient, parse_address

    client = ServiceClient(parse_address(args.socket))
    response = client.shutdown()
    if args.json:
        print(json.dumps(response, sort_keys=True, indent=2))
    else:
        print(f"Daemon draining; {response.get('pending_jobs', 0)} job(s) still pending")
    return 0


def _run_worker(args: argparse.Namespace) -> int:
    """The ``worker`` subcommand: remote shard executor loop."""
    from .service import RemoteWorker, parse_address

    worker = RemoteWorker(
        parse_address(args.connect),
        worker_id=args.worker_id,
        max_shards=args.max_shards,
        log=None if args.quiet else sys.stderr,
    )
    completed = worker.run()
    print(f"Completed {completed} shard(s)")
    return 0


def _run_list(args: argparse.Namespace) -> int:
    """Print every registered preset, arbiter, engine and topology.

    Reads the registries the factories themselves use
    (:mod:`repro.sim.arbiter`, :mod:`repro.sim.scheduler`,
    :mod:`repro.sim.topology`), so the listing cannot drift from what
    ``System`` actually builds.
    """
    del args
    from .sim.arbiter import ARBITER_REGISTRY
    from .sim.scheduler import ENGINE_REGISTRY
    from .sim.topology import TOPOLOGY_REGISTRY

    print("Presets (--preset):")
    rows = []
    for name in sorted(PRESETS):
        config = get_preset(name)
        rows.append(
            [
                name,
                config.num_cores,
                config.bus.arbitration,
                config.topology.name,
                config.engine,
                config.ubd,
            ]
        )
    print(render_table(["name", "cores", "bus arbiter", "topology", "engine", "ubd"], rows))

    print()
    print("Arbitration policies (--arbiter, TopologyConfig.mem_arbitration):")
    print(
        render_table(
            ["name", "description"],
            [[entry.name, entry.description] for entry in ARBITER_REGISTRY.values()],
        )
    )

    print()
    print("Simulation engines (--engine):")
    print(
        render_table(
            ["name", "description"],
            [[entry.name, entry.description] for entry in ENGINE_REGISTRY.values()],
        )
    )

    print()
    print("Topologies (--topology):")
    print(
        render_table(
            ["name", "description"],
            [[entry.name, entry.description] for entry in TOPOLOGY_REGISTRY.values()],
        )
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``repro-bounds`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "derive-ubd":
            return _run_derive_ubd(args)
        if args.command == "synchrony":
            return _run_synchrony(args)
        if args.command == "campaign":
            return _run_campaign(args)
        if args.command == "audit":
            return _run_audit(args)
        if args.command == "cache":
            return _run_cache(args)
        if args.command == "serve":
            return _run_serve(args)
        if args.command == "submit":
            return _run_submit(args)
        if args.command == "status":
            return _run_status(args)
        if args.command == "results":
            return _run_results(args)
        if args.command == "shutdown":
            return _run_shutdown(args)
        if args.command == "worker":
            return _run_worker(args)
        if args.command == "list":
            return _run_list(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # A downstream reader closed early (`repro-bounds results ... | head`);
        # that is not an error.  Point stdout at devnull so the interpreter's
        # exit-time flush does not raise a second time.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
