"""Plain-text rendering of tables, histograms and saw-tooth curves.

The paper's figures are regenerated as ASCII artefacts so the benchmark
harness and the examples can print the same rows/series the paper reports
without any plotting dependency.
"""

from .campaign import render_campaign_summary
from .histogram import render_histogram
from .tables import render_series, render_table

__all__ = [
    "render_campaign_summary",
    "render_histogram",
    "render_series",
    "render_table",
]
