"""ASCII table rendering used by examples and benchmark harnesses."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render ``rows`` under ``headers`` as a fixed-width text table.

    Every cell is converted with ``str``; numeric alignment is right-justified
    while text stays left-justified, which keeps cycle counts readable.
    """
    materialized: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        if len(row) != len(headers):
            raise ValueError(f"row has {len(row)} cells but the table has {len(headers)} columns")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def format_row(cells: Sequence[str]) -> str:
        parts = []
        for index, cell in enumerate(cells):
            if _is_numeric(cell):
                parts.append(cell.rjust(widths[index]))
            else:
                parts.append(cell.ljust(widths[index]))
        return " | ".join(parts)

    separator = "-+-".join("-" * width for width in widths)
    lines = [format_row(list(headers)), separator]
    lines.extend(format_row(row) for row in materialized)
    return "\n".join(lines)


def render_series(
    xs: Sequence[object],
    ys: Sequence[object],
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render two parallel sequences as a two-column table."""
    if len(xs) != len(ys):
        raise ValueError(f"series lengths differ: {len(xs)} vs {len(ys)}")
    return render_table([x_label, y_label], zip(xs, ys))


def _is_numeric(text: str) -> bool:
    try:
        float(text)
    except ValueError:
        return False
    return True
