"""ASCII histogram rendering (Figure 6 style bar charts)."""

from __future__ import annotations

from typing import Dict


def render_histogram(
    counts: Dict[int, int],
    title: str = "",
    width: int = 50,
    label: str = "value",
) -> str:
    """Render ``counts`` (value -> frequency) as a horizontal bar chart.

    Args:
        counts: histogram data; keys are plotted in increasing order.
        title: optional heading printed above the chart.
        width: number of characters the largest bar occupies.
        label: name of the x quantity, used in the row labels.
    """
    if width < 1:
        raise ValueError("histogram width must be positive")
    lines = []
    if title:
        lines.append(title)
    if not counts:
        lines.append("(empty histogram)")
        return "\n".join(lines)
    total = sum(counts.values())
    peak = max(counts.values())
    for value in sorted(counts):
        count = counts[value]
        bar_length = int(round(width * count / peak)) if peak else 0
        share = count / total if total else 0.0
        lines.append(
            f"{label}={value:>4} | {'#' * bar_length:<{width}} {count:>8} ({share:6.1%})"
        )
    return "\n".join(lines)
