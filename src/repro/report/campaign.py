"""Plain-text rendering of campaign summaries.

Consumes the ``summary.json`` payload produced by
:meth:`repro.campaign.CampaignOutcome.summary` (or loaded back with
:func:`repro.campaign.load_summary`) and renders the Figure 6(a)-style view:
one overview table plus, per preset, the aggregated ready-contenders
histograms of the EEMBC-like workloads and of the rsk contrast runs.
"""

from __future__ import annotations

from typing import Dict, List

from .histogram import render_histogram
from .tables import render_table


def render_campaign_summary(summary: Dict[str, object]) -> str:
    """Render a campaign summary dictionary as a text report.

    Platforms (preset x arbiter) are reported separately: the analytical
    ``ubd`` of Equation 1 only bounds round-robin and FIFO arbitration, so
    delays measured under other policies must never share its row ("-" marks
    platforms the equation does not cover).
    """
    sections: List[str] = []
    per_platform = summary.get("per_platform", {})
    rows = []
    for key in sorted(per_platform):
        bucket = per_platform[key]
        rsk = bucket.get("rsk", {})
        ubd = bucket.get("analytical_ubd")
        rows.append(
            [
                bucket.get("preset", key),
                bucket.get("arbiter", "-"),
                bucket.get("topology", "bus_only"),
                bucket.get("runs", 0),
                f"{bucket.get('mean_bus_utilisation', 0.0):.2f}",
                "-" if ubd is None else ubd,
                rsk.get("max_contention_delay", "-"),
                rsk.get("max_slowdown", "-"),
            ]
        )
    sections.append(
        render_table(
            [
                "preset",
                "arbiter",
                "topology",
                "runs",
                "mean bus util",
                "ubd",
                "max gamma",
                "max det",
            ],
            rows,
        )
    )
    for key in sorted(per_platform):
        bucket = per_platform[key]
        title = f"{bucket.get('preset', key)} ({bucket.get('arbiter', '?')})"
        topology = bucket.get("topology", "bus_only")
        if topology != "bus_only":
            title = f"{title} ({topology})"
        synthetic = bucket.get("synthetic")
        if synthetic and synthetic.get("aggregated_contenders"):
            sections.append("")
            sections.append(
                render_histogram(
                    _int_keys(synthetic["aggregated_contenders"]),
                    title=f"{title}: ready contenders, EEMBC-like workloads",
                    label="contenders",
                )
            )
        rsk = bucket.get("rsk")
        if rsk and rsk.get("aggregated_contenders"):
            sections.append("")
            sections.append(
                render_histogram(
                    _int_keys(rsk["aggregated_contenders"]),
                    title=f"{title}: ready contenders, rsk reference workloads",
                    label="contenders",
                )
            )
    timing = summary.get("timing")
    if timing:
        sections.append("")
        sections.append(
            f"{timing.get('runs', summary.get('total_runs', 0))} runs: "
            f"{timing.get('simulated', '?')} simulated, "
            f"{timing.get('cached', '?')} from cache, "
            f"jobs={timing.get('jobs', '?')}, "
            f"elapsed {timing.get('elapsed_seconds', 0.0):.2f}s"
        )
    return "\n".join(sections)


def _int_keys(counts: Dict[str, int]) -> Dict[int, int]:
    return {int(key): value for key, value in counts.items()}
