"""Way-partitioned shared L2 cache.

The NGMP splits its shared 256KB 4-way L2 so that each core owns one way
(Section 5.1 of the paper); this removes storage interference between cores
and leaves the bus and the memory controller as the only shared resources —
exactly the situation the paper's methodology targets.

:class:`PartitionedL2` is a thin façade over
:class:`repro.sim.cache.WayPartitionedCache` exposing the operations the
memory subsystem needs: a timed lookup, a fill on behalf of a core, and
access statistics per core.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..config import ArchConfig
from ..errors import SimulationError
from .cache import CacheStats, SetAssociativeCache, WayPartitionedCache


@dataclass
class L2CoreStats:
    """Per-core hit/miss counters of the shared L2."""

    hits: int = 0
    misses: int = 0
    writes: int = 0

    @property
    def accesses(self) -> int:
        """Total lookups performed on behalf of the core."""
        return self.hits + self.misses


class PartitionedL2:
    """Shared L2 with optional way partitioning per core.

    Args:
        config: the platform configuration (provides geometry, latency and
            the per-core way assignment).
    """

    def __init__(self, config: ArchConfig) -> None:
        self.config = config
        cache_cfg = config.l2.cache
        if config.l2.partitioned:
            partitions = {core: config.l2_ways_for_core(core) for core in range(config.num_cores)}
            self._cache: SetAssociativeCache = WayPartitionedCache(cache_cfg, partitions, name="l2")
            self._partitioned = True
        else:
            self._cache = SetAssociativeCache(cache_cfg, name="l2")
            self._partitioned = False
        self.per_core: Dict[int, L2CoreStats] = {
            core: L2CoreStats() for core in range(config.num_cores)
        }

    @property
    def hit_latency(self) -> int:
        """L2 hit latency in cycles."""
        return self.config.l2.hit_latency

    @property
    def stats(self) -> CacheStats:
        """Aggregate cache statistics (hits, misses, fills, evictions)."""
        return self._cache.stats

    def contains(self, addr: int) -> bool:
        """True if the line holding ``addr`` is resident (no side effects)."""
        return self._cache.contains(addr)

    def lookup(self, core_id: int, addr: int, is_write: bool = False) -> bool:
        """Perform a lookup on behalf of ``core_id`` and return hit/miss."""
        self._check_core(core_id)
        hit = self._cache.lookup(addr, is_write=is_write)
        stats = self.per_core[core_id]
        if is_write:
            stats.writes += 1
        if hit:
            stats.hits += 1
        else:
            stats.misses += 1
        return hit

    def fill(self, core_id: int, addr: int, dirty: bool = False) -> Optional[int]:
        """Install the line containing ``addr`` in ``core_id``'s partition.

        Returns the address of the evicted line, or ``None``.
        """
        self._check_core(core_id)
        if self._partitioned:
            assert isinstance(self._cache, WayPartitionedCache)
            return self._cache.fill_for(core_id, addr, dirty=dirty)
        return self._cache.fill(addr, dirty=dirty)

    def preload(self, core_id: int, line_addresses) -> int:
        """Warm the cache with ``line_addresses`` for ``core_id``; return count filled."""
        count = 0
        for addr in line_addresses:
            self.fill(core_id, addr)
            count += 1
        return count

    def partition_ways(self, core_id: int) -> Tuple[int, ...]:
        """Way indices allocated to ``core_id`` (all ways when unpartitioned)."""
        self._check_core(core_id)
        if self._partitioned:
            assert isinstance(self._cache, WayPartitionedCache)
            return self._cache.partition_of(core_id)
        return tuple(range(self.config.l2.cache.ways))

    def occupancy(self) -> int:
        """Number of valid lines currently resident."""
        return self._cache.occupancy()

    def _check_core(self, core_id: int) -> None:
        if not 0 <= core_id < self.config.num_cores:
            raise SimulationError(f"invalid core id {core_id} for L2 access")
