"""The ``SharedResource`` protocol: what it means to be a contention point.

The paper models a single arbitrated resource — the processor-to-L2 bus.
Real platforms stack several: the bus feeds a memory controller whose
per-bank queues are themselves arbitrated, the DRAM banks serialise
accesses independently, and a split-transaction bus returns data on its own
response channel.  This module declares the protocol that lets such
contention points *compose* into a topology (see :mod:`repro.sim.topology`)
instead of being hardwired into :class:`repro.sim.system.System` — and,
crucially, into the *simulation engines*: both engines drive
``System.resources`` purely through this surface, so a new topology is a
registry addition, never an engine edit.

A shared resource owns a request/grant lifecycle and exposes two groups of
surfaces.

Phase surface (the Section 5 cycle structure):

* ``deliver(cycle)`` — phase 1: finish any work whose occupancy ends at
  ``cycle`` and hand the result downstream (wake a core, enqueue into the
  next resource, post a response).
* ``arbitrate(cycle)`` — the closing phase: if the resource is free, pick
  one pending request per internal channel (bus, DRAM bank, ...) through an
  :class:`repro.sim.arbiter.Arbiter` and start its occupancy.
* a PMC surface — counters describing the traffic the resource served
  (per-resource sections of :class:`repro.sim.pmc.PerformanceCounters` for
  the bus channels, :class:`repro.sim.memctrl.MemCtrlStats` for the memory
  queues).

Event-port surface (what the event-driven engine needs):

* ``horizon(cycle)`` — the *cached* event horizon: the earliest future cycle
  at which this resource can change state on its own.  The cache is
  recomputed from :meth:`~SharedResource.next_event_cycle` only when the
  resource was mutated since the last read (``invalidate_horizon``), so the
  engine's per-cycle horizon scan costs one attribute check per quiescent
  resource instead of a queue walk.
* ``invalidate_horizon()`` — mark the cached horizon stale.  Every mutation
  of resource state (posting work, a delivery, a grant, a reset) must call
  it; the invalidation rules are spelled out in DESIGN.md Section 5.
* ``wake_targets`` — core ids that the most recent ``deliver`` call may have
  woken (data returned, store drained).  The engine ticks exactly these
  cores plus the self-driven ones, instead of interpreting resource-specific
  delivery payloads.
* ``next_event_cycle(cycle)`` — the uncached horizon computation.  The
  contract is *conservative*: reporting too early only costs speed,
  reporting too late changes timing.  ``NO_EVENT`` means "inert until
  someone posts new work".

Horizon type contract (DESIGN.md Section 5.1): every horizon — components
*and* arbiters — is an ``int``.  Cycles are integers throughout the
simulator; the former mixture of ``int`` and ``float('inf')`` returns is
replaced by the :data:`NO_EVENT` sentinel, which compares greater than any
reachable cycle.

Cache validity argument: between events every resource's state is a pure
function of the clock (engine invariant 1), so a horizon computed at cycle
``c0`` from unmutated state is still the true horizon at any later cycle —
a valid cache can never under- *or* over-shoot.  Only a mutation can create
an earlier event, and every mutation invalidates.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Protocol, runtime_checkable

#: Horizon sentinel: "this resource has no self-driven future event".
#: An ``int`` (not ``float('inf')``) so the horizon arithmetic of
#: :mod:`repro.sim.scheduler` stays in integers; far beyond any reachable
#: cycle (the default simulation bound is 2e8).
NO_EVENT: int = 1 << 62


@runtime_checkable
class SharedResource(Protocol):
    """Structural protocol every composable contention point satisfies.

    :class:`repro.sim.bus.Bus` and the memory controllers in
    :mod:`repro.sim.memctrl` implement it; topologies
    (:mod:`repro.sim.topology`) chain instances into
    ``System.resources``, and both simulation engines drive that chain
    generically — deliver all resources, tick the cores, arbitrate all
    resources, with the event horizon taken as the minimum over the chain.
    """

    #: Short name used in reports, traces and per-resource decompositions.
    resource_name: str

    #: Core ids the most recent ``deliver`` call may have woken; reset at
    #: the start of every ``deliver``.
    wake_targets: List[int]

    def deliver(self, cycle: int) -> Optional[object]:
        """Finish work whose occupancy ends at ``cycle``; return it, if any."""
        ...

    def arbitrate(self, cycle: int) -> Optional[object]:
        """Grant pending work if the resource is free; return the grant."""
        ...

    def horizon(self, cycle: int) -> int:
        """Cached earliest future cycle this resource acts on its own."""
        ...

    def invalidate_horizon(self) -> None:
        """Mark the cached horizon stale after an external state mutation."""
        ...

    def next_event_cycle(self, cycle: int) -> int:
        """Earliest future cycle this resource changes state on its own."""
        ...

    def reset(self) -> None:
        """Restore the initial (empty, idle) state."""
        ...


class EventPort:
    """Mixin implementing the cached-horizon event-port surface.

    Concrete resources inherit this next to their own base class, call
    :meth:`_init_event_port` during construction, and mark every state
    mutation with ``self._horizon_dirty = True`` (the in-place spelling of
    :meth:`invalidate_horizon`, used on hot paths).  ``horizon`` then
    recomputes through the resource's ``next_event_cycle`` only when needed.
    """

    #: Set by :meth:`_init_event_port`; annotated here so the attribute is
    #: part of the mixin's public surface.
    wake_targets: List[int]
    _horizon_cache: int
    _horizon_dirty: bool

    def _init_event_port(self) -> None:
        self.wake_targets = []
        self._horizon_cache = 0
        self._horizon_dirty = True

    def horizon(self, cycle: int) -> int:
        """Cached event horizon (see :class:`SharedResource`)."""
        if self._horizon_dirty:
            self._horizon_cache = self.next_event_cycle(cycle)
            self._horizon_dirty = False
        return self._horizon_cache

    def invalidate_horizon(self) -> None:
        """Mark the cached horizon stale; the next read recomputes it."""
        self._horizon_dirty = True

    def next_event_cycle(self, cycle: int) -> int:
        """Uncached horizon; concrete resources must implement it."""
        raise NotImplementedError


def min_horizon(resources: Iterable[SharedResource], cycle: int) -> int:
    """Minimum event horizon over ``resources`` (``NO_EVENT`` if all inert)."""
    horizon = NO_EVENT
    for resource in resources:
        candidate = resource.horizon(cycle)
        if candidate < horizon:
            horizon = candidate
    return horizon
