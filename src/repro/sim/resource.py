"""The ``SharedResource`` protocol: what it means to be a contention point.

The paper models a single arbitrated resource — the processor-to-L2 bus.
Real platforms stack several: the bus feeds a memory controller whose
per-bank queues are themselves arbitrated, and the DRAM banks serialise
accesses independently.  This module declares the protocol that lets such
contention points *compose* into a topology (see :mod:`repro.sim.topology`)
instead of being hardwired into :class:`repro.sim.system.System`.

A shared resource owns a request/grant lifecycle and exposes four surfaces:

* ``deliver(cycle)`` — phase 1 of the cycle structure: finish any work whose
  occupancy ends at ``cycle`` and hand the result downstream (wake a core,
  enqueue into the next resource, post a response).
* ``arbitrate(cycle)`` — the closing phase: if the resource is free, pick
  one pending request per internal channel (bus, DRAM bank, ...) through an
  :class:`repro.sim.arbiter.Arbiter` and start its occupancy.
* ``next_event_cycle(cycle)`` — the event horizon: the earliest future cycle
  at which this resource can change state on its own.  The event engine
  jumps the clock to the minimum over all resources (plus the cores), so
  the contract is *conservative*: reporting too early only costs speed,
  reporting too late changes timing.  ``NO_EVENT`` means "inert until
  someone posts new work".
* a PMC surface — counters describing the traffic the resource served
  (:class:`repro.sim.pmc.PerformanceCounters` for the bus,
  :class:`repro.sim.memctrl.MemCtrlStats` for the memory queues).

Horizon type contract (DESIGN.md Section 5.1): every ``next_event_cycle``
implementation — components *and* arbiters — returns an ``int``.  Cycles are
integers throughout the simulator; the former mixture of ``int`` and
``float('inf')`` returns is replaced by the :data:`NO_EVENT` sentinel, which
compares greater than any reachable cycle.
"""

from __future__ import annotations

from typing import Iterable, Optional, Protocol, runtime_checkable

#: Horizon sentinel: "this resource has no self-driven future event".
#: An ``int`` (not ``float('inf')``) so the horizon arithmetic of
#: :mod:`repro.sim.scheduler` stays in integers; far beyond any reachable
#: cycle (the default simulation bound is 2e8).
NO_EVENT: int = 1 << 62


@runtime_checkable
class SharedResource(Protocol):
    """Structural protocol every composable contention point satisfies.

    :class:`repro.sim.bus.Bus` and the memory controllers in
    :mod:`repro.sim.memctrl` implement it; topologies
    (:mod:`repro.sim.topology`) chain instances into
    ``System.resources``, and both simulation engines drive that chain
    generically — deliver all resources, tick the cores, arbitrate all
    resources, with the event horizon taken as the minimum over the chain.
    """

    #: Short name used in reports and per-resource bound decompositions.
    resource_name: str

    def deliver(self, cycle: int) -> Optional[object]:
        """Finish work whose occupancy ends at ``cycle``; return it, if any."""
        ...

    def arbitrate(self, cycle: int) -> Optional[object]:
        """Grant pending work if the resource is free; return the grant."""
        ...

    def next_event_cycle(self, cycle: int) -> int:
        """Earliest future cycle this resource changes state on its own."""
        ...

    def reset(self) -> None:
        """Restore the initial (empty, idle) state."""
        ...


def min_horizon(resources: Iterable[SharedResource], cycle: int) -> int:
    """Minimum event horizon over ``resources`` (``NO_EVENT`` if all inert)."""
    horizon = NO_EVENT
    for resource in resources:
        candidate = resource.next_event_cycle(cycle)
        if candidate < horizon:
            horizon = candidate
    return horizon
