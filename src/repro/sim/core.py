"""In-order core model.

Each core executes one :class:`repro.sim.isa.Program`.  The pipeline is the
minimal model that captures the timing effects the paper relies on:

* instruction fetch is pipelined, so an IL1 hit adds no visible latency; an
  IL1 miss stalls the core and fetches the line over the shared bus;
* ``nop`` and ``alu`` instructions occupy the core for their latency;
* a load occupies the core for the DL1 hit latency, then either completes
  (DL1 hit or store-buffer forward) or posts a bus request and stalls until
  the data returns — consequently the *injection time* between two
  back-to-back loads that miss equals the DL1 latency (1 cycle on ``ref``,
  4 on ``var``), exactly as assumed in Sections 3 and 5 of the paper;
* a store occupies the core for the DL1 latency and then retires into the
  store buffer; the core only stalls when the buffer is full.  Buffered
  stores drain over the bus in the background.

The core never talks to the bus directly: it calls the ``issue_request``
callback installed by :class:`repro.sim.system.System`, which owns the L2 /
memory-controller side of every transaction.
"""

from __future__ import annotations

import enum
from typing import Callable, Iterator, Optional, Tuple

from ..config import ArchConfig
from ..errors import SimulationError
from .cache import SetAssociativeCache
from .isa import Alu, Instruction, Load, Nop, Program, Store
from .pmc import PerformanceCounters
from .resource import NO_EVENT
from .store_buffer import StoreBuffer

#: Callback used by the core to start a bus transaction:
#: ``issue_request(core_id, kind, addr, ready_cycle)``.
IssueCallback = Callable[[int, str, int, int], None]


class CoreState(enum.Enum):
    """Execution state of a core."""

    READY = "ready"
    EXECUTING = "executing"
    WAIT_IFETCH = "wait_ifetch"
    WAIT_LOAD = "wait_load"
    STALL_STORE_BUFFER = "stall_store_buffer"
    DONE = "done"


class _Phase(enum.Enum):
    """What the current occupancy of the execute stage represents."""

    SIMPLE = "simple"
    DL1_LOAD = "dl1_load"
    DL1_STORE = "dl1_store"


class Core:
    """One in-order core with private IL1/DL1 caches and a store buffer.

    Args:
        core_id: index of the core (also its bus port).
        config: platform configuration.
        program: the program to execute, or ``None`` for an idle core.
        issue_request: callback installed by the system to start bus
            transactions on behalf of this core.
        pmc: shared performance counter block.
    """

    def __init__(
        self,
        core_id: int,
        config: ArchConfig,
        program: Optional[Program],
        issue_request: IssueCallback,
        pmc: Optional[PerformanceCounters] = None,
    ) -> None:
        self.core_id = core_id
        self.config = config
        self.program = program
        self.issue_request = issue_request
        self.pmc = pmc
        self.il1 = SetAssociativeCache(config.il1, name=f"il1[{core_id}]")
        self.dl1 = SetAssociativeCache(config.dl1, name=f"dl1[{core_id}]")
        self.store_buffer = StoreBuffer(config.store_buffer, core_id=core_id)

        self._stream: Optional[Iterator[Tuple[int, Instruction]]] = (
            program.instruction_stream() if program is not None else None
        )
        self.state = CoreState.DONE if program is None else CoreState.READY
        self._phase = _Phase.SIMPLE
        self._busy_until = 0
        self._current_pc = 0
        self._current_instr: Optional[Instruction] = None
        #: set when an IL1 miss returns and the instruction must start executing
        self._fetched_pending = False
        self._stall_store_addr = 0
        self._stall_entry_cycle = 0

        self.instructions_retired = 0
        self.done_cycle: Optional[int] = None
        self.stall_cycles = 0

    # ------------------------------------------------------------------ #
    # Public queries.
    # ------------------------------------------------------------------ #
    @property
    def is_done(self) -> bool:
        """True when the program has fully retired."""
        return self.state is CoreState.DONE

    @property
    def is_waiting_on_bus(self) -> bool:
        """True while the core is stalled waiting for a bus transaction."""
        return self.state in (CoreState.WAIT_IFETCH, CoreState.WAIT_LOAD)

    def next_event_cycle(self, cycle: int) -> int:
        """Earliest future cycle at which this core will do work on its own.

        This is the core's horizon contribution to the event-driven scheduler
        (see :mod:`repro.sim.scheduler`): an executing core's next event is
        the end of its occupancy; a ready core acts on the very next visited
        cycle.  Cores stalled on the bus or on the store buffer are woken by
        bus completions, which the scheduler already includes through the bus
        and memory-controller horizons, so they report "no self-driven
        activity" (:data:`~repro.sim.resource.NO_EVENT`).
        """
        if self.state is CoreState.EXECUTING:
            return max(self._busy_until, cycle + 1)
        if self.state is CoreState.READY:
            return cycle
        return NO_EVENT

    #: Backwards-compatible alias for the pre-scheduler skip-ahead API.
    next_activity = next_event_cycle

    def needs_tick(self, cycle: int) -> bool:
        """True when :meth:`tick` would change state at ``cycle``.

        The event engine uses this to skip the per-cycle tick of cores that
        provably cannot act: a core waiting on the bus (or done) with no
        drainable store does nothing in :meth:`tick`, so skipping the call is
        observationally equivalent.  Must be evaluated *after* the cycle's
        delivery phases — a bus completion may have just made the core ready
        or exposed a new store-buffer head.
        """
        state = self.state
        if state is CoreState.READY or state is CoreState.STALL_STORE_BUFFER:
            return True
        if state is CoreState.EXECUTING and cycle >= self._busy_until:
            return True
        # Equivalent to store_buffer.head_ready_to_issue() is not None, open-
        # coded because this predicate runs for every core on every visited
        # cycle of the event engine.
        store_buffer = self.store_buffer
        return bool(store_buffer._entries) and not store_buffer._head_in_flight

    # ------------------------------------------------------------------ #
    # Per-cycle execution.
    # ------------------------------------------------------------------ #
    def tick(self, cycle: int) -> None:
        """Advance the core by one cycle (phase 2 of the system loop)."""
        if self.state is CoreState.DONE or self.is_waiting_on_bus:
            # Buffered stores keep draining while the core waits or is done.
            self._drain_store_buffer(cycle)
            return

        if self.state is CoreState.STALL_STORE_BUFFER:
            if self.store_buffer.try_push(self._stall_store_addr, cycle):
                self.stall_cycles += cycle - self._stall_entry_cycle
                if self.pmc is not None:
                    self.pmc.core[self.core_id].store_buffer_full_stalls += (
                        cycle - self._stall_entry_cycle
                    )
                self._retire(cycle)
            else:
                self._drain_store_buffer(cycle)
                return

        if self.state is CoreState.EXECUTING:
            if cycle < self._busy_until:
                self._drain_store_buffer(cycle)
                return
            self._finish_execute_phase(cycle)

        if self.state is CoreState.READY:
            self._start_next_instruction(cycle)

        self._drain_store_buffer(cycle)

    # ------------------------------------------------------------------ #
    # Bus-response entry points (phase 1 callbacks, via the system).
    # ------------------------------------------------------------------ #
    def on_instruction_line(self, addr: int, cycle: int) -> None:
        """An IL1 miss completed; the fetched instruction may now execute."""
        if self.state is not CoreState.WAIT_IFETCH:
            raise SimulationError(
                f"core {self.core_id}: unexpected instruction line at cycle {cycle}"
            )
        self.il1.fill(addr)
        instr = self._current_instr
        if instr is None:
            raise SimulationError(f"core {self.core_id}: ifetch completed with no instruction")
        self.state = CoreState.READY
        self._fetched_pending = True

    def on_data_line(self, addr: int, cycle: int) -> None:
        """A demand load completed; fill the DL1 and retire the load."""
        if self.state is not CoreState.WAIT_LOAD:
            raise SimulationError(f"core {self.core_id}: unexpected data line at cycle {cycle}")
        self.dl1.fill(addr)
        self._retire(cycle)

    def on_store_drained(self, cycle: int) -> None:
        """The store buffer's head finished its bus transaction."""
        self.store_buffer.complete_head(cycle)

    # ------------------------------------------------------------------ #
    # Internal pipeline steps.
    # ------------------------------------------------------------------ #
    def _start_next_instruction(self, cycle: int) -> None:
        if self._fetched_pending:
            # The instruction was already fetched (IL1 miss path); execute it.
            self._fetched_pending = False
            self._begin_execute(cycle, self._current_instr)
            return
        assert self._stream is not None
        try:
            pc, instr = next(self._stream)
        except StopIteration:
            self.state = CoreState.DONE
            self.done_cycle = cycle
            return
        self._current_pc = pc
        self._current_instr = instr
        if self.il1.lookup(pc):
            self._begin_execute(cycle, instr)
        else:
            line = self.il1.line_address(pc)
            self.state = CoreState.WAIT_IFETCH
            self.issue_request(self.core_id, "ifetch", line, cycle)

    def _begin_execute(self, cycle: int, instr: Optional[Instruction]) -> None:
        if instr is None:
            raise SimulationError(f"core {self.core_id}: begin_execute without instruction")
        if isinstance(instr, Nop):
            self._phase = _Phase.SIMPLE
            self._busy_until = cycle + self.config.nop_latency
        elif isinstance(instr, Alu):
            self._phase = _Phase.SIMPLE
            self._busy_until = cycle + instr.latency
        elif isinstance(instr, Load):
            self._phase = _Phase.DL1_LOAD
            self._busy_until = cycle + self.config.dl1.hit_latency
        elif isinstance(instr, Store):
            self._phase = _Phase.DL1_STORE
            self._busy_until = cycle + self.config.dl1.hit_latency
        else:  # pragma: no cover - new instruction kinds must be added here
            raise SimulationError(f"core {self.core_id}: unknown instruction {instr!r}")
        self.state = CoreState.EXECUTING

    def _finish_execute_phase(self, cycle: int) -> None:
        instr = self._current_instr
        if self._phase is _Phase.SIMPLE:
            self._retire(cycle)
            return
        if self._phase is _Phase.DL1_LOAD:
            assert isinstance(instr, Load)
            forwarded = self.store_buffer.forwards(instr.addr, self.config.line_size)
            hit = self.dl1.lookup(instr.addr)
            if hit or forwarded:
                self._retire(cycle)
                return
            line = self.dl1.line_address(instr.addr)
            self.state = CoreState.WAIT_LOAD
            self.issue_request(self.core_id, "load", line, cycle)
            return
        if self._phase is _Phase.DL1_STORE:
            assert isinstance(instr, Store)
            # Write-through, no write-allocate: update the line if present.
            self.dl1.lookup(instr.addr, is_write=True)
            line = self.dl1.line_address(instr.addr)
            if self.store_buffer.try_push(line, cycle):
                self._retire(cycle)
            else:
                self.state = CoreState.STALL_STORE_BUFFER
                self._stall_store_addr = line
                self._stall_entry_cycle = cycle
            return
        raise SimulationError(f"core {self.core_id}: unknown phase {self._phase}")

    def _retire(self, cycle: int) -> None:
        instr = self._current_instr
        if instr is None:
            raise SimulationError(f"core {self.core_id}: retire without instruction")
        self.instructions_retired += 1
        if self.pmc is not None:
            self.pmc.note_instruction(self.core_id, instr.mnemonic)
        self._current_instr = None
        self.state = CoreState.READY
        del cycle

    def _drain_store_buffer(self, cycle: int) -> None:
        """Post the store buffer's head entry on the bus if it is eligible."""
        entry = self.store_buffer.head_ready_to_issue()
        if entry is None:
            return
        self.store_buffer.mark_head_issued()
        self.issue_request(self.core_id, "store", entry.addr, cycle)
