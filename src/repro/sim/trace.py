"""Request-level bus trace.

Every bus transaction can be recorded as a :class:`RequestRecord` carrying
the cycles at which it became ready, was granted and completed, plus how many
*other* ports had a pending request at the moment it became ready.  The
analysis layer (:mod:`repro.analysis.contention`) turns these records into
the histograms of Figure 6 and into per-request contention delays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


@dataclass
class RequestRecord:
    """Timing of one bus transaction, across every resource it visits.

    The record is created when the request is posted on a bus channel and
    filled in place as the transaction progresses: the channel stamps its
    grant and completion, the memory controller stamps the memory-stage
    timing of an L2 miss (``mem_*``), and the system stamps the response
    transfer (``response_*``).  The per-resource latency decomposition of
    :mod:`repro.analysis.contention` is computed entirely from these fields.

    Attributes:
        port: channel port that issued the request (core id, or the shared
            response port index for single-bus split transactions).
        kind: ``"load"``, ``"store"``, ``"ifetch"`` or ``"response"``.
        addr: target byte address.
        ready_cycle: cycle at which the request became visible to the arbiter.
        grant_cycle: cycle at which the channel was granted.
        complete_cycle: first cycle after the occupancy ends (data usable).
        service_cycles: channel occupancy in cycles.
        contenders_at_ready: number of other ports with a pending request at
            ``ready_cycle`` (the quantity histogrammed in Figure 6(a)).
        bus_busy_at_ready: True if the channel was serving another
            transaction when this request became ready.
        resource: ``resource_name`` of the channel the request was posted on
            (``"bus"`` for the request channel, ``"bus_response"`` for the
            split-bus response channel).
        origin_core: core the transaction ultimately belongs to (equals
            ``port`` except for shared-port responses).
        mem_ready_cycle: cycle an L2 miss entered the memory controller.
        mem_grant_cycle: cycle its DRAM access was issued (bank-queue grant,
            or arrival-scheduled issue on the plain controller).
        mem_complete_cycle: cycle the DRAM access completed.
        response_ready_cycle: cycle the response transfer became ready.
        response_grant_cycle: cycle the response channel was granted.
        response_complete_cycle: cycle the response reached the core.
    """

    port: int
    kind: str
    addr: int
    ready_cycle: int
    grant_cycle: int = -1
    complete_cycle: int = -1
    service_cycles: int = 0
    contenders_at_ready: int = 0
    bus_busy_at_ready: bool = False
    resource: str = "bus"
    origin_core: int = -1
    mem_ready_cycle: int = -1
    mem_grant_cycle: int = -1
    mem_complete_cycle: int = -1
    response_ready_cycle: int = -1
    response_grant_cycle: int = -1
    response_complete_cycle: int = -1

    @property
    def contention_delay(self) -> int:
        """Cycles spent waiting for the grant (``gamma`` in the paper)."""
        if self.grant_cycle < 0:
            return 0
        return self.grant_cycle - self.ready_cycle

    @property
    def total_latency(self) -> int:
        """Cycles from readiness to data availability."""
        if self.complete_cycle < 0:
            return 0
        return self.complete_cycle - self.ready_cycle

    @property
    def completed(self) -> bool:
        """True once the transaction has finished on the bus."""
        return self.complete_cycle >= 0

    @property
    def reached_memory(self) -> bool:
        """True when the request missed the L2 and entered the controller."""
        return self.mem_ready_cycle >= 0

    @property
    def memory_queue_wait(self) -> int:
        """Cycles the L2 miss waited for its DRAM bank (0 if it never missed)."""
        if self.mem_grant_cycle < 0:
            return 0
        return self.mem_grant_cycle - self.mem_ready_cycle

    @property
    def dram_service(self) -> int:
        """Cycles of DRAM service of the L2 miss (0 if it never missed)."""
        if self.mem_complete_cycle < 0:
            return 0
        return self.mem_complete_cycle - self.mem_grant_cycle

    @property
    def response_wait(self) -> int:
        """Cycles the data return waited for its channel grant."""
        if self.response_grant_cycle < 0:
            return 0
        return self.response_grant_cycle - self.response_ready_cycle

    @property
    def end_to_end_latency(self) -> int:
        """Cycles from request readiness to the final data delivery.

        Falls back to :attr:`total_latency` for requests that never left the
        L2 (no response transfer).
        """
        if self.response_complete_cycle >= 0:
            return self.response_complete_cycle - self.ready_cycle
        return self.total_latency


class TraceRecorder:
    """Collects :class:`RequestRecord` objects during a simulation.

    Recording is optional (it costs memory proportional to the number of bus
    transactions); the system enables it when an experiment asks for
    request-level analysis such as the Figure 6 histograms.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._records: List[RequestRecord] = []

    def record(self, record: RequestRecord) -> None:
        """Store one record (no-op when disabled)."""
        if self.enabled:
            self._records.append(record)

    def clear(self) -> None:
        """Drop all collected records."""
        self._records.clear()

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(self._records)

    @property
    def records(self) -> Tuple[RequestRecord, ...]:
        """All records collected so far, in grant order."""
        return tuple(self._records)

    # ------------------------------------------------------------------ #
    # Convenience selectors used by the analysis layer.
    # ------------------------------------------------------------------ #
    def for_port(
        self, port: int, kinds: Optional[Sequence[str]] = None
    ) -> Tuple[RequestRecord, ...]:
        """Records issued by ``port``, optionally filtered by request kind."""
        selected = (r for r in self._records if r.port == port)
        if kinds is not None:
            wanted = set(kinds)
            selected = (r for r in selected if r.kind in wanted)
        return tuple(selected)

    def completed_records(self) -> Tuple[RequestRecord, ...]:
        """Only the records whose transaction completed."""
        return tuple(r for r in self._records if r.completed)

    def contention_delays(self, port: int, kinds: Optional[Sequence[str]] = None) -> List[int]:
        """Per-request contention delays (``gamma_i``) for ``port``."""
        return [r.contention_delay for r in self.for_port(port, kinds) if r.completed]

    def injection_times(self, port: int, kinds: Optional[Sequence[str]] = None) -> List[int]:
        """Injection times ``delta_i`` between consecutive requests of ``port``.

        The injection time of request ``r_i`` is the number of cycles between
        the completion of ``r_{i-1}`` (its data being sent back) and ``r_i``
        becoming ready, exactly as defined in Section 3.1 of the paper.  The
        first request of the port has no predecessor and is skipped.
        """
        records = [r for r in self.for_port(port, kinds) if r.completed]
        deltas: List[int] = []
        for previous, current in zip(records, records[1:]):
            deltas.append(current.ready_cycle - previous.complete_cycle)
        return deltas

    def count_by_kind(self) -> Dict[str, int]:
        """Number of records per request kind."""
        counts: Dict[str, int] = {}
        for record in self._records:
            counts[record.kind] = counts.get(record.kind, 0) + 1
        return counts

    def ports(self) -> Tuple[int, ...]:
        """Sorted tuple of ports that issued at least one request."""
        return tuple(sorted({r.port for r in self._records}))


def merge_traces(traces: Iterable[TraceRecorder]) -> TraceRecorder:
    """Merge several traces into a new recorder (records sorted by grant cycle)."""
    merged = TraceRecorder(enabled=True)
    all_records: List[RequestRecord] = []
    for trace in traces:
        all_records.extend(trace.records)
    all_records.sort(key=lambda r: (r.grant_cycle, r.ready_cycle, r.port))
    for record in all_records:
        merged.record(record)
    return merged
