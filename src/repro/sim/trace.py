"""Request-level bus trace and the trace-capture/replay engine.

Two related facilities live here:

* The **request-level bus trace**: every bus transaction can be recorded as
  a :class:`RequestRecord` carrying the cycles at which it became ready, was
  granted and completed, plus how many *other* ports had a pending request
  at the moment it became ready.  The analysis layer
  (:mod:`repro.analysis.contention`) turns these records into the
  histograms of Figure 6 and into per-request contention delays.

* The **trace-capture/replay fast path** (the ``replay`` engine): for an
  in-order blocking core the compute gap between receiving a bus response
  and issuing the next demand request is fixed by the kernel and the
  private-cache configuration alone — it is independent of interconnect
  contention, because each demand chains off the completion of the previous
  one.  The core side can therefore be captured *once* as a
  dependency-preserving :class:`CoreTrace` (a sequence of
  ``(compute_gap, request_kind, address)`` steps) and replayed by a
  :class:`ReplayCore` through any arbiter, topology or memory configuration
  without re-simulating the instruction stream, the IL1/DL1 or the store
  buffer.  Traces are content-addressed by :func:`trace_key` (the
  *core-side digest*: kernel + cache + core parameters, with every
  interconnect/arbiter/engine field stripped — the core-side analogue of
  :func:`repro.sim.codegen.loop_cache_key`) and memoised in a
  :class:`TraceCache` (in-process LRU, optionally backed by the on-disk
  ``traces/`` section of :class:`repro.campaign.store.ResultStore`).

  :class:`ReplayEngine` registers as the fourth simulation engine
  (``"replay"``).  Any core whose program is not trace-safe — it contains
  stores (store-buffer drains create contention-coupled background
  requests), its capture timed out, or an infinite kernel exposed no
  periodic request suffix — transparently falls back to the real
  execution-driven :class:`~repro.sim.core.Core`; safety is per core, so a
  replayed observed core can share a platform with execution-driven
  contenders and vice versa.  The DESIGN document's "Trace capture/replay
  contract" section states the full safety conditions.
"""

from __future__ import annotations

from collections import OrderedDict
from functools import cached_property
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
    cast,
)

from dataclasses import dataclass

from ..config import ArchConfig, canonical_digest
from ..errors import SimulationError
from .core import Core, CoreState, IssueCallback
from .isa import Alu, Instruction, Load, Nop, Program, Store
from .pmc import PerformanceCounters
from .resource import NO_EVENT

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .system import System


@dataclass(slots=True)
class RequestRecord:
    """Timing of one bus transaction, across every resource it visits.

    The record is created when the request is posted on a bus channel and
    filled in place as the transaction progresses: the channel stamps its
    grant and completion, the memory controller stamps the memory-stage
    timing of an L2 miss (``mem_*``), and the system stamps the response
    transfer (``response_*``).  The per-resource latency decomposition of
    :mod:`repro.analysis.contention` is computed entirely from these fields.

    Attributes:
        port: channel port that issued the request (core id, or the shared
            response port index for single-bus split transactions).
        kind: ``"load"``, ``"store"``, ``"ifetch"`` or ``"response"``.
        addr: target byte address.
        ready_cycle: cycle at which the request became visible to the arbiter.
        grant_cycle: cycle at which the channel was granted.
        complete_cycle: first cycle after the occupancy ends (data usable).
        service_cycles: channel occupancy in cycles.
        contenders_at_ready: number of other ports with a pending request at
            ``ready_cycle`` (the quantity histogrammed in Figure 6(a)).
        bus_busy_at_ready: True if the channel was serving another
            transaction when this request became ready.
        resource: ``resource_name`` of the channel the request was posted on
            (``"bus"`` for the request channel, ``"bus_response"`` for the
            split-bus response channel).
        origin_core: core the transaction ultimately belongs to (equals
            ``port`` except for shared-port responses).
        mem_ready_cycle: cycle an L2 miss entered the memory controller.
        mem_grant_cycle: cycle its DRAM access was issued (bank-queue grant,
            or arrival-scheduled issue on the plain controller).
        mem_complete_cycle: cycle the DRAM access completed.
        response_ready_cycle: cycle the response transfer became ready.
        response_grant_cycle: cycle the response channel was granted.
        response_complete_cycle: cycle the response reached the core.
    """

    port: int
    kind: str
    addr: int
    ready_cycle: int
    grant_cycle: int = -1
    complete_cycle: int = -1
    service_cycles: int = 0
    contenders_at_ready: int = 0
    bus_busy_at_ready: bool = False
    resource: str = "bus"
    origin_core: int = -1
    mem_ready_cycle: int = -1
    mem_grant_cycle: int = -1
    mem_complete_cycle: int = -1
    response_ready_cycle: int = -1
    response_grant_cycle: int = -1
    response_complete_cycle: int = -1

    @property
    def contention_delay(self) -> int:
        """Cycles spent waiting for the grant (``gamma`` in the paper)."""
        if self.grant_cycle < 0:
            return 0
        return self.grant_cycle - self.ready_cycle

    @property
    def total_latency(self) -> int:
        """Cycles from readiness to data availability."""
        if self.complete_cycle < 0:
            return 0
        return self.complete_cycle - self.ready_cycle

    @property
    def completed(self) -> bool:
        """True once the transaction has finished on the bus."""
        return self.complete_cycle >= 0

    @property
    def reached_memory(self) -> bool:
        """True when the request missed the L2 and entered the controller."""
        return self.mem_ready_cycle >= 0

    @property
    def memory_queue_wait(self) -> int:
        """Cycles the L2 miss waited for its DRAM bank (0 if it never missed)."""
        if self.mem_grant_cycle < 0:
            return 0
        return self.mem_grant_cycle - self.mem_ready_cycle

    @property
    def dram_service(self) -> int:
        """Cycles of DRAM service of the L2 miss (0 if it never missed)."""
        if self.mem_complete_cycle < 0:
            return 0
        return self.mem_complete_cycle - self.mem_grant_cycle

    @property
    def response_wait(self) -> int:
        """Cycles the data return waited for its channel grant."""
        if self.response_grant_cycle < 0:
            return 0
        return self.response_grant_cycle - self.response_ready_cycle

    @property
    def end_to_end_latency(self) -> int:
        """Cycles from request readiness to the final data delivery.

        Falls back to :attr:`total_latency` for requests that never left the
        L2 (no response transfer).
        """
        if self.response_complete_cycle >= 0:
            return self.response_complete_cycle - self.ready_cycle
        return self.total_latency


class TraceRecorder:
    """Collects :class:`RequestRecord` objects during a simulation.

    Recording is optional (it costs memory proportional to the number of bus
    transactions); the system enables it when an experiment asks for
    request-level analysis such as the Figure 6 histograms.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._records: List[RequestRecord] = []

    def record(self, record: RequestRecord) -> None:
        """Store one record (no-op when disabled)."""
        if self.enabled:
            self._records.append(record)

    def clear(self) -> None:
        """Drop all collected records."""
        self._records.clear()

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(self._records)

    @property
    def records(self) -> Tuple[RequestRecord, ...]:
        """All records collected so far, in grant order."""
        return tuple(self._records)

    # ------------------------------------------------------------------ #
    # Convenience selectors used by the analysis layer.
    # ------------------------------------------------------------------ #
    def for_port(
        self, port: int, kinds: Optional[Sequence[str]] = None
    ) -> Tuple[RequestRecord, ...]:
        """Records issued by ``port``, optionally filtered by request kind."""
        selected = (r for r in self._records if r.port == port)
        if kinds is not None:
            wanted = set(kinds)
            selected = (r for r in selected if r.kind in wanted)
        return tuple(selected)

    def completed_records(self) -> Tuple[RequestRecord, ...]:
        """Only the records whose transaction completed."""
        return tuple(r for r in self._records if r.completed)

    def contention_delays(self, port: int, kinds: Optional[Sequence[str]] = None) -> List[int]:
        """Per-request contention delays (``gamma_i``) for ``port``."""
        return [r.contention_delay for r in self.for_port(port, kinds) if r.completed]

    def injection_times(self, port: int, kinds: Optional[Sequence[str]] = None) -> List[int]:
        """Injection times ``delta_i`` between consecutive requests of ``port``.

        The injection time of request ``r_i`` is the number of cycles between
        the completion of ``r_{i-1}`` (its data being sent back) and ``r_i``
        becoming ready, exactly as defined in Section 3.1 of the paper.  The
        first request of the port has no predecessor and is skipped.
        """
        records = [r for r in self.for_port(port, kinds) if r.completed]
        deltas: List[int] = []
        for previous, current in zip(records, records[1:]):
            deltas.append(current.ready_cycle - previous.complete_cycle)
        return deltas

    def count_by_kind(self) -> Dict[str, int]:
        """Number of records per request kind."""
        counts: Dict[str, int] = {}
        for record in self._records:
            counts[record.kind] = counts.get(record.kind, 0) + 1
        return counts

    def ports(self) -> Tuple[int, ...]:
        """Sorted tuple of ports that issued at least one request."""
        return tuple(sorted({r.port for r in self._records}))


def merge_traces(traces: Iterable[TraceRecorder]) -> TraceRecorder:
    """Merge several traces into a new recorder (records sorted by grant cycle)."""
    merged = TraceRecorder(enabled=True)
    all_records: List[RequestRecord] = []
    for trace in traces:
        all_records.extend(trace.records)
    all_records.sort(key=lambda r: (r.grant_cycle, r.ready_cycle, r.port))
    for record in all_records:
        merged.record(record)
    return merged


# --------------------------------------------------------------------------- #
# Core-side digests: what a captured trace is content-addressed by.
# --------------------------------------------------------------------------- #

#: ``ArchConfig`` fields that shape the *system* side only (interconnect,
#: arbiters, memory, engine selection, cosmetics).  Everything else — the
#: private caches, the store buffer, the execute-stage latencies, the core
#: count — determines the core-side request sequence and stays in the key.
SYSTEM_SIDE_FIELDS: Tuple[str, ...] = ("name", "freq_mhz", "bus", "dram", "topology", "engine")

#: Schema version of the serialised :class:`CoreTrace` payload; bump on any
#: incompatible change so stale on-disk traces are ignored, not misread.
TRACE_SCHEMA_VERSION = 1


def core_side_payload(config: ArchConfig) -> Dict[str, object]:
    """``config.to_dict()`` with every system-side field stripped."""
    payload = config.to_dict()
    for fieldname in SYSTEM_SIDE_FIELDS:
        payload.pop(fieldname, None)
    return payload


def core_side_key(config: ArchConfig) -> str:
    """Content digest of the core side of ``config``.

    The core-side analogue of :func:`repro.sim.codegen.loop_cache_key`:
    two configurations share a key exactly when they agree on every
    parameter that can influence a core's demand-request sequence (caches,
    store buffer, execute latencies, core count).  Interconnect, arbiter,
    memory and engine fields are stripped, so an arbiter or topology sweep
    maps onto a single key per kernel.
    """
    return canonical_digest(core_side_payload(config))


def _instruction_payload(instr: Instruction) -> List[object]:
    if isinstance(instr, Nop):
        return ["nop"]
    if isinstance(instr, Alu):
        return ["alu", instr.latency]
    if isinstance(instr, Load):
        return ["load", instr.addr]
    if isinstance(instr, Store):
        return ["store", instr.addr]
    raise SimulationError(f"unknown instruction kind {instr!r}")


def program_payload(program: Program) -> Dict[str, object]:
    """JSON-serialisable description of everything timing-relevant in
    ``program`` (the cosmetic ``name`` is excluded)."""
    return {
        "body": [_instruction_payload(i) for i in program.body],
        "prologue": [_instruction_payload(i) for i in program.prologue],
        "iterations": program.iterations,
        "base_pc": program.base_pc,
    }


def trace_key(
    config: ArchConfig, program: Program, preload_il1: bool, preload_dl1: bool
) -> str:
    """Content digest addressing one captured :class:`CoreTrace`.

    Combines :func:`core_side_key`'s payload with the program and the
    core-side preload flags (a preloaded IL1/DL1 changes the miss sequence;
    the L2 preload is system-side — the L2 stays live during replay — and is
    deliberately excluded).
    """
    return canonical_digest(
        {
            "schema": TRACE_SCHEMA_VERSION,
            "core_side": core_side_payload(config),
            "program": program_payload(program),
            "preload_il1": bool(preload_il1),
            "preload_dl1": bool(preload_dl1),
        }
    )


def replay_blocker(program: Program) -> Optional[str]:
    """Why ``program`` can never be trace-replayed, or ``None`` if it may be.

    The static half of the trace-safety contract: stores drain from the
    store buffer in the background, so their bus requests are coupled to
    interconnect contention and the request sequence is *not* a pure
    function of the core side.  Unknown instruction kinds are rejected for
    the same reason the codegen engine rejects unknown registry entries —
    fall back rather than guess.
    """
    for instr in program.prologue + program.body:
        if isinstance(instr, Store):
            return "program contains stores (store-buffer drains are contention-coupled)"
        if not isinstance(instr, (Nop, Alu, Load)):
            return f"unknown instruction kind {type(instr).__name__!r}"
    return None


# --------------------------------------------------------------------------- #
# The captured core-side trace.
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class TraceStep:
    """One demand request plus the compute segment that precedes it.

    Attributes:
        gap: compute gap in cycles between the previous response delivery
            (or cycle 0 for the first step) and this request becoming ready.
            May be 0 — an IL1 miss can issue in the delivery cycle itself.
        kind: ``"load"`` or ``"ifetch"`` (stores are never trace-safe).
        addr: line address posted on the bus.
        retirements: ``(offset, mnemonic)`` per instruction retired during
            the segment, with ``offset`` in ``[0, gap]`` measured from the
            segment start (offset 0 is the load retired by the delivery
            that opened the segment).
    """

    gap: int
    kind: str
    addr: int
    retirements: Tuple[Tuple[int, str], ...] = ()

    @cached_property
    def retire_counts(self) -> Tuple[int, int, int, int]:
        """``(instructions, loads, stores, nops)`` retired by this segment.

        Cached because replay applies a whole segment's retirements in one
        batch on every pass over the step — and the periodic suffix of an
        infinite contender revisits the *same* step objects indefinitely.
        """
        loads = stores = nops = 0
        for _offset, mnemonic in self.retirements:
            if mnemonic == "load":
                loads += 1
            elif mnemonic == "store":
                stores += 1
            elif mnemonic == "nop":
                nops += 1
        return (len(self.retirements), loads, stores, nops)


@dataclass(frozen=True)
class CoreTrace:
    """The captured core side of one (configuration, program) pair.

    A finite program carries a *tail*: the retirements after the last
    response delivery and the offset at which the core reached ``DONE``.
    An infinite contender instead carries ``period``: the trailing
    ``period`` steps repeat forever, so replay streams the literal steps
    and then cycles the periodic suffix indefinitely.

    Attributes:
        key: the :func:`trace_key` digest this trace was captured for.
        steps: the captured (and, for infinite programs, warmup-trimmed)
            request steps.
        tail_retirements: finite programs only — retirements after the last
            delivery, as ``(offset, mnemonic)`` from that delivery.
        done_offset: finite programs only — cycles from the last delivery
            to the ``DONE`` transition.
        period: infinite programs only — length of the repeating suffix of
            ``steps``.
    """

    key: str
    steps: Tuple[TraceStep, ...]
    tail_retirements: Tuple[Tuple[int, str], ...] = ()
    done_offset: Optional[int] = None
    period: Optional[int] = None

    @property
    def is_infinite(self) -> bool:
        """True when the trace extrapolates a periodic contender forever."""
        return self.period is not None

    def step(self, index: int) -> Optional[TraceStep]:
        """The ``index``-th request step, cycling the periodic suffix for
        infinite traces; ``None`` past the end of a finite trace."""
        steps = self.steps
        count = len(steps)
        if index < count:
            return steps[index]
        if self.period is None:
            return None
        base = count - self.period
        return steps[base + (index - base) % self.period]

    def to_payload(self) -> Dict[str, object]:
        """JSON-serialisable form (inverse of :meth:`from_payload`)."""
        return {
            "schema": TRACE_SCHEMA_VERSION,
            "key": self.key,
            "steps": [
                [s.gap, s.kind, s.addr, [[off, mn] for off, mn in s.retirements]]
                for s in self.steps
            ],
            "tail_retirements": [[off, mn] for off, mn in self.tail_retirements],
            "done_offset": self.done_offset,
            "period": self.period,
        }

    @staticmethod
    def from_payload(payload: Dict[str, object]) -> "CoreTrace":
        """Rebuild a trace from :meth:`to_payload` output.

        Raises :class:`~repro.errors.SimulationError` on a schema mismatch
        (stale on-disk traces must be ignored, never misread).
        """
        if payload.get("schema") != TRACE_SCHEMA_VERSION:
            raise SimulationError(
                f"trace payload schema {payload.get('schema')!r} != {TRACE_SCHEMA_VERSION}"
            )
        raw_steps = cast(List[List[object]], payload["steps"])
        steps = tuple(
            TraceStep(
                gap=cast(int, gap),
                kind=cast(str, kind),
                addr=cast(int, addr),
                retirements=tuple(
                    (cast(int, off), cast(str, mn))
                    for off, mn in cast(List[List[object]], retirements)
                ),
            )
            for gap, kind, addr, retirements in raw_steps
        )
        done_offset = cast(Optional[int], payload.get("done_offset"))
        period = cast(Optional[int], payload.get("period"))
        tail = tuple(
            (cast(int, off), cast(str, mn))
            for off, mn in cast(List[List[object]], payload.get("tail_retirements", []))
        )
        return CoreTrace(
            key=cast(str, payload["key"]),
            steps=steps,
            tail_retirements=tail,
            done_offset=done_offset,
            period=period,
        )


@dataclass(frozen=True)
class TraceUnsafe:
    """Negative cache entry: this key's capture proved not trace-safe."""

    reason: str


# --------------------------------------------------------------------------- #
# Capture: instrument a real Core in place and rebuild the trace afterwards.
# --------------------------------------------------------------------------- #

#: Event tags of the per-core capture log.
_EV_REQUEST = 0
_EV_DELIVER = 1
_EV_RETIRE = 2

#: Largest periodic suffix the capture pass searches for; real kernels have
#: periods of at most a few body lengths, and an O(n * max_period) scan must
#: stay cheap on multi-thousand-request captures.
MAX_TRACE_PERIOD = 1024

#: Trailing repetitions required before a periodic suffix is trusted.
MIN_PERIOD_REPEATS = 3


class CaptureProbe:
    """Instance-attribute instrumentation of one execution-driven core.

    The probe shadows ``issue_request``, ``on_data_line``,
    ``on_instruction_line`` and ``_retire`` with recording wrappers on the
    *instance* (Python's attribute lookup prefers the instance dict, so
    internal ``self._retire(...)`` calls hit the wrapper too).  The core
    keeps simulating with full fidelity — the capture run doubles as the
    result run — and :meth:`harvest` rebuilds the :class:`CoreTrace` from
    the recorded event log.
    """

    def __init__(self, core: Core, key: str, program: Program) -> None:
        self.core = core
        self.key = key
        self.program = program
        #: (tag, cycle, kind-or-mnemonic, addr) in simulation order.
        self.events: List[Tuple[int, int, str, int]] = []
        events = self.events
        original_issue = core.issue_request

        def issue(core_id: int, kind: str, addr: int, ready_cycle: int) -> None:
            events.append((_EV_REQUEST, ready_cycle, kind, addr))
            original_issue(core_id, kind, addr, ready_cycle)

        def on_data(addr: int, cycle: int) -> None:
            events.append((_EV_DELIVER, cycle, "", 0))
            Core.on_data_line(core, addr, cycle)

        def on_instr(addr: int, cycle: int) -> None:
            events.append((_EV_DELIVER, cycle, "", 0))
            Core.on_instruction_line(core, addr, cycle)

        def retire(cycle: int) -> None:
            instr = core._current_instr
            mnemonic = instr.mnemonic if instr is not None else "?"
            events.append((_EV_RETIRE, cycle, mnemonic, 0))
            Core._retire(core, cycle)

        self._original_issue = original_issue
        core.issue_request = issue
        core.on_data_line = on_data  # type: ignore[method-assign]
        core.on_instruction_line = on_instr  # type: ignore[method-assign]
        core._retire = retire  # type: ignore[method-assign]

    def uninstall(self) -> None:
        """Remove the wrappers, restoring the core's original behaviour."""
        core = self.core
        core.issue_request = self._original_issue
        for name in ("on_data_line", "on_instruction_line", "_retire"):
            core.__dict__.pop(name, None)

    def harvest(
        self, end_cycle: int, timed_out: bool
    ) -> Tuple[Optional[CoreTrace], Optional[str], bool]:
        """Build the trace from the recorded events.

        Returns ``(trace, None, False)`` on success or ``(None, reason,
        negative_cacheable)`` when the capture is not trace-safe.  Reasons
        that depend only on the kernel/configuration (aperiodic suffix, no
        requests) are negative-cacheable; a timeout is not, because a larger
        cycle budget may succeed later.
        """
        return build_core_trace(
            self.key,
            self.events,
            done_cycle=self.core.done_cycle,
            is_infinite=self.program.is_infinite,
            timed_out=timed_out,
            end_cycle=end_cycle,
        )


def _find_period(steps: Sequence[TraceStep]) -> Optional[int]:
    """Smallest ``p`` such that the trailing ``MIN_PERIOD_REPEATS * p``
    steps are exactly ``p``-periodic, or ``None``."""
    count = len(steps)
    limit = min(count // MIN_PERIOD_REPEATS, MAX_TRACE_PERIOD)
    for period in range(1, limit + 1):
        start = count - MIN_PERIOD_REPEATS * period
        if all(steps[i] == steps[i + period] for i in range(start, count - period)):
            return period
    return None


def build_core_trace(
    key: str,
    events: Sequence[Tuple[int, int, str, int]],
    done_cycle: Optional[int],
    is_infinite: bool,
    timed_out: bool,
    end_cycle: int,
) -> Tuple[Optional[CoreTrace], Optional[str], bool]:
    """Turn one core's capture log into a :class:`CoreTrace`.

    See :meth:`CaptureProbe.harvest` for the return convention.
    """
    seg_start = 0
    awaiting = False
    retires: List[Tuple[int, str]] = []
    steps: List[TraceStep] = []
    for tag, cycle, text, addr in events:
        if tag == _EV_RETIRE:
            retires.append((cycle - seg_start, text))
        elif tag == _EV_REQUEST:
            if awaiting or text not in ("load", "ifetch"):
                return None, f"untraceable request pattern (kind {text!r})", True
            steps.append(TraceStep(cycle - seg_start, text, addr, tuple(retires)))
            retires = []
            awaiting = True
        else:  # _EV_DELIVER
            if not awaiting:
                return None, "delivery without a pending request", True
            awaiting = False
            seg_start = cycle

    if not is_infinite:
        if timed_out or done_cycle is None:
            return None, "capture run timed out before the program finished", False
        if awaiting:
            return None, "request still in flight at program completion", False
        return (
            CoreTrace(
                key=key,
                steps=tuple(steps),
                tail_retirements=tuple(retires),
                done_offset=done_cycle - seg_start,
                period=None,
            ),
            None,
            False,
        )

    # Infinite contender: the trace must end in a provably periodic suffix.
    if not steps:
        return None, "infinite program issued no bus requests", True
    period = _find_period(steps)
    if period is None:
        return None, "no periodic request suffix detected", True
    if not awaiting:
        # The core was computing at the end of the run.  If the pattern had
        # truly continued, the next request would have been issued no later
        # than seg_start + next_gap; a silent core past that point means the
        # request stream died out (e.g. the working set became DL1-resident)
        # and periodic extrapolation would invent requests.
        next_gap = steps[len(steps) - period].gap
        if seg_start + next_gap <= end_cycle:
            return None, "request stream went silent (not periodic)", True
    # Trim the warmup: extend the periodic suffix as far back as it holds
    # and keep only the aperiodic prefix plus one full period.
    index = len(steps) - period - 1
    while index >= 0 and steps[index] == steps[index + period]:
        index -= 1
    kept = steps[: index + 1 + period]
    return (
        CoreTrace(key=key, steps=tuple(kept), period=period),
        None,
        False,
    )


# --------------------------------------------------------------------------- #
# The replay core: stream a CoreTrace through the live interconnect.
# --------------------------------------------------------------------------- #


class ReplayCore:
    """A drop-in core that streams a :class:`CoreTrace`.

    Satisfies the engine-facing surface of :class:`repro.sim.core.Core`
    (``state`` / ``_busy_until`` / ``needs_tick`` / ``next_event_cycle`` /
    ``tick`` / the delivery callbacks) while never touching an instruction
    stream or a cache: a *segment* is entered at each response delivery
    (``_busy_until = delivery + gap``), and the tick at the end of the
    segment applies the recorded retirements and posts the next request.
    The system side — L2 lookups at grant time, the memory controller, the
    buses, the arbiters, PMC bus counters and the request-level trace —
    stays fully live, which is what makes replay bit-identical under *any*
    contention.

    Retirements are applied in batches (at segment end, or by
    :meth:`finalize` for the partial segment a run ends inside), so a
    replayed core wakes the engine once per request instead of once per
    instruction — the second speedup on top of skipping the cache model.
    """

    __slots__ = (
        "core_id",
        "trace",
        "issue_request",
        "pmc",
        "program",
        "instructions_retired",
        "done_cycle",
        "stall_cycles",
        "_index",
        "_segment_start",
        "_busy_until",
        "_applied",
        "_steps",
        "_count",
        "_wrap",
        "_pos",
        "state",
    )

    is_replay = True

    def __init__(
        self,
        core_id: int,
        trace: CoreTrace,
        issue_request: IssueCallback,
        pmc: Optional[PerformanceCounters] = None,
        program: Optional[Program] = None,
    ) -> None:
        self.core_id = core_id
        self.trace = trace
        self.issue_request = issue_request
        self.pmc = pmc
        self.program = program
        self.instructions_retired = 0
        self.done_cycle: Optional[int] = None
        self.stall_cycles = 0
        self._index = 0
        self._segment_start = 0
        self._busy_until = 0
        #: retirements of the current segment already counted by finalize()
        self._applied = 0
        # Streaming state: ``_pos`` is the position of the next step inside
        # ``trace.steps``.  :meth:`tick` wraps it back to the start of the
        # periodic suffix itself, so the per-request fast path needs neither
        # a method call nor a modulo — this is the hottest replay code.
        self._steps = trace.steps
        self._count = len(trace.steps)
        self._wrap = -1 if trace.period is None else self._count - trace.period
        self._pos = 0
        self.state = CoreState.EXECUTING
        self._enter_segment(0)

    # -- engine-facing surface ----------------------------------------- #
    @property
    def is_done(self) -> bool:
        """True once the (finite) trace has fully retired."""
        return self.state is CoreState.DONE

    @property
    def is_waiting_on_bus(self) -> bool:
        """True while the replayed core awaits a response delivery."""
        return self.state in (CoreState.WAIT_IFETCH, CoreState.WAIT_LOAD)

    def next_event_cycle(self, cycle: int) -> int:
        """Same contract as :meth:`repro.sim.core.Core.next_event_cycle`."""
        if self.state is CoreState.EXECUTING:
            return max(self._busy_until, cycle + 1)
        return NO_EVENT

    next_activity = next_event_cycle

    def needs_tick(self, cycle: int) -> bool:
        """True only at the end of a compute segment (no store buffer, no
        READY state: a replayed core acts exactly once per request)."""
        return self.state is CoreState.EXECUTING and cycle >= self._busy_until

    def tick(self, cycle: int) -> None:
        """Close the current segment if its compute gap has elapsed."""
        if self.state is not CoreState.EXECUTING or cycle < self._busy_until:
            return
        pos = self._pos
        if pos >= self._count:
            # Finite trace exhausted (an infinite one wraps and never gets
            # here): apply the tail and retire the core.
            self._apply_retirements(self.trace.tail_retirements)
            self.state = CoreState.DONE
            self.done_cycle = self._busy_until
            return
        step = self._steps[pos]
        pos += 1
        if pos >= self._count and self._wrap >= 0:
            pos = self._wrap
        self._pos = pos
        self._index += 1
        # Whole-segment retirement batch via the step's cached counts —
        # finalize() only ever runs after the engine loop, so ``_applied``
        # is always 0 on this path.
        count, loads, stores, nops = step.retire_counts
        if count:
            self.instructions_retired += count
            pmc = self.pmc
            if pmc is not None:
                counters = pmc.core[self.core_id]
                counters.instructions += count
                counters.loads += loads
                counters.stores += stores
                counters.nops += nops
        self.state = CoreState.WAIT_LOAD if step.kind == "load" else CoreState.WAIT_IFETCH
        self.issue_request(self.core_id, step.kind, step.addr, self._busy_until)

    def on_data_line(self, addr: int, cycle: int) -> None:
        """A demand load completed; start the next compute segment."""
        if self.state is not CoreState.WAIT_LOAD:
            raise SimulationError(
                f"replay core {self.core_id}: unexpected data line at cycle {cycle}"
            )
        # _enter_segment's common case inlined — one call per request here
        # is measurable; the finite-tail case stays in the slow path.
        pos = self._pos
        if pos < self._count:
            self._segment_start = cycle
            self._busy_until = cycle + self._steps[pos].gap
            self.state = CoreState.EXECUTING
        else:
            self._enter_segment(cycle)

    def on_instruction_line(self, addr: int, cycle: int) -> None:
        """An instruction fetch completed; start the next compute segment."""
        if self.state is not CoreState.WAIT_IFETCH:
            raise SimulationError(
                f"replay core {self.core_id}: unexpected instruction line at cycle {cycle}"
            )
        pos = self._pos
        if pos < self._count:
            self._segment_start = cycle
            self._busy_until = cycle + self._steps[pos].gap
            self.state = CoreState.EXECUTING
        else:
            self._enter_segment(cycle)

    def on_store_drained(self, cycle: int) -> None:  # pragma: no cover - guard
        raise SimulationError(f"replay core {self.core_id} cannot own store traffic")

    def finalize(self, end_cycle: int) -> None:
        """Account the partial segment a run ended inside.

        Retirements are normally applied when the segment's closing tick
        runs; a run that ends mid-segment (an observed core finishing, or a
        timeout) would miss the retirements already past.  Applying every
        ``(offset, mnemonic)`` with ``segment_start + offset <= end_cycle``
        makes ``instructions_retired`` and the PMC instruction counters
        exact at any end cycle — the replay engine calls this once after
        the inner loop returns.
        """
        if self.state is not CoreState.EXECUTING:
            return
        step = self.trace.step(self._index)
        pending = self.trace.tail_retirements if step is None else step.retirements
        cutoff = end_cycle - self._segment_start
        for offset, mnemonic in pending[self._applied :]:
            if offset > cutoff:
                break
            self.instructions_retired += 1
            if self.pmc is not None:
                self.pmc.note_instruction(self.core_id, mnemonic)
            self._applied += 1

    # -- internals ------------------------------------------------------ #
    def _enter_segment(self, cycle: int) -> None:
        self._segment_start = cycle
        pos = self._pos
        if pos >= self._count:
            done_offset = self.trace.done_offset
            if done_offset is None:  # pragma: no cover - build invariant
                raise SimulationError(
                    f"replay core {self.core_id}: trace ended without a tail"
                )
            self._busy_until = cycle + done_offset
        else:
            self._busy_until = cycle + self._steps[pos].gap
        self.state = CoreState.EXECUTING

    def _apply_retirements(self, retirements: Tuple[Tuple[int, str], ...]) -> None:
        pending = retirements[self._applied :]
        self._applied = 0
        count = len(pending)
        if not count:
            return
        self.instructions_retired += count
        pmc = self.pmc
        if pmc is not None:
            core_id = self.core_id
            for _offset, mnemonic in pending:
                pmc.note_instruction(core_id, mnemonic)


# --------------------------------------------------------------------------- #
# The trace cache: in-process LRU, optionally backed by a ResultStore.
# --------------------------------------------------------------------------- #

#: Either a captured trace or the negative record of a failed capture.
TraceEntry = Union[CoreTrace, TraceUnsafe]


class TraceCache:
    """Content-addressed memo of captured core traces.

    An :class:`collections.OrderedDict` LRU keyed by :func:`trace_key`
    digests.  Positive entries (:class:`CoreTrace`) may additionally be
    persisted through an attached :class:`repro.campaign.store.ResultStore`
    (its ``traces/`` section), which extends cross-campaign dedup and the
    ``cache stats|gc`` maintenance surface to traces; negative entries
    (:class:`TraceUnsafe`) stay in-process only — a failed capture is cheap
    to re-prove and its reasons can be run-specific.

    Counters (``stats()``):

    * ``hits`` / ``misses`` — lookup outcomes, in-process LRU first;
    * ``store_hits`` — subset of hits answered by the attached store;
    * ``captures`` — positive traces inserted (one full execution-driven
      run each: the bench harness asserts this stays at one per kernel
      across a sweep);
    * ``unsafe`` — negative entries inserted.
    """

    def __init__(self, max_entries: int = 128) -> None:
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, TraceEntry]" = OrderedDict()
        self._store: Optional[object] = None
        self.counters: Dict[str, int] = {
            "hits": 0,
            "misses": 0,
            "store_hits": 0,
            "captures": 0,
            "unsafe": 0,
        }

    # -- store backing --------------------------------------------------- #
    def attach_store(self, store: Optional[object]) -> None:
        """Back this cache with ``store`` (a ``ResultStore`` or ``None``)."""
        self._store = store

    @property
    def store(self) -> Optional[object]:
        """The attached backing store, if any."""
        return self._store

    # -- lookups --------------------------------------------------------- #
    def get(self, key: str) -> Optional[TraceEntry]:
        """The entry for ``key`` (positive or negative), or ``None``."""
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.counters["hits"] += 1
            return entry
        store = self._store
        if store is not None:
            payload = store.get_trace(key)  # type: ignore[attr-defined]
            if payload is not None:
                try:
                    trace = CoreTrace.from_payload(payload)
                except SimulationError:
                    trace = None  # stale schema: treat as a miss
                if trace is not None:
                    self._insert(key, trace)
                    self.counters["hits"] += 1
                    self.counters["store_hits"] += 1
                    return trace
        self.counters["misses"] += 1
        return None

    def put(self, trace: CoreTrace) -> None:
        """Insert a captured trace (and persist it if a store is attached)."""
        self._insert(trace.key, trace)
        self.counters["captures"] += 1
        store = self._store
        if store is not None:
            store.put_trace(trace.key, trace.to_payload())  # type: ignore[attr-defined]

    def put_unsafe(self, key: str, reason: str) -> None:
        """Insert a negative entry (in-process only)."""
        self._insert(key, TraceUnsafe(reason))
        self.counters["unsafe"] += 1

    def _insert(self, key: str, entry: TraceEntry) -> None:
        entries = self._entries
        entries[key] = entry
        entries.move_to_end(key)
        while len(entries) > self.max_entries:
            entries.popitem(last=False)

    # -- maintenance ----------------------------------------------------- #
    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> Dict[str, int]:
        """Counter snapshot plus the current entry count."""
        snapshot = dict(self.counters)
        snapshot["entries"] = len(self._entries)
        return snapshot

    def reset_counters(self) -> None:
        """Zero every counter (the bench harness isolates phases with this)."""
        for name in self.counters:
            self.counters[name] = 0

    def clear(self) -> None:
        """Drop all entries and counters (test isolation hook)."""
        self._entries.clear()
        self.reset_counters()


#: Process-wide cache shared by every ReplayEngine instance: one capture per
#: kernel serves every later run in the process (each campaign worker
#: process therefore captures each kernel at most once per sweep).
_GLOBAL_TRACE_CACHE = TraceCache()


def global_trace_cache() -> TraceCache:
    """The process-wide :class:`TraceCache` the replay engine uses."""
    return _GLOBAL_TRACE_CACHE


def clear_trace_cache() -> None:
    """Empty the process-wide trace cache (test isolation hook)."""
    _GLOBAL_TRACE_CACHE.attach_store(None)
    _GLOBAL_TRACE_CACHE.clear()


# --------------------------------------------------------------------------- #
# The replay engine.
# --------------------------------------------------------------------------- #


class ReplayEngine:
    """The ``replay`` engine: capture the core side once, then stream it.

    Per core with a program: a cached :class:`CoreTrace` (in-process LRU or
    attached store) swaps the execution-driven core for a
    :class:`ReplayCore`; a cached :class:`TraceUnsafe` keeps the real core;
    anything else instruments the real core with a :class:`CaptureProbe`,
    so the first run both produces the full-fidelity result *and* the trace
    every later run replays.  The inner loop is the chain-specialised
    generated loop when the configuration supports it (with the replay
    cores' phase-2 blocks reduced to a single busy-until check —
    ``replay_mask`` in :mod:`repro.sim.codegen`), else the generic
    :class:`~repro.sim.scheduler.EventScheduler`; either way every engine
    invariant and the full observable state (cycles, traces, PMCs) are
    preserved bit for bit.

    ``fallback_reasons`` maps core ids that could not be replayed *or*
    captured this run to the reason (static trace-unsafety or a cached
    negative entry) — the audit and test surfaces read it.
    """

    name = "replay"

    def __init__(self, system: "System") -> None:
        self.system = system
        self.fallback_reasons: Dict[int, str] = {}
        self.replayed_cores: List[int] = []
        self.captured_cores: List[int] = []

    def run(self, observed: List[int], max_cycles: int) -> Tuple[int, bool]:
        """Run with per-core capture/replay; returns the final cycle and
        whether the run timed out."""
        system = self.system
        config = system.config
        cache = global_trace_cache()
        probes: List[CaptureProbe] = []
        replay_cores: List[ReplayCore] = []
        replay_mask = 0
        for core_id, program in enumerate(system.programs):
            if program is None:
                continue
            core = system.cores[core_id]
            if isinstance(core, ReplayCore):
                replay_cores.append(core)
                replay_mask |= 1 << core_id
                continue
            if type(core) is not Core:
                self.fallback_reasons[core_id] = (
                    f"core is a {type(core).__name__}, not the built-in Core"
                )
                continue
            blocker = replay_blocker(program)
            if blocker is not None:
                self.fallback_reasons[core_id] = blocker
                continue
            key = trace_key(config, program, system.preload_il1, system.preload_dl1)
            entry = cache.get(key)
            if isinstance(entry, CoreTrace):
                replay = ReplayCore(
                    core_id,
                    entry,
                    issue_request=system._issue_demand,
                    pmc=system.pmc,
                    program=program,
                )
                system.cores[core_id] = cast(Core, replay)
                replay_cores.append(replay)
                replay_mask |= 1 << core_id
                self.replayed_cores.append(core_id)
            elif isinstance(entry, TraceUnsafe):
                self.fallback_reasons[core_id] = entry.reason
            else:
                probes.append(CaptureProbe(core, key, program))
                self.captured_cores.append(core_id)

        cycle, timed_out = self._run_inner(observed, max_cycles, replay_mask)

        for replay in replay_cores:
            replay.finalize(cycle)
        for probe in probes:
            trace, reason, negative_cacheable = probe.harvest(cycle, timed_out)
            probe.uninstall()
            if trace is not None:
                cache.put(trace)
            elif reason is not None:
                self.fallback_reasons[probe.core.core_id] = reason
                if negative_cacheable:
                    cache.put_unsafe(probe.key, reason)
        return cycle, timed_out

    def _run_inner(
        self, observed: List[int], max_cycles: int, replay_mask: int
    ) -> Tuple[int, bool]:
        # Local imports: this module sits below bus.py in the import graph
        # (bus imports RequestRecord from here), so the engine machinery is
        # resolved lazily.  Registration happens in scheduler.py's tail for
        # the same reason.
        from .codegen import compile_loop, specialisation_mismatch
        from .scheduler import EventScheduler

        system = self.system
        if specialisation_mismatch(system) is None:
            loop = compile_loop(system.config, replay_mask=replay_mask)
            return cast(
                Tuple[int, bool], loop.run(system, observed, max_cycles)
            )
        return EventScheduler(system).run(observed, max_cycles)
