"""Simulation engines: the stepped oracle loop and the event-driven fast path.

The simulator supports two interchangeable engines, selected through
``ArchConfig.engine`` (or per run via ``System.run(engine=...)``):

* :class:`SteppedEngine` — the reference loop.  It advances the clock one
  cycle at a time and runs the full Section 5 cycle structure (deliver,
  memory tick, core ticks, arbitrate) on every cycle.  It is deliberately
  unoptimised: it is the oracle the fast path is validated against.
* :class:`EventScheduler` — the fast path.  After processing a cycle it asks
  every component for its *event horizon* — the earliest future cycle at
  which that component can change state on its own — and jumps the clock
  directly to the minimum.  Saturated-bus experiments (the paper's hot
  path) spend most of their cycles with every core stalled on a 9-cycle bus
  occupancy, so the fast path visits a small fraction of the cycles while
  producing bit-identical results.

Horizon contract
----------------

Each component exposes ``next_event_cycle(cycle)``, called *after* the
cycle's phases have run:

* ``Bus.next_event_cycle`` — delivery of the in-flight transaction
  (``busy_until``), or the earliest ready/grantable queued request on a free
  bus (the arbiter contributes slot constraints for TDMA through
  ``Arbiter.next_event_cycle``);
* ``MemoryController.next_event_cycle`` — the earliest in-flight DRAM read
  completion;
* ``Core.next_event_cycle`` — the end of the execute-stage occupancy;
  waiting/stalled/done cores report ``inf`` because only a bus or memory
  event (already in the horizon) can wake them.

Invariants that make the jump cycle-exact:

1. *No spontaneous state changes*: between events, every component's state
   is a pure function of the clock, so skipping unvisited cycles cannot
   lose information.
2. *Conservative horizons*: a component may report an earlier cycle than
   its true next event (costing speed, not correctness) but never a later
   one.
3. *Wake-ups are events*: any cycle at which one component can change
   another's state (bus delivery, DRAM completion) appears in the horizon
   of the component that drives it.
4. *Phase order is preserved*: every visited cycle runs the exact Section 5
   phase sequence, so intra-cycle orderings (deliver before tick before
   arbitrate) — which produce the paper's synchrony effect — are untouched.

Within a visited cycle the event engine additionally skips the tick of
cores that provably cannot act (``Core.needs_tick``), which is what makes
the visited cycles themselves cheaper than the oracle's.
"""

from __future__ import annotations

from typing import List, Tuple

from ..config import ENGINES
from ..errors import ConfigurationError


class SteppedEngine:
    """The cycle-by-cycle oracle loop (Section 5 cycle structure).

    Args:
        system: the :class:`repro.sim.system.System` to drive.
    """

    name = "stepped"

    def __init__(self, system) -> None:
        self.system = system

    def run(self, observed: List[int], max_cycles: int) -> Tuple[int, bool]:
        """Advance the clock one cycle at a time until every observed core
        finished (or ``max_cycles`` is reached); returns the final cycle and
        whether the run timed out."""
        system = self.system
        bus = system.bus
        memctrl = system.memctrl
        cores = system.cores
        pmc = system.pmc
        observed_cores = [cores[core_id] for core_id in observed]

        cycle = system.current_cycle
        timed_out = False
        while True:
            bus.deliver(cycle)
            memctrl.tick(cycle)
            for core in cores:
                core.tick(cycle)
            bus.arbitrate(cycle)
            pmc.cycles = cycle + 1

            if all(core.is_done for core in observed_cores):
                break
            if cycle >= max_cycles:
                timed_out = True
                break
            cycle += 1

        system.current_cycle = cycle
        return cycle, timed_out


class EventScheduler:
    """The event-driven fast path: jump the clock to the earliest horizon.

    Args:
        system: the :class:`repro.sim.system.System` to drive.
    """

    name = "event"

    def __init__(self, system) -> None:
        self.system = system

    def run(self, observed: List[int], max_cycles: int) -> Tuple[int, bool]:
        """Process only cycles at which some component has an event; returns
        the final cycle and whether the run timed out.

        Cycle-exactness relies on the horizon contract in the module
        docstring: the next visited cycle is the minimum of every
        component's ``next_event_cycle``, clamped to ``max_cycles`` so a
        timed-out run stops on exactly the same cycle as the oracle.
        """
        from .core import CoreState

        system = self.system
        bus = system.bus
        memctrl = system.memctrl
        cores = system.cores
        pmc = system.pmc
        observed_cores = [cores[core_id] for core_id in observed]
        # Dedicated fast path for the overwhelmingly common single-observed-
        # core case (every methodology and campaign run).
        only_observed = observed_cores[0] if len(observed_cores) == 1 else None

        # Bind hot names to locals and read sibling internals directly: the
        # loop below runs once per *event* cycle but still dominates the
        # simulator's wall-clock, so the usual accessor indirections are
        # deliberately bypassed here (scheduler, bus, core and memctrl are
        # one cohesive package; the accessors remain the public API).
        bus_deliver = bus.deliver
        bus_arbitrate = bus.arbitrate
        bus_horizon = bus.next_event_cycle
        memctrl_tick = memctrl.tick
        in_flight = memctrl._in_flight
        executing = CoreState.EXECUTING
        ready = CoreState.READY
        stalled = CoreState.STALL_STORE_BUFFER
        done = CoreState.DONE

        cycle = system.current_cycle
        timed_out = False
        while True:
            completed = None
            if bus._current is not None and cycle >= bus._busy_until:
                completed = bus_deliver(cycle)
            if in_flight and in_flight[0][0] <= cycle:
                memctrl_tick(cycle)
            # Only self-driven cores can act on their own: one finishing its
            # execute-stage occupancy, one ready to start an instruction, or
            # one retrying a full store buffer (the retry is a no-op until a
            # delivery frees a slot, but the oracle performs it, so the
            # no-op cost is all we skip).  A bus delivery can additionally
            # wake exactly its origin core (load/ifetch data, store-buffer
            # head completion), which therefore gets the full activity check.
            woken = cores[completed.origin_core] if completed is not None else None
            for core in cores:
                state = core.state
                if state is executing:
                    if cycle >= core._busy_until or (
                        core is woken and core.needs_tick(cycle)
                    ):
                        core.tick(cycle)
                elif state is ready or state is stalled:
                    core.tick(cycle)
                elif core is woken and core.needs_tick(cycle):
                    core.tick(cycle)
            if bus._current is None and bus._queued_total:
                bus_arbitrate(cycle)

            if only_observed is not None:
                if only_observed.state is done:
                    break
            elif all(core.state is done for core in observed_cores):
                break
            if cycle >= max_cycles:
                timed_out = True
                break

            # Inline horizon minimisation over the components.  Core states
            # are read directly (rather than via Core.next_event_cycle) to
            # spare four method calls per visited cycle; the semantics are
            # identical: executing cores wake at the end of their occupancy,
            # ready cores on the next cycle, everyone else on a bus or
            # memory event already in the bus/memctrl horizons.
            if bus._current is not None:
                horizon = bus._busy_until
            else:
                horizon = bus_horizon(cycle)
            if in_flight:
                mem_horizon = in_flight[0][0]
                if mem_horizon < horizon:
                    horizon = mem_horizon
            for core in cores:
                state = core.state
                if state is executing:
                    core_horizon = core._busy_until
                elif state is ready:
                    core_horizon = cycle + 1
                else:
                    continue
                if core_horizon < horizon:
                    horizon = core_horizon
            if horizon <= cycle:
                cycle += 1
            else:
                # Never jump past the cycle budget: the oracle processes
                # max_cycles as its last cycle, and so must we.
                cycle = int(horizon) if horizon <= max_cycles else max_cycles
        pmc.cycles = cycle + 1
        system.current_cycle = cycle
        return cycle, timed_out


def make_engine(name: str, system):
    """Instantiate the engine called ``name`` for ``system``.

    Accepts the values of :data:`repro.config.ENGINES`; anything else raises
    :class:`~repro.errors.ConfigurationError`.
    """
    if name == "event":
        return EventScheduler(system)
    if name == "stepped":
        return SteppedEngine(system)
    raise ConfigurationError(
        f"unknown simulation engine {name!r}; available: {list(ENGINES)}"
    )
