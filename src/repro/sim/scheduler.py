"""Simulation engines: the stepped oracle loop and the event-driven fast path.

The simulator supports two interchangeable engines, selected through
``ArchConfig.engine`` (or per run via ``System.run(engine=...)``):

* :class:`SteppedEngine` — the reference loop.  It advances the clock one
  cycle at a time and runs the full Section 5 cycle structure (deliver all
  resources, tick the cores, arbitrate all resources) on every cycle.  It is
  deliberately unoptimised: it is the oracle the fast path is validated
  against.
* :class:`EventScheduler` — the fast path.  After processing a cycle it
  takes the *event horizon* — the minimum over every resource's and core's
  next self-driven event — and jumps the clock directly to it.
  Saturated-bus experiments (the paper's hot path) spend most of their
  cycles with every core stalled on a 9-cycle bus occupancy, so the fast
  path visits a small fraction of the cycles while producing bit-identical
  results.

Both engines drive ``System.resources`` **generically** through the
event-port surface of :class:`repro.sim.resource.SharedResource` —
``deliver`` / ``arbitrate`` / ``horizon`` / ``wake_targets``.  Neither
engine names a concrete resource type, so a topology registered via
:func:`repro.sim.topology.register_topology` (one bus, a bank-queued
memory stage, a split request/response bus pair, ...) runs on both engines
without engine edits.

Engines are registered, not hardwired: the :func:`register_engine` decorator
adds a class to :data:`ENGINE_REGISTRY` (a
:class:`repro.registry.Registry`), and :func:`make_engine`, the CLI's
``list`` subcommand and ``ArchConfig`` validation all read the registry.

Horizon contract
----------------

Each resource exposes ``horizon(cycle) -> int``, the *cached* event horizon
(the integer-only contract is documented in :mod:`repro.sim.resource`; "no
self-driven event" is the :data:`~repro.sim.resource.NO_EVENT` sentinel,
never ``float('inf')``).  The cache is recomputed from the resource's
``next_event_cycle`` only after a mutation (posting work, a delivery, a
grant, a reset) marked it stale — dirty-flag recomputation instead of a
per-cycle queue rescan, which is what keeps the generic loop as fast as the
former hand-inlined one.  Cores are not shared resources; the engine folds
their horizons directly from their execution state (an executing core wakes
at the end of its occupancy, a ready core on the next cycle, everyone else
on a delivery already present in some resource's horizon).

Invariants that make the jump cycle-exact:

1. *No spontaneous state changes*: between events, every component's state
   is a pure function of the clock, so skipping unvisited cycles cannot
   lose information.  (This is also what makes the horizon *cache* sound: a
   horizon computed from unmutated state stays the true horizon until a
   mutation invalidates it.)
2. *Conservative horizons*: a component may report an earlier cycle than
   its true next event (costing speed, not correctness) but never a later
   one.
3. *Wake-ups are events*: any cycle at which one component can change
   another's state (a delivery, a DRAM completion, a bank grant) appears in
   the horizon of the component that drives it, and deliveries publish the
   possibly-woken cores through ``wake_targets``.
4. *Phase order is preserved*: every visited cycle runs the exact Section 5
   phase sequence (deliver the resources front to back, tick the cores,
   arbitrate front to back), so intra-cycle orderings — which produce the
   paper's synchrony effect — are untouched.

Within a visited cycle the event engine additionally skips the tick of
cores that provably cannot act (``Core.needs_tick``) and the deliver /
arbitrate phases of resources whose horizon lies in the future, which is
what makes the visited cycles themselves cheaper than the oracle's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple, Type

from ..registry import Registry
from .resource import NO_EVENT


class SteppedEngine:
    """The cycle-by-cycle oracle loop (Section 5 cycle structure).

    Args:
        system: the :class:`repro.sim.system.System` to drive.
    """

    name = "stepped"

    def __init__(self, system) -> None:
        self.system = system

    def run(self, observed: List[int], max_cycles: int) -> Tuple[int, bool]:
        """Advance the clock one cycle at a time until every observed core
        finished (or ``max_cycles`` is reached); returns the final cycle and
        whether the run timed out."""
        system = self.system
        resources = system.resources
        cores = system.cores
        pmc = system.pmc
        observed_cores = [cores[core_id] for core_id in observed]

        cycle = system.current_cycle
        timed_out = False
        while True:
            for resource in resources:
                resource.deliver(cycle)
            for core in cores:
                core.tick(cycle)
            for resource in resources:
                resource.arbitrate(cycle)
            pmc.cycles = cycle + 1

            if all(core.is_done for core in observed_cores):
                break
            if cycle >= max_cycles:
                timed_out = True
                break
            cycle += 1

        system.current_cycle = cycle
        return cycle, timed_out


class EventScheduler:
    """The event-driven fast path: jump the clock to the earliest horizon.

    Args:
        system: the :class:`repro.sim.system.System` to drive.
    """

    name = "event"

    def __init__(self, system) -> None:
        self.system = system

    def run(self, observed: List[int], max_cycles: int) -> Tuple[int, bool]:
        """Process only cycles at which some component has an event; returns
        the final cycle and whether the run timed out.

        Cycle-exactness relies on the horizon contract in the module
        docstring: the next visited cycle is the minimum of every
        component's horizon, clamped to ``max_cycles`` so a timed-out run
        stops on exactly the same cycle as the oracle.  The loop drives
        ``system.resources`` purely through the event-port surface — it
        holds no knowledge of which resources the topology built.
        """
        from .core import CoreState

        system = self.system
        resources = system.resources
        cores = system.cores
        pmc = system.pmc
        observed_cores = [cores[core_id] for core_id in observed]
        # Dedicated fast path for the overwhelmingly common single-observed-
        # core case (every methodology and campaign run).
        only_observed = observed_cores[0] if len(observed_cores) == 1 else None

        executing = CoreState.EXECUTING
        ready = CoreState.READY
        stalled = CoreState.STALL_STORE_BUFFER
        done = CoreState.DONE

        cycle = system.current_cycle
        timed_out = False
        while True:
            # Phase 1 — deliveries.  Only resources whose horizon is due can
            # have work finishing now (a cached horizon in the future proves
            # the deliver would be a no-op); each delivering resource
            # publishes the cores it may have woken through wake_targets.
            # The cache is read through its dirty flag rather than the
            # horizon() accessor: this is the engine's innermost loop, and
            # the flag read costs an attribute access where the call costs a
            # frame (the accessor remains the public API).
            woken = None
            for resource in resources:
                if resource._horizon_dirty:
                    horizon = resource._horizon_cache = resource.next_event_cycle(cycle)
                    resource._horizon_dirty = False
                else:
                    horizon = resource._horizon_cache
                if horizon <= cycle:
                    resource.deliver(cycle)
                    for core_id in resource.wake_targets:
                        if woken is None:
                            woken = [cores[core_id]]
                        else:
                            woken.append(cores[core_id])
            # Phase 2 — tick the cores that can act: one finishing its
            # execute-stage occupancy, one ready to start an instruction,
            # one retrying a full store buffer (the retry is a no-op until a
            # delivery frees a slot, but the oracle performs it, so the
            # no-op cost is all we skip), or one a delivery may have woken
            # (which therefore gets the full activity check).
            for core in cores:
                state = core.state
                if state is executing:
                    if cycle >= core._busy_until or (
                        woken is not None
                        and core in woken
                        and core.needs_tick(cycle)
                    ):
                        core.tick(cycle)
                elif state is ready or state is stalled:
                    core.tick(cycle)
                elif woken is not None and core in woken and core.needs_tick(cycle):
                    core.tick(cycle)
            # Phase 3 — arbitration, fused with the horizon fold.  A clean
            # cache with a future horizon proves no grant is possible now
            # (the horizon covers grant opportunities), so only mutated
            # resources — the ticks may just have posted requests — and
            # resources with a due horizon are asked; their own arbitrate()
            # early-outs handle the rest.  Grants mutate only the granting
            # resource (deliveries, which ran in phase 1, are what posts
            # work downstream), so each resource's horizon can be refreshed
            # immediately after its own arbitration.
            horizon = NO_EVENT
            for resource in resources:
                if resource._horizon_dirty or resource._horizon_cache <= cycle:
                    resource.arbitrate(cycle)
                    candidate = resource._horizon_cache = resource.next_event_cycle(cycle)
                    resource._horizon_dirty = False
                else:
                    candidate = resource._horizon_cache
                if candidate < horizon:
                    horizon = candidate

            if only_observed is not None:
                if only_observed.state is done:
                    break
            elif all(core.state is done for core in observed_cores):
                break
            if cycle >= max_cycles:
                timed_out = True
                break

            # Core horizons, folded directly from the execution state to
            # spare a method call per core per visited cycle; the semantics
            # are those of Core.next_event_cycle: executing cores wake at
            # the end of their occupancy, ready cores on the next cycle,
            # everyone else on a delivery already in a resource horizon.
            for core in cores:
                state = core.state
                if state is executing:
                    core_horizon = core._busy_until
                elif state is ready:
                    core_horizon = cycle + 1
                else:
                    continue
                if core_horizon < horizon:
                    horizon = core_horizon
            if horizon <= cycle:
                cycle += 1
            else:
                # Never jump past the cycle budget: the oracle processes
                # max_cycles as its last cycle, and so must we.
                cycle = horizon if horizon <= max_cycles else max_cycles
        pmc.cycles = cycle + 1
        system.current_cycle = cycle
        return cycle, timed_out


# --------------------------------------------------------------------------- #
# Registry-backed factory.
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class EngineEntry:
    """One registered simulation engine."""

    name: str
    cls: Type
    description: str = ""


#: Engine name -> registered entry, in registration order, on the shared
#: :class:`repro.registry.Registry` utility.  ``repro.config`` keeps the
#: built-in tuple :data:`repro.config.ENGINES` for documentation and CLI
#: choices; a tier-1 test pins the two in sync.
ENGINE_REGISTRY: Registry[EngineEntry] = Registry("simulation engine")


def register_engine(name: str, description: str = ""):
    """Class decorator registering a simulation engine under ``name``.

    The class must accept a :class:`repro.sim.system.System` and expose
    ``run(observed, max_cycles) -> (cycle, timed_out)``.
    """

    def decorator(cls: Type) -> Type:
        ENGINE_REGISTRY.register(name, EngineEntry(name=name, cls=cls, description=description))
        return cls

    return decorator


def registered_engines() -> Tuple[str, ...]:
    """Names of every registered engine, in registration order."""
    return ENGINE_REGISTRY.names()


def make_engine(name: str, system):
    """Instantiate the engine called ``name`` for ``system``.

    Accepts any registered engine name (the built-ins mirror
    :data:`repro.config.ENGINES`); anything else raises
    :class:`~repro.errors.ConfigurationError`.
    """
    return ENGINE_REGISTRY.require(name).cls(system)


register_engine("stepped", "cycle-by-cycle oracle loop (reference semantics)")(SteppedEngine)
register_engine(
    "event", "event-driven fast path: jump the clock to the min component horizon"
)(EventScheduler)

# The codegen and replay engines are registered here rather than in their
# own modules: codegen.py and trace.py both sit below this module in the
# import graph (trace.py is imported by bus.py, and codegen.py would need
# a circular import through bus.py to reach the registry), so registering
# from this tail is what keeps the built-in registration order (stepped,
# event, codegen, replay) deterministic for every consumer of the
# registry, mirroring repro.config.ENGINES.
from . import codegen as _codegen  # noqa: E402
from . import trace as _trace  # noqa: E402

register_engine(
    "codegen",
    "generated loop specialised to the topology chain + arbiter set "
    "(falls back to 'event' on unknown registry entries)",
)(_codegen.CodegenEngine)
register_engine(
    "replay",
    "trace replay: capture the core side once per kernel, stream it through "
    "any interconnect (falls back per core on trace-unsafe programs)",
)(_trace.ReplayEngine)
