"""Simulation engines: the stepped oracle loop and the event-driven fast path.

The simulator supports two interchangeable engines, selected through
``ArchConfig.engine`` (or per run via ``System.run(engine=...)``):

* :class:`SteppedEngine` — the reference loop.  It advances the clock one
  cycle at a time and runs the full Section 5 cycle structure (deliver all
  resources, tick the cores, arbitrate all resources) on every cycle.  It is
  deliberately unoptimised: it is the oracle the fast path is validated
  against, and it drives ``System.resources`` generically, so any topology
  of :class:`repro.sim.resource.SharedResource` chains works unchanged.
* :class:`EventScheduler` — the fast path.  After processing a cycle it
  takes the *event horizon* — the minimum over every resource's and core's
  ``next_event_cycle`` (the earliest future cycle at which that component
  can change state on its own) — and jumps the clock directly to it.
  Saturated-bus experiments (the paper's hot path) spend most of their
  cycles with every core stalled on a 9-cycle bus occupancy, so the fast
  path visits a small fraction of the cycles while producing bit-identical
  results.

Engines are registered, not hardwired: the :func:`register_engine` decorator
adds a class to :data:`ENGINE_REGISTRY`, and :func:`make_engine`, the CLI's
``list`` subcommand and ``ArchConfig`` validation all read the registry.

Horizon contract
----------------

Each component exposes ``next_event_cycle(cycle) -> int``, called *after*
the cycle's phases have run (the integer-only contract is documented in
:mod:`repro.sim.resource`; "no self-driven event" is the
:data:`~repro.sim.resource.NO_EVENT` sentinel, never ``float('inf')``):

* ``Bus.next_event_cycle`` — delivery of the in-flight transaction
  (``busy_until``), or the earliest ready/grantable queued request on a free
  bus (the arbiter contributes slot constraints for TDMA through
  ``Arbiter.next_event_cycle``);
* ``MemoryController.next_event_cycle`` — the earliest in-flight DRAM read
  completion; the bank-queued controller of multi-resource topologies adds
  the earliest bank-grant opportunity (free bank with a ready queued
  access, modulo its arbiter's schedule);
* ``Core.next_event_cycle`` — the end of the execute-stage occupancy;
  waiting/stalled/done cores report ``NO_EVENT`` because only a bus or
  memory event (already in the horizon) can wake them.

Invariants that make the jump cycle-exact:

1. *No spontaneous state changes*: between events, every component's state
   is a pure function of the clock, so skipping unvisited cycles cannot
   lose information.
2. *Conservative horizons*: a component may report an earlier cycle than
   its true next event (costing speed, not correctness) but never a later
   one.
3. *Wake-ups are events*: any cycle at which one component can change
   another's state (bus delivery, DRAM completion, bank grant) appears in
   the horizon of the component that drives it.
4. *Phase order is preserved*: every visited cycle runs the exact Section 5
   phase sequence, so intra-cycle orderings (deliver before tick before
   arbitrate) — which produce the paper's synchrony effect — are untouched.

Within a visited cycle the event engine additionally skips the tick of
cores that provably cannot act (``Core.needs_tick``), which is what makes
the visited cycles themselves cheaper than the oracle's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple, Type

from ..errors import ConfigurationError


class SteppedEngine:
    """The cycle-by-cycle oracle loop (Section 5 cycle structure).

    Args:
        system: the :class:`repro.sim.system.System` to drive.
    """

    name = "stepped"

    def __init__(self, system) -> None:
        self.system = system

    def run(self, observed: List[int], max_cycles: int) -> Tuple[int, bool]:
        """Advance the clock one cycle at a time until every observed core
        finished (or ``max_cycles`` is reached); returns the final cycle and
        whether the run timed out."""
        system = self.system
        resources = system.resources
        cores = system.cores
        pmc = system.pmc
        observed_cores = [cores[core_id] for core_id in observed]

        cycle = system.current_cycle
        timed_out = False
        while True:
            for resource in resources:
                resource.deliver(cycle)
            for core in cores:
                core.tick(cycle)
            for resource in resources:
                resource.arbitrate(cycle)
            pmc.cycles = cycle + 1

            if all(core.is_done for core in observed_cores):
                break
            if cycle >= max_cycles:
                timed_out = True
                break
            cycle += 1

        system.current_cycle = cycle
        return cycle, timed_out


class EventScheduler:
    """The event-driven fast path: jump the clock to the earliest horizon.

    Args:
        system: the :class:`repro.sim.system.System` to drive.
    """

    name = "event"

    def __init__(self, system) -> None:
        self.system = system

    def run(self, observed: List[int], max_cycles: int) -> Tuple[int, bool]:
        """Process only cycles at which some component has an event; returns
        the final cycle and whether the run timed out.

        Cycle-exactness relies on the horizon contract in the module
        docstring: the next visited cycle is the minimum of every
        component's ``next_event_cycle``, clamped to ``max_cycles`` so a
        timed-out run stops on exactly the same cycle as the oracle.
        """
        from .core import CoreState

        system = self.system
        bus = system.bus
        memctrl = system.memctrl
        cores = system.cores
        pmc = system.pmc
        observed_cores = [cores[core_id] for core_id in observed]
        # Dedicated fast path for the overwhelmingly common single-observed-
        # core case (every methodology and campaign run).
        only_observed = observed_cores[0] if len(observed_cores) == 1 else None
        # Multi-resource topologies add an arbitrated bank-queue stage to the
        # memory controller; ``None`` on the paper's bus_only platform keeps
        # the hot loop free of the extra phase and horizon scan.
        queued_mem = memctrl if memctrl.has_queue else None

        # Bind hot names to locals and read sibling internals directly: the
        # loop below runs once per *event* cycle but still dominates the
        # simulator's wall-clock, so the usual accessor indirections are
        # deliberately bypassed here (scheduler, bus, core and memctrl are
        # one cohesive package; the accessors remain the public API).
        bus_deliver = bus.deliver
        bus_arbitrate = bus.arbitrate
        bus_horizon = bus.next_event_cycle
        memctrl_deliver = memctrl.deliver
        in_flight = memctrl._in_flight
        executing = CoreState.EXECUTING
        ready = CoreState.READY
        stalled = CoreState.STALL_STORE_BUFFER
        done = CoreState.DONE

        cycle = system.current_cycle
        timed_out = False
        while True:
            completed = None
            if bus._current is not None and cycle >= bus._busy_until:
                completed = bus_deliver(cycle)
            if in_flight and in_flight[0][0] <= cycle:
                memctrl_deliver(cycle)
            # Only self-driven cores can act on their own: one finishing its
            # execute-stage occupancy, one ready to start an instruction, or
            # one retrying a full store buffer (the retry is a no-op until a
            # delivery frees a slot, but the oracle performs it, so the
            # no-op cost is all we skip).  A bus delivery can additionally
            # wake exactly its origin core (load/ifetch data, store-buffer
            # head completion), which therefore gets the full activity check.
            woken = cores[completed.origin_core] if completed is not None else None
            for core in cores:
                state = core.state
                if state is executing:
                    if cycle >= core._busy_until or (
                        core is woken and core.needs_tick(cycle)
                    ):
                        core.tick(cycle)
                elif state is ready or state is stalled:
                    core.tick(cycle)
                elif core is woken and core.needs_tick(cycle):
                    core.tick(cycle)
            if bus._current is None and bus._queued_total:
                bus_arbitrate(cycle)
            if queued_mem is not None and queued_mem._queued_total:
                queued_mem.arbitrate(cycle)

            if only_observed is not None:
                if only_observed.state is done:
                    break
            elif all(core.state is done for core in observed_cores):
                break
            if cycle >= max_cycles:
                timed_out = True
                break

            # Inline horizon minimisation: conceptually
            # ``min(r.next_event_cycle(cycle) for r in system.resources)``
            # folded with the core horizons.  Core states are read directly
            # (rather than via Core.next_event_cycle) to spare four method
            # calls per visited cycle; the semantics are identical:
            # executing cores wake at the end of their occupancy, ready
            # cores on the next cycle, everyone else on a bus or memory
            # event already in the bus/memctrl horizons.
            if bus._current is not None:
                horizon = bus._busy_until
            else:
                horizon = bus_horizon(cycle)
            if in_flight:
                mem_horizon = in_flight[0][0]
                if mem_horizon < horizon:
                    horizon = mem_horizon
            if queued_mem is not None and queued_mem._queued_total:
                grant_horizon = queued_mem.grant_horizon(cycle)
                if grant_horizon < horizon:
                    horizon = grant_horizon
            for core in cores:
                state = core.state
                if state is executing:
                    core_horizon = core._busy_until
                elif state is ready:
                    core_horizon = cycle + 1
                else:
                    continue
                if core_horizon < horizon:
                    horizon = core_horizon
            if horizon <= cycle:
                cycle += 1
            else:
                # Never jump past the cycle budget: the oracle processes
                # max_cycles as its last cycle, and so must we.
                cycle = horizon if horizon <= max_cycles else max_cycles
        pmc.cycles = cycle + 1
        system.current_cycle = cycle
        return cycle, timed_out


# --------------------------------------------------------------------------- #
# Registry-backed factory.
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class EngineEntry:
    """One registered simulation engine."""

    name: str
    cls: Type
    description: str = ""


#: Engine name -> registered entry, in registration order.  ``repro.config``
#: keeps the built-in tuple :data:`repro.config.ENGINES` for documentation
#: and CLI choices; a tier-1 test pins the two in sync.
ENGINE_REGISTRY: Dict[str, EngineEntry] = {}


def register_engine(name: str, description: str = ""):
    """Class decorator registering a simulation engine under ``name``.

    The class must accept a :class:`repro.sim.system.System` and expose
    ``run(observed, max_cycles) -> (cycle, timed_out)``.
    """
    if not name:
        raise ConfigurationError("an engine needs a non-empty registry name")

    def decorator(cls: Type) -> Type:
        if name in ENGINE_REGISTRY:
            raise ConfigurationError(f"simulation engine {name!r} already registered")
        ENGINE_REGISTRY[name] = EngineEntry(name=name, cls=cls, description=description)
        return cls

    return decorator


def registered_engines() -> Tuple[str, ...]:
    """Names of every registered engine, in registration order."""
    return tuple(ENGINE_REGISTRY)


def make_engine(name: str, system):
    """Instantiate the engine called ``name`` for ``system``.

    Accepts any registered engine name (the built-ins mirror
    :data:`repro.config.ENGINES`); anything else raises
    :class:`~repro.errors.ConfigurationError`.
    """
    entry = ENGINE_REGISTRY.get(name)
    if entry is None:
        raise ConfigurationError(
            f"unknown simulation engine {name!r}; "
            f"registered: {list(ENGINE_REGISTRY)}"
        )
    return entry.cls(system)


register_engine("stepped", "cycle-by-cycle oracle loop (reference semantics)")(
    SteppedEngine
)
register_engine(
    "event", "event-driven fast path: jump the clock to the min component horizon"
)(EventScheduler)
