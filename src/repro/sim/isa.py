"""Minimal instruction-set and program model executed by the simulated cores.

The paper's kernels (rsk, rsk-nop and the EEMBC-like workloads) only need a
handful of instruction kinds:

* :class:`Load` — reads one word; may miss in the DL1 and generate a bus
  request to the shared L2.
* :class:`Store` — write-through store; retires into the store buffer and
  generates a bus request asynchronously.
* :class:`Nop` — the low-latency filler instruction used by ``rsk-nop`` to
  stretch the injection time between bus requests.
* :class:`Alu` — a generic single-register operation with a configurable
  latency, used to model loop-control overhead and the compute phases of the
  synthetic workloads.

A :class:`Program` is a loop body (a finite sequence of instructions with
consecutive program counters) executed for a given number of iterations, or
forever (contender kernels must never finish before the software under
analysis, Section 3.1 of the paper).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence, Set, Tuple

from ..errors import ProgramError

#: Size of one encoded instruction in bytes (SPARC V8 instructions are 4 bytes).
INSTRUCTION_BYTES = 4


@dataclass(frozen=True)
class Instruction:
    """Base class for all instructions.

    Concrete instructions are immutable so a single loop-body object can be
    reused across millions of iterations without copying.
    """

    @property
    def is_memory(self) -> bool:
        """True if the instruction reads or writes data memory."""
        return False

    @property
    def mnemonic(self) -> str:
        """Short human-readable name used in traces and reports."""
        return type(self).__name__.lower()


@dataclass(frozen=True)
class Nop(Instruction):
    """A no-operation instruction; its latency is taken from the architecture."""


@dataclass(frozen=True)
class Alu(Instruction):
    """A register-to-register operation with an explicit latency in cycles."""

    latency: int = 1

    def __post_init__(self) -> None:
        if self.latency < 1:
            raise ProgramError(f"ALU latency must be >= 1, got {self.latency}")


@dataclass(frozen=True)
class Load(Instruction):
    """A load from ``addr``; the unit of access is one word inside a line."""

    addr: int

    def __post_init__(self) -> None:
        if self.addr < 0:
            raise ProgramError(f"load address must be non-negative, got {self.addr}")

    @property
    def is_memory(self) -> bool:
        return True


@dataclass(frozen=True)
class Store(Instruction):
    """A store to ``addr``; write-through, completes into the store buffer."""

    addr: int

    def __post_init__(self) -> None:
        if self.addr < 0:
            raise ProgramError(f"store address must be non-negative, got {self.addr}")

    @property
    def is_memory(self) -> bool:
        return True


@dataclass(frozen=True)
class Program:
    """A loop of instructions executed by one core.

    Attributes:
        name: label used in traces, reports and error messages.
        body: the loop body; every element is an :class:`Instruction`.
        iterations: number of times the body is executed, or ``None`` to run
            forever (used for contender kernels which must outlive the
            software under analysis).
        base_pc: program counter of the first body instruction; bodies of
            different programs should not overlap so instruction-cache
            behaviour stays realistic.
        prologue: instructions executed once before the loop starts (for
            example cache-warming accesses).
    """

    name: str
    body: Tuple[Instruction, ...]
    iterations: Optional[int] = None
    base_pc: int = 0x4000_0000
    prologue: Tuple[Instruction, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.body:
            raise ProgramError(f"program {self.name!r} has an empty loop body")
        if self.iterations is not None and self.iterations < 0:
            raise ProgramError(
                f"program {self.name!r} has negative iteration count {self.iterations}"
            )
        if self.base_pc < 0 or self.base_pc % INSTRUCTION_BYTES != 0:
            raise ProgramError(
                f"program {self.name!r} base_pc must be a non-negative multiple of "
                f"{INSTRUCTION_BYTES}"
            )
        for instr in tuple(self.prologue) + tuple(self.body):
            if not isinstance(instr, Instruction):
                raise ProgramError(
                    f"program {self.name!r} contains a non-instruction object: {instr!r}"
                )

    # ------------------------------------------------------------------ #
    # Introspection helpers.
    # ------------------------------------------------------------------ #
    @property
    def is_infinite(self) -> bool:
        """True if the program never terminates on its own."""
        return self.iterations is None

    @property
    def body_length(self) -> int:
        """Number of instructions in the loop body."""
        return len(self.body)

    @property
    def total_instructions(self) -> Optional[int]:
        """Total dynamic instruction count, or ``None`` for infinite programs."""
        if self.iterations is None:
            return None
        return len(self.prologue) + self.iterations * len(self.body)

    def count_memory_instructions(self) -> Optional[int]:
        """Dynamic number of loads and stores, or ``None`` for infinite programs."""
        if self.iterations is None:
            return None
        per_body = sum(1 for instr in self.body if instr.is_memory)
        in_prologue = sum(1 for instr in self.prologue if instr.is_memory)
        return in_prologue + self.iterations * per_body

    def data_lines(self, line_size: int) -> Set[int]:
        """Return the set of data line addresses the static program touches."""
        lines: Set[int] = set()
        for instr in tuple(self.prologue) + tuple(self.body):
            if isinstance(instr, (Load, Store)):
                lines.add(instr.addr - (instr.addr % line_size))
        return lines

    def code_lines(self, line_size: int) -> Set[int]:
        """Return the set of instruction line addresses occupied by the program."""
        lines: Set[int] = set()
        pc = self.base_pc
        for _ in range(len(self.prologue) + len(self.body)):
            lines.add(pc - (pc % line_size))
            pc += INSTRUCTION_BYTES
        return lines

    # ------------------------------------------------------------------ #
    # Execution stream.
    # ------------------------------------------------------------------ #
    def instruction_stream(self) -> Iterator[Tuple[int, Instruction]]:
        """Yield ``(pc, instruction)`` pairs in program order.

        The prologue occupies the program counters immediately before the
        loop body so its lines land in the instruction cache naturally.  The
        loop body reuses the same program counters on every iteration, which
        lets the instruction cache model capture the fact that small kernels
        only take cold misses.
        """
        prologue_pc = self.base_pc
        for index, instr in enumerate(self.prologue):
            yield prologue_pc + index * INSTRUCTION_BYTES, instr

        body_base = self.base_pc + len(self.prologue) * INSTRUCTION_BYTES
        body_pcs = tuple(body_base + index * INSTRUCTION_BYTES for index in range(len(self.body)))
        counter = (range(self.iterations) if self.iterations is not None else itertools.count())
        for _ in counter:
            for pc, instr in zip(body_pcs, self.body):
                yield pc, instr

    def with_iterations(self, iterations: Optional[int]) -> "Program":
        """Return a copy of the program with a different iteration count."""
        return Program(
            name=self.name,
            body=self.body,
            iterations=iterations,
            base_pc=self.base_pc,
            prologue=self.prologue,
        )

    def summary(self) -> str:
        """One-line description used by reports."""
        kinds = {}
        for instr in self.body:
            kinds[instr.mnemonic] = kinds.get(instr.mnemonic, 0) + 1
        mix = ", ".join(f"{count}x {name}" for name, count in sorted(kinds.items()))
        reps = "inf" if self.iterations is None else str(self.iterations)
        return f"{self.name}: body[{mix}] x {reps}"


def concatenate_bodies(*parts: Sequence[Instruction]) -> Tuple[Instruction, ...]:
    """Concatenate several instruction sequences into one loop body tuple."""
    body = []
    for part in parts:
        body.extend(part)
    return tuple(body)
