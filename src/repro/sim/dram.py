"""Banked open-page DRAM timing model (DRAMsim2 substitute).

The paper attaches a DDR2-667 DIMM (modelled with DRAMsim2) behind the
on-chip memory controller.  DRAMsim2 is not available here, so this module
provides the closest synthetic equivalent that exercises the same code path:
a bank-aware open-page model in which

* an access to the currently open row of a bank costs
  ``t_cas + t_burst + controller_overhead`` cycles (a *row hit*);
* an access to a different row costs an additional precharge plus activate,
  ``t_rp + t_rcd`` cycles (a *row conflict*);
* an access to a bank with no open row pays only the activate,
  ``t_rcd`` cycles on top of the row-hit cost (a *row empty* access);
* different banks operate independently, so requests to distinct banks can
  overlap, while requests to the same bank serialise.

All latencies are expressed in core cycles (the configuration already folds
in the 200MHz core / DDR2-667 clock ratio), which keeps the whole simulator
on a single clock domain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..config import DramConfig
from ..errors import SimulationError
from .resource import NO_EVENT


@dataclass
class DramStats:
    """Counters describing the access mix seen by the DRAM."""

    reads: int = 0
    writes: int = 0
    row_hits: int = 0
    row_empties: int = 0
    row_conflicts: int = 0

    @property
    def accesses(self) -> int:
        """Total number of DRAM accesses."""
        return self.reads + self.writes

    @property
    def row_hit_rate(self) -> float:
        """Fraction of accesses that hit the open row."""
        if self.accesses == 0:
            return 0.0
        return self.row_hits / self.accesses


@dataclass
class _Bank:
    """State of a single DRAM bank."""

    open_row: Optional[int] = None
    busy_until: int = 0


@dataclass
class DramAccess:
    """A scheduled DRAM access and its completion time."""

    addr: int
    is_write: bool
    issue_cycle: int
    complete_cycle: int
    bank: int
    row: int
    category: str


class Dram:
    """The DRAM device: row-buffer state and per-bank timing.

    Args:
        config: DRAM timing parameters.
    """

    def __init__(self, config: DramConfig) -> None:
        self.config = config
        self._banks: List[_Bank] = [_Bank() for _ in range(config.num_banks)]
        self.stats = DramStats()
        self._row_shift = config.row_size_bytes.bit_length() - 1
        self._bank_mask = config.num_banks - 1

    # ------------------------------------------------------------------ #
    # Address mapping.
    # ------------------------------------------------------------------ #
    def bank_of(self, addr: int) -> int:
        """Bank index for ``addr`` (row-interleaved mapping)."""
        return (addr >> self._row_shift) & self._bank_mask

    def row_of(self, addr: int) -> int:
        """Row index for ``addr`` within its bank."""
        return addr >> self._row_shift >> self._bank_mask.bit_length()

    # ------------------------------------------------------------------ #
    # Access scheduling.
    # ------------------------------------------------------------------ #
    def access(self, addr: int, cycle: int, is_write: bool = False) -> DramAccess:
        """Schedule one access starting no earlier than ``cycle``.

        Returns a :class:`DramAccess` whose ``complete_cycle`` tells the
        memory controller when the data (or write acknowledgement) is
        available.  The bank's row-buffer state and busy window are updated.
        """
        if cycle < 0:
            raise SimulationError("DRAM access scheduled at a negative cycle")
        bank_index = self.bank_of(addr)
        row = self.row_of(addr)
        bank = self._banks[bank_index]
        start = max(cycle, bank.busy_until)
        cfg = self.config
        if bank.open_row == row:
            latency = cfg.row_hit_latency
            category = "hit"
            self.stats.row_hits += 1
        elif bank.open_row is None:
            latency = cfg.t_rcd + cfg.row_hit_latency
            category = "empty"
            self.stats.row_empties += 1
        else:
            latency = cfg.row_miss_latency
            category = "conflict"
            self.stats.row_conflicts += 1
        complete = start + latency
        bank.open_row = row
        bank.busy_until = complete
        if is_write:
            self.stats.writes += 1
        else:
            self.stats.reads += 1
        return DramAccess(
            addr=addr,
            is_write=is_write,
            issue_cycle=start,
            complete_cycle=complete,
            bank=bank_index,
            row=row,
            category=category,
        )

    def next_event_cycle(self, cycle: int) -> int:
        """Earliest future cycle at which any busy bank becomes free again.

        The DRAM is pull-based — accesses are scheduled synchronously by the
        memory controller, and read completions are tracked by the
        controller's in-flight heap — so this horizon is *not* needed for
        cycle-exact event scheduling.  It is exposed for introspection and
        symmetry with the other components' ``next_event_cycle`` contract:
        :data:`~repro.sim.resource.NO_EVENT` means every bank is idle.
        """
        horizon = NO_EVENT
        for bank in self._banks:
            if bank.busy_until > cycle and bank.busy_until < horizon:
                horizon = bank.busy_until
        return horizon

    def bank_busy_until(self, bank_index: int) -> int:
        """Cycle at which ``bank_index`` becomes free."""
        if not 0 <= bank_index < self.config.num_banks:
            raise SimulationError(f"invalid bank index {bank_index}")
        return self._banks[bank_index].busy_until

    def open_rows(self) -> Dict[int, Optional[int]]:
        """Mapping bank index -> currently open row (``None`` if closed)."""
        return {index: bank.open_row for index, bank in enumerate(self._banks)}

    def reset(self) -> None:
        """Close every row and clear all busy windows (statistics preserved)."""
        for bank in self._banks:
            bank.open_row = None
            bank.busy_until = 0
