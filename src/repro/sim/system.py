"""Multicore system assembly and simulation loop.

:class:`System` wires together the cores, the shared bus, the
way-partitioned L2, the memory subsystem selected by ``config.topology``
(:mod:`repro.sim.topology`) and the measurement infrastructure (PMCs and the
request trace), and exposes the platform's shared-resource chain
(``System.resources``) to the simulation engines.

Cycle structure (see DESIGN.md, Section 5) — deliver every resource front to
back, tick the cores, arbitrate every resource front to back:

1. the bus delivers a transaction whose occupancy ends in this cycle;
2. the memory controller delivers DRAM reads that completed, posting their
   split-transaction responses on the dedicated response port;
3. every core ticks: it may retire instructions, post demand requests that
   are ready in this very cycle, and drain its store buffer;
4. the bus arbitrates and, if free, grants one pending request;
5. on multi-resource topologies, each free DRAM bank's queue arbitrates and
   starts one pending access (a no-op on the paper's ``bus_only`` platform).

The loop itself lives in :mod:`repro.sim.scheduler` and comes in two
cycle-exact flavours selected by ``config.engine``: the ``stepped`` oracle
that visits every cycle, and the ``event`` fast path that jumps the clock to
the earliest component horizon (bus delivery, DRAM completion, execute-stage
end).  Saturated-bus experiments speed up by roughly the bus occupancy
without changing any observable timing; a property test cross-checks the two
engines instruction for instruction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import ArchConfig
from ..errors import ConfigurationError, SimulationError
from .arbiter import Arbiter
from .bus import BusRequest
from .core import Core, CoreState
from .isa import Program
from .l2 import PartitionedL2
from .memctrl import MemCtrlStats, PendingRead
from .pmc import PerformanceCounters
from .scheduler import make_engine
from .topology import TopologyHooks, build_topology
from .trace import RequestRecord, TraceRecorder

#: Default safety bound on simulated cycles; long experiments may raise it.
DEFAULT_MAX_CYCLES = 200_000_000


@dataclass
class SystemResult:
    """Outcome of one simulation run.

    Attributes:
        cycles: total number of simulated cycles (last processed cycle + 1).
        done_cycles: per-core retirement cycle of the last instruction, for
            the cores that finished (``None`` for infinite/ idle cores).
        instructions: per-core retired instruction counts.
        pmc: the performance counter block (bus utilisation, request counts).
        memctrl_stats: the memory controller's counter surface (queue waits,
            read latencies) — the per-resource PMC section the measured-bound
            pipeline reads the ``memory`` stage's worst case from.
        trace: the request trace, if recording was enabled.
        timed_out: True when the run stopped at ``max_cycles`` instead of at
            program completion.
    """

    cycles: int
    done_cycles: List[Optional[int]]
    instructions: List[int]
    pmc: PerformanceCounters
    memctrl_stats: Optional[MemCtrlStats] = None
    trace: Optional[TraceRecorder] = None
    timed_out: bool = False

    def execution_time(self, core_id: int) -> int:
        """Execution time (cycles) of ``core_id``; raises if it never finished."""
        done = self.done_cycles[core_id]
        if done is None:
            raise SimulationError(f"core {core_id} did not finish; execution time undefined")
        return done


class System:
    """A simulated multicore platform running one program per core.

    Args:
        config: the architecture to model.
        programs: one entry per core; ``None`` leaves the core idle.
            Fewer entries than cores are padded with idle cores.
        trace: enable request-level tracing (needed for Figure 6 analyses).
        preload_l2: install every program's data lines in the owning core's
            L2 partition before starting, removing cold-miss noise (the paper
            measures warmed-up steady state).
        preload_il1: install every program's code lines in the owning core's
            IL1 before starting.
        preload_dl1: install data lines also in the DL1 (rarely wanted — the
            rsk kernels rely on DL1 misses — but useful for cache-resident
            synthetic workloads and tests).
        arbiter: optional externally constructed arbiter for the request
            channel (overrides the policy named in ``config.bus``); must
            match that channel's port count — ``num_cores + 1`` on
            shared-bus topologies (the extra port carries responses),
            ``num_cores`` on ``split_bus``.
    """

    def __init__(
        self,
        config: ArchConfig,
        programs: Sequence[Optional[Program]],
        trace: bool = False,
        preload_l2: bool = False,
        preload_il1: bool = False,
        preload_dl1: bool = False,
        arbiter: Optional[Arbiter] = None,
    ) -> None:
        if len(programs) > config.num_cores:
            raise ConfigurationError(
                f"{len(programs)} programs supplied for {config.num_cores} cores"
            )
        self.config = config
        padded: List[Optional[Program]] = list(programs) + [None] * (
            config.num_cores - len(programs)
        )
        self.programs = padded

        self.pmc = PerformanceCounters(num_cores=config.num_cores)
        self.trace = TraceRecorder(enabled=trace)
        # Grant-time service occupancies, resolved once: these are derived
        # config properties and _service_request runs once per transaction.
        self._svc_response = config.bus_service_response
        self._svc_store = config.bus_service_store
        self._svc_l2_hit = config.bus_service_l2_hit
        self._svc_miss = config.bus_service_miss_request
        #: Maps a response request (by identity) to the demand kind it
        #: resolves and the original request's trace record, if any.
        self._response_meta: Dict[int, Tuple[str, Optional[RequestRecord]]] = {}
        self.l2 = PartitionedL2(config)

        chain = build_topology(
            config,
            TopologyHooks(
                service_callback=self._service_request,
                read_callback=self._on_dram_read_done,
                trace=self.trace,
                pmc=self.pmc,
                arbiter=arbiter,
            ),
        )
        #: The channel cores post demand requests on (the single shared bus
        #: on the paper's platform, the request channel on ``split_bus``).
        self.bus = chain.request_bus
        #: The channel memory responses return on (``bus`` itself unless the
        #: topology splits the transaction phases).
        self.response_bus = chain.response_bus
        self.memctrl = chain.memctrl
        self._response_port_of = chain.response_port_of
        #: Port index carrying responses on shared-bus topologies (kept for
        #: introspection; ``split_bus`` returns data on the core's own
        #: response-channel port instead).
        self.response_port = config.num_cores
        #: The platform's shared-resource chain, in phase order (see
        #: :mod:`repro.sim.resource`): both engines deliver these front to
        #: back, tick the cores, then arbitrate front to back, and the event
        #: horizon is the minimum over the chain.  Which resources exist is
        #: decided by ``config.topology`` (:mod:`repro.sim.topology`).
        self.resources = chain.resources

        self.cores: List[Core] = [
            Core(
                core_id=index,
                config=config,
                program=padded[index],
                issue_request=self._issue_demand,
                pmc=self.pmc,
            )
            for index in range(config.num_cores)
        ]

        self._preload(preload_l2, preload_il1, preload_dl1)
        #: Preload flags, recorded for the replay engine: the IL1/DL1 flags
        #: are core-side (they change the captured miss sequence and join
        #: the trace key); the L2 flag is system-side (the L2 stays live
        #: during replay) and is kept for introspection only.
        self.preload_l2 = preload_l2
        self.preload_il1 = preload_il1
        self.preload_dl1 = preload_dl1
        self.current_cycle = 0

    # ------------------------------------------------------------------ #
    # Cache preloading (warm-up substitute).
    # ------------------------------------------------------------------ #
    def _preload(self, preload_l2: bool, preload_il1: bool, preload_dl1: bool) -> None:
        line = self.config.line_size
        for core_id, program in enumerate(self.programs):
            if program is None:
                continue
            if preload_l2:
                self.l2.preload(core_id, sorted(program.data_lines(line)))
            if preload_il1:
                for addr in sorted(program.code_lines(line)):
                    self.cores[core_id].il1.fill(addr)
            if preload_dl1:
                for addr in sorted(program.data_lines(line)):
                    self.cores[core_id].dl1.fill(addr)

    # ------------------------------------------------------------------ #
    # Bus-side callbacks.
    # ------------------------------------------------------------------ #
    def _issue_demand(self, core_id: int, kind: str, addr: int, ready_cycle: int) -> None:
        """Post a demand request (load / ifetch / store drain) for ``core_id``."""
        self.bus.post(
            BusRequest(core_id, kind, addr, ready_cycle, core_id, self._complete_demand)
        )

    def _service_request(self, request: BusRequest, cycle: int) -> int:
        """Grant-time callback: perform the L2 lookup and return the occupancy."""
        kind = request.kind
        if kind == "load" or kind == "ifetch":
            hit = self.l2.lookup(request.origin_core, request.addr, is_write=False)
            return self._svc_l2_hit if hit else self._svc_miss
        if kind == "response":
            return self._svc_response
        if kind == "store":
            self.l2.lookup(request.origin_core, request.addr, is_write=True)
            return self._svc_store
        raise SimulationError(f"unknown bus request kind {kind!r}")

    def _complete_demand(self, request: BusRequest, cycle: int) -> None:
        """Completion callback for demand requests posted by cores."""
        kind = request.kind
        core = self.cores[request.origin_core]
        if kind == "load" or kind == "ifetch":
            # _deliver_line inlined: this is the per-request hot path.
            if self.l2.contains(request.addr):
                if kind == "ifetch":
                    core.on_instruction_line(request.addr, cycle)
                else:
                    core.on_data_line(request.addr, cycle)
            else:
                self.pmc.dram_accesses += 1
                self.memctrl.enqueue_read(
                    request.origin_core,
                    request.addr,
                    cycle,
                    kind=kind,
                    record=request.record,
                )
            return
        if kind == "store":
            core.on_store_drained(cycle)
            if not self.l2.contains(request.addr):
                # Write-through, no-allocate: the write continues to memory.
                self.memctrl.enqueue_write(
                    request.addr,
                    cycle,
                    core_id=request.origin_core,
                    record=request.record,
                )
            return
        raise SimulationError(f"unexpected completion for kind {request.kind!r}")

    def _on_dram_read_done(self, pending: PendingRead, cycle: int) -> None:
        """A DRAM read finished: fill the L2 and post the response transfer."""
        self.l2.fill(pending.core_id, pending.addr)
        response = BusRequest(
            port=self._response_port_of(pending.core_id),
            kind="response",
            addr=pending.addr,
            ready_cycle=cycle,
            origin_core=pending.core_id,
            on_complete=self._complete_response,
        )
        # Remember what the response resolves (and the original request's
        # trace record) so completion can route it and stamp the
        # response-phase timing into the end-to-end record.
        self._response_meta[id(response)] = (pending.kind, pending.record)
        if pending.record is not None:
            pending.record.response_ready_cycle = cycle
        self.response_bus.post(response)

    def _complete_response(self, request: BusRequest, cycle: int) -> None:
        """The response transfer of an L2 miss reached the requesting core."""
        kind, origin_record = self._response_meta.pop(id(request), ("load", None))
        if origin_record is not None:
            origin_record.response_grant_cycle = request.grant_cycle
            origin_record.response_complete_cycle = cycle
        core = self.cores[request.origin_core]
        self._deliver_line(core, kind, request.addr, cycle)

    def _deliver_line(self, core: Core, kind: str, addr: int, cycle: int) -> None:
        if kind == "ifetch":
            core.on_instruction_line(addr, cycle)
        else:
            core.on_data_line(addr, cycle)

    # ------------------------------------------------------------------ #
    # Simulation loop.
    # ------------------------------------------------------------------ #
    def run(
        self,
        observed_cores: Optional[Sequence[int]] = None,
        max_cycles: int = DEFAULT_MAX_CYCLES,
        skip_ahead: Optional[bool] = None,
        engine: Optional[str] = None,
    ) -> SystemResult:
        """Simulate until every observed core finished its program.

        Args:
            observed_cores: cores whose completion terminates the run; by
                default, every core with a finite program.  Contender cores
                running infinite kernels keep executing until then.
            max_cycles: safety bound; the run stops (with ``timed_out=True``)
                if it is reached.
            skip_ahead: legacy engine switch kept for backwards
                compatibility — ``True`` selects the event engine, ``False``
                the stepped oracle.  Prefer ``engine``.
            engine: ``"stepped"``, ``"event"``, ``"codegen"`` or
                ``"replay"``; ``None`` uses ``config.engine``.  Every
                engine is cycle-exact (see :mod:`repro.sim.scheduler`,
                :mod:`repro.sim.codegen` and :mod:`repro.sim.trace`), so
                this only changes speed.
        """
        if observed_cores is None:
            observed_cores = [
                index
                for index, program in enumerate(self.programs)
                if program is not None and not program.is_infinite
            ]
        observed = list(observed_cores)
        for core_id in observed:
            if not 0 <= core_id < self.config.num_cores:
                raise ConfigurationError(f"observed core {core_id} does not exist")
            if self.programs[core_id] is None:
                raise ConfigurationError(f"observed core {core_id} has no program")
            if self.programs[core_id].is_infinite:
                raise ConfigurationError(
                    f"observed core {core_id} runs an infinite program and never finishes"
                )
        if not observed:
            raise ConfigurationError("no observed cores: the run would never terminate")

        if engine is None:
            if skip_ahead is None:
                engine = self.config.engine
            else:
                engine = "event" if skip_ahead else "stepped"
        elif skip_ahead is not None:
            raise ConfigurationError("pass either engine= or the legacy skip_ahead=, not both")
        cycle, timed_out = make_engine(engine, self).run(observed, max_cycles)
        return SystemResult(
            cycles=cycle + 1,
            done_cycles=[core.done_cycle for core in self.cores],
            instructions=[core.instructions_retired for core in self.cores],
            pmc=self.pmc,
            memctrl_stats=self.memctrl.stats,
            trace=self.trace if self.trace.enabled else None,
            timed_out=timed_out,
        )

    # ------------------------------------------------------------------ #
    # Introspection helpers used by the methodology layer.
    # ------------------------------------------------------------------ #
    def core_state(self, core_id: int) -> CoreState:
        """Current execution state of ``core_id``."""
        return self.cores[core_id].state

    def describe(self) -> Dict[str, object]:
        """Short description of the platform and the mapped programs."""
        return {
            "config": self.config.describe(),
            "programs": [
                program.summary() if program is not None else "idle"
                for program in self.programs
            ],
        }
