"""Memory controllers between the shared L2 and the DRAM.

L2 load misses and write-through traffic that misses the L2 are handed to the
memory controller.  Reads are tracked until their DRAM access completes and a
completion callback fires (the system then posts the split-transaction
response on the bus); writes are fire-and-forget from the core's point of
view but still occupy the target DRAM bank, so heavy write traffic delays
subsequent reads, as on the real platform.

Two controllers implement the :class:`repro.sim.resource.SharedResource`
protocol:

* :class:`MemoryController` — the paper's platform (topology ``bus_only``):
  an access is scheduled on its DRAM bank the moment it arrives, so the only
  queueing is the bank's busy window (implicit FIFO by arrival order).  Its
  ``arbitrate`` phase is a no-op; it is not a *visible* contention point.
* :class:`BankQueuedMemoryController` — topology ``bus_bank_queues``: every
  arriving access first enters a per-bank, per-port queue, and a per-bank
  :class:`~repro.sim.arbiter.Arbiter` grants one queued request when its
  bank is free.  The memory controller becomes a second first-class
  contention point behind the bus, with its own arbitration policy, PMC
  surface (queue-wait statistics) and event horizon.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, List, Optional, Tuple

from ..config import DramConfig
from ..errors import ConfigurationError, SimulationError
from .arbiter import create_arbiter
from .dram import Dram
from .resource import NO_EVENT, EventPort
from .trace import RequestRecord

#: Completion callback signature: (pending_read, cycle) -> None.
ReadCallback = Callable[["PendingRead", int], None]


@dataclass
class PendingRead:
    """A read request travelling through the memory controller.

    ``record`` carries the originating bus transaction's trace record, if
    tracing is on: the controller stamps its memory-stage timing
    (enqueue/grant/DRAM completion) into it, and the system later adds the
    response-channel timing, which is what the per-resource latency
    decomposition of :mod:`repro.analysis.contention` reads.
    """

    core_id: int
    addr: int
    enqueue_cycle: int
    complete_cycle: int = -1
    kind: str = "load"
    record: Optional[RequestRecord] = None


@dataclass
class MemCtrlStats:
    """Counters for the memory controller (its PMC surface).

    The queue counters stay zero on the plain controller — only the
    bank-queued controller makes requests wait before their DRAM access.
    """

    reads: int = 0
    writes: int = 0
    total_read_latency: int = 0
    queue_grants: int = 0
    total_queue_wait: int = 0
    max_queue_wait: int = 0

    @property
    def average_read_latency(self) -> float:
        """Mean cycles between enqueue and completion of reads."""
        if self.reads == 0:
            return 0.0
        return self.total_read_latency / self.reads

    @property
    def average_queue_wait(self) -> float:
        """Mean cycles a granted access waited in its bank queue."""
        if self.queue_grants == 0:
            return 0.0
        return self.total_queue_wait / self.queue_grants

    def as_dict(self) -> dict:
        """Flat dictionary view (the memory stage's PMC section, as read by
        the measured-bound pipeline and embedded in reports)."""
        return {
            "reads": self.reads,
            "writes": self.writes,
            "total_read_latency": self.total_read_latency,
            "queue_grants": self.queue_grants,
            "total_queue_wait": self.total_queue_wait,
            "max_queue_wait": self.max_queue_wait,
        }


class MemoryController(EventPort):
    """FIFO memory controller with bank-aware DRAM timing.

    Args:
        dram_config: DRAM timing parameters.
        read_callback: invoked when a read's data is available; the system
            uses it to post the response transfer on the bus.
    """

    #: SharedResource protocol surface (see :mod:`repro.sim.resource`).
    resource_name = "memctrl"

    def __init__(
        self, dram_config: DramConfig, read_callback: Optional[ReadCallback] = None
    ) -> None:
        self.dram = Dram(dram_config)
        self.read_callback = read_callback
        self.stats = MemCtrlStats()
        # Min-heap of (complete_cycle, sequence, PendingRead) awaiting delivery.
        self._in_flight: List[Tuple[int, int, PendingRead]] = []
        self._sequence = 0
        self._init_event_port()

    # ------------------------------------------------------------------ #
    # Request entry points (called by the memory subsystem).
    # ------------------------------------------------------------------ #
    def enqueue_read(
        self,
        core_id: int,
        addr: int,
        cycle: int,
        kind: str = "load",
        record: Optional[RequestRecord] = None,
    ) -> PendingRead:
        """Schedule a read; its completion fires ``read_callback`` later."""
        access = self.dram.access(addr, cycle, is_write=False)
        pending = PendingRead(
            core_id=core_id,
            addr=addr,
            enqueue_cycle=cycle,
            complete_cycle=access.complete_cycle,
            kind=kind,
            record=record,
        )
        if record is not None:
            # Arrival scheduling: the "grant" is the DRAM issue (the bank's
            # implicit FIFO may still delay it past the enqueue cycle).
            record.mem_ready_cycle = cycle
            record.mem_grant_cycle = access.issue_cycle
            record.mem_complete_cycle = access.complete_cycle
        self.stats.reads += 1
        self.stats.total_read_latency += access.complete_cycle - cycle
        heapq.heappush(self._in_flight, (access.complete_cycle, self._sequence, pending))
        self._sequence += 1
        self._horizon_dirty = True
        return pending

    def enqueue_write(
        self,
        addr: int,
        cycle: int,
        core_id: int = 0,
        record: Optional[RequestRecord] = None,
    ) -> int:
        """Schedule a write; returns its completion cycle (no callback fires).

        ``core_id`` identifies the originating core; the plain controller
        ignores it, the bank-queued controller uses it as the queue port.
        """
        del core_id
        access = self.dram.access(addr, cycle, is_write=True)
        if record is not None:
            record.mem_ready_cycle = cycle
            record.mem_grant_cycle = access.issue_cycle
            record.mem_complete_cycle = access.complete_cycle
        self.stats.writes += 1
        return access.complete_cycle

    # ------------------------------------------------------------------ #
    # Per-cycle phases (SharedResource protocol).
    # ------------------------------------------------------------------ #
    def deliver(self, cycle: int) -> None:
        """Deliver every read whose DRAM access has completed by ``cycle``.

        Deliveries hand the data to the system's read callback (which posts
        the response transfer on a bus channel); no core is woken directly,
        so ``wake_targets`` stays empty.
        """
        while self._in_flight and self._in_flight[0][0] <= cycle:
            _, _, pending = heapq.heappop(self._in_flight)
            self._horizon_dirty = True
            if self.read_callback is None:
                raise SimulationError(
                    "memory controller completed a read but no callback is attached"
                )
            self.read_callback(pending, cycle)

    #: Historical name of the delivery phase, kept as the primary spelling
    #: in older call sites and tests.
    tick = deliver

    def arbitrate(self, cycle: int) -> None:
        """Grant queued accesses to free banks; a no-op without bank queues."""
        del cycle

    def next_event_cycle(self, cycle: int) -> int:
        """Earliest future cycle at which a read completion must be delivered.

        This is the controller's horizon contribution to the event-driven
        scheduler (see :mod:`repro.sim.scheduler`).  Only read completions
        are events here: writes are fire-and-forget and bank release times
        matter only when the *next* access arrives, which is always triggered
        by a bus delivery the scheduler already visits.  (The bank-queued
        subclass additionally reports grant opportunities.)
        """
        del cycle
        if not self._in_flight:
            return NO_EVENT
        return self._in_flight[0][0]

    #: Backwards-compatible alias for the pre-scheduler skip-ahead API.
    next_activity = next_event_cycle

    @property
    def outstanding_reads(self) -> int:
        """Number of reads still waiting for DRAM data."""
        return len(self._in_flight)

    def reset(self) -> None:
        """Drop in-flight requests and reset the DRAM row state."""
        self._in_flight.clear()
        self.dram.reset()
        self._init_event_port()


class _QueuedAccess:
    """One access waiting in a bank queue (``__slots__``: queues run hot)."""

    __slots__ = ("core_id", "addr", "ready_cycle", "is_write", "kind", "pending", "record")

    def __init__(
        self,
        core_id: int,
        addr: int,
        ready_cycle: int,
        is_write: bool,
        kind: str,
        pending: Optional[PendingRead] = None,
        record: Optional[RequestRecord] = None,
    ) -> None:
        self.core_id = core_id
        self.addr = addr
        self.ready_cycle = ready_cycle
        self.is_write = is_write
        self.kind = kind
        self.pending = pending
        self.record = record


class BankQueuedMemoryController(MemoryController):
    """Memory controller whose per-bank queues are arbitrated contention points.

    Every arriving access (read or write-through) enters the queue of its
    DRAM bank on the port of its originating core.  Once per cycle — in the
    arbitrate phase, after the bus — each *free* bank asks its own arbiter to
    pick among the ports with a pending access and starts the winner's DRAM
    access.  With FIFO bank arbitration this reproduces the plain
    controller's timing exactly (arrival order is service order, ≤ one
    memory-bound completion per cycle feeds the queues); round-robin, fixed
    priority or TDMA bank policies reorder the service and make the memory
    stage a genuinely different contention point.

    Args:
        dram_config: DRAM timing parameters.
        read_callback: as for :class:`MemoryController`.
        num_ports: queue ports per bank (one per core).
        arbitration: registered arbiter policy for every bank queue.
        tdma_slot: slot length when ``arbitration`` is ``"tdma"``.
    """

    resource_name = "memqueue"

    def __init__(
        self,
        dram_config: DramConfig,
        read_callback: Optional[ReadCallback] = None,
        num_ports: int = 1,
        arbitration: str = "fifo",
        tdma_slot: int = 40,
    ) -> None:
        super().__init__(dram_config, read_callback=read_callback)
        if num_ports < 1:
            raise ConfigurationError("bank queues need at least one port")
        self.num_ports = num_ports
        self.arbitration = arbitration
        self.bank_arbiters = [
            create_arbiter(arbitration, num_ports, tdma_slot=tdma_slot)
            for _ in range(dram_config.num_banks)
        ]
        self._bank_queues: List[List[Deque[_QueuedAccess]]] = [
            [deque() for _ in range(num_ports)]
            for _ in range(dram_config.num_banks)
        ]
        #: Queued (not yet granted) accesses across all banks; lets the event
        #: engine skip the arbitrate phase and horizon scan when idle.
        self._queued_total = 0
        #: Queued reads awaiting their bank grant (subset of the above),
        #: so ``outstanding_reads`` keeps the base-class meaning: reads that
        #: entered the controller and have not been delivered yet.
        self._queued_reads = 0

    # ------------------------------------------------------------------ #
    # Request entry points: enqueue instead of immediate DRAM access.
    # ------------------------------------------------------------------ #
    def _enqueue(self, access: _QueuedAccess) -> None:
        if not 0 <= access.core_id < self.num_ports:
            raise SimulationError(
                f"memory access from core {access.core_id} but the bank queues "
                f"have {self.num_ports} ports"
            )
        bank = self.dram.bank_of(access.addr)
        self._bank_queues[bank][access.core_id].append(access)
        self._queued_total += 1
        self._horizon_dirty = True
        if access.record is not None:
            access.record.mem_ready_cycle = access.ready_cycle

    def enqueue_read(
        self,
        core_id: int,
        addr: int,
        cycle: int,
        kind: str = "load",
        record: Optional[RequestRecord] = None,
    ) -> PendingRead:
        """Queue a read on its bank; the DRAM access starts at grant time.

        The returned :class:`PendingRead` is the same object later handed to
        ``read_callback`` (the base-class contract); its ``complete_cycle``
        stays ``-1`` until the bank arbiter grants the access and the DRAM
        timing is known.
        """
        pending = PendingRead(
            core_id=core_id, addr=addr, enqueue_cycle=cycle, kind=kind, record=record
        )
        self._enqueue(
            _QueuedAccess(
                core_id,
                addr,
                cycle,
                is_write=False,
                kind=kind,
                pending=pending,
                record=record,
            )
        )
        self._queued_reads += 1
        return pending

    def enqueue_write(
        self,
        addr: int,
        cycle: int,
        core_id: int = 0,
        record: Optional[RequestRecord] = None,
    ) -> int:
        """Queue a write on its bank; returns ``-1`` (completion is at grant)."""
        self._enqueue(
            _QueuedAccess(core_id, addr, cycle, is_write=True, kind="store", record=record)
        )
        return -1

    # ------------------------------------------------------------------ #
    # Arbitration phase (SharedResource protocol).
    # ------------------------------------------------------------------ #
    def arbitrate(self, cycle: int) -> None:
        """Grant at most one queued access per *free* bank at ``cycle``."""
        if self._queued_total == 0:
            return
        for bank_index, queues in enumerate(self._bank_queues):
            if self.dram.bank_busy_until(bank_index) > cycle:
                continue
            pending_ports = [
                port
                for port, queue in enumerate(queues)
                if queue and queue[0].ready_cycle <= cycle
            ]
            if not pending_ports:
                continue
            arbiter = self.bank_arbiters[bank_index]
            ready_cycles = None
            if arbiter.uses_ready_order:
                ready_cycles = [queues[port][0].ready_cycle for port in pending_ports]
            winner = arbiter.choose(cycle, pending_ports, ready_cycles)
            if winner < 0:
                continue  # TDMA: no eligible slot owner for this bank
            access = queues[winner].popleft()
            self._queued_total -= 1
            self._horizon_dirty = True
            arbiter.notify_grant(cycle, winner)
            self._grant(access, cycle)

    def _grant(self, access: _QueuedAccess, cycle: int) -> None:
        wait = cycle - access.ready_cycle
        self.stats.queue_grants += 1
        self.stats.total_queue_wait += wait
        if wait > self.stats.max_queue_wait:
            self.stats.max_queue_wait = wait
        result = self.dram.access(access.addr, cycle, is_write=access.is_write)
        if access.record is not None:
            access.record.mem_grant_cycle = cycle
            access.record.mem_complete_cycle = result.complete_cycle
        if access.is_write:
            self.stats.writes += 1
            return
        pending = access.pending
        if pending is None:  # pragma: no cover - reads always carry one
            raise SimulationError("granted a queued read without its PendingRead")
        pending.complete_cycle = result.complete_cycle
        self._queued_reads -= 1
        self.stats.reads += 1
        self.stats.total_read_latency += result.complete_cycle - access.ready_cycle
        heapq.heappush(self._in_flight, (result.complete_cycle, self._sequence, pending))
        self._sequence += 1

    # ------------------------------------------------------------------ #
    # Event horizon.
    # ------------------------------------------------------------------ #
    def grant_horizon(self, cycle: int) -> int:
        """Earliest future cycle at which any bank could grant a queued access.

        Mirrors :meth:`repro.sim.bus.Bus.next_event_cycle` on a free bus: per
        bank, the grant cannot happen before the bank is free, the head
        request is ready, and the bank's arbiter admits the port
        (:meth:`~repro.sim.arbiter.Arbiter.next_event_cycle` contributes slot
        constraints for TDMA).
        """
        if self._queued_total == 0:
            return NO_EVENT
        horizon = NO_EVENT
        for bank_index, queues in enumerate(self._bank_queues):
            bank_free = self.dram.bank_busy_until(bank_index)
            arbiter = self.bank_arbiters[bank_index]
            for port, queue in enumerate(queues):
                if not queue:
                    continue
                ready = queue[0].ready_cycle
                if ready < cycle:
                    ready = cycle
                if bank_free > ready:
                    ready = bank_free
                grant = arbiter.next_event_cycle(ready, port)
                if grant < horizon:
                    horizon = grant
        return horizon

    def next_event_cycle(self, cycle: int) -> int:
        """Min over read completions (base class) and bank-grant opportunities."""
        horizon = MemoryController.next_event_cycle(self, cycle)
        grant = self.grant_horizon(cycle)
        return grant if grant < horizon else horizon

    next_activity = next_event_cycle

    @property
    def queued_accesses(self) -> int:
        """Accesses waiting in bank queues (not yet granted to the DRAM)."""
        return self._queued_total

    @property
    def outstanding_reads(self) -> int:
        """Reads not yet delivered: waiting in a bank queue or in flight."""
        return self._queued_reads + len(self._in_flight)

    def reset(self) -> None:
        """Drop queued and in-flight requests; reset banks and bank arbiters."""
        super().reset()
        for queues in self._bank_queues:
            for queue in queues:
                queue.clear()
        self._queued_total = 0
        self._queued_reads = 0
        for arbiter in self.bank_arbiters:
            arbiter.reset()
        self._init_event_port()
