"""Memory controller between the shared L2 and the DRAM.

L2 load misses and write-through traffic that misses the L2 are handed to the
memory controller.  Reads are tracked until their DRAM access completes and a
completion callback fires (the system then posts the split-transaction
response on the bus); writes are fire-and-forget from the core's point of
view but still occupy the target DRAM bank, so heavy write traffic delays
subsequent reads, as on the real platform.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..config import DramConfig
from ..errors import SimulationError
from .dram import Dram

#: Completion callback signature: (pending_read, cycle) -> None.
ReadCallback = Callable[["PendingRead", int], None]


@dataclass
class PendingRead:
    """A read request travelling through the memory controller."""

    core_id: int
    addr: int
    enqueue_cycle: int
    complete_cycle: int = -1
    kind: str = "load"


@dataclass
class MemCtrlStats:
    """Counters for the memory controller."""

    reads: int = 0
    writes: int = 0
    total_read_latency: int = 0

    @property
    def average_read_latency(self) -> float:
        """Mean cycles between enqueue and completion of reads."""
        if self.reads == 0:
            return 0.0
        return self.total_read_latency / self.reads


class MemoryController:
    """FIFO memory controller with bank-aware DRAM timing.

    Args:
        dram_config: DRAM timing parameters.
        read_callback: invoked when a read's data is available; the system
            uses it to post the response transfer on the bus.
    """

    def __init__(
        self, dram_config: DramConfig, read_callback: Optional[ReadCallback] = None
    ) -> None:
        self.dram = Dram(dram_config)
        self.read_callback = read_callback
        self.stats = MemCtrlStats()
        # Min-heap of (complete_cycle, sequence, PendingRead) awaiting delivery.
        self._in_flight: List[Tuple[int, int, PendingRead]] = []
        self._sequence = 0

    # ------------------------------------------------------------------ #
    # Request entry points (called by the memory subsystem).
    # ------------------------------------------------------------------ #
    def enqueue_read(self, core_id: int, addr: int, cycle: int, kind: str = "load") -> PendingRead:
        """Schedule a read; its completion fires ``read_callback`` later."""
        access = self.dram.access(addr, cycle, is_write=False)
        pending = PendingRead(
            core_id=core_id,
            addr=addr,
            enqueue_cycle=cycle,
            complete_cycle=access.complete_cycle,
            kind=kind,
        )
        self.stats.reads += 1
        self.stats.total_read_latency += access.complete_cycle - cycle
        heapq.heappush(self._in_flight, (access.complete_cycle, self._sequence, pending))
        self._sequence += 1
        return pending

    def enqueue_write(self, addr: int, cycle: int) -> int:
        """Schedule a write; returns its completion cycle (no callback fires)."""
        access = self.dram.access(addr, cycle, is_write=True)
        self.stats.writes += 1
        return access.complete_cycle

    # ------------------------------------------------------------------ #
    # Per-cycle processing.
    # ------------------------------------------------------------------ #
    def tick(self, cycle: int) -> None:
        """Deliver every read whose DRAM access has completed by ``cycle``."""
        while self._in_flight and self._in_flight[0][0] <= cycle:
            _, _, pending = heapq.heappop(self._in_flight)
            if self.read_callback is None:
                raise SimulationError(
                    "memory controller completed a read but no callback is attached"
                )
            self.read_callback(pending, cycle)

    def next_event_cycle(self, cycle: int) -> float:
        """Earliest future cycle at which a read completion must be delivered.

        This is the controller's horizon contribution to the event-driven
        scheduler (see :mod:`repro.sim.scheduler`).  Only read completions
        are events: writes are fire-and-forget and bank release times matter
        only when the *next* access arrives, which is always triggered by a
        bus delivery the scheduler already visits.
        """
        del cycle
        if not self._in_flight:
            return float("inf")
        return self._in_flight[0][0]

    #: Backwards-compatible alias for the pre-scheduler skip-ahead API.
    next_activity = next_event_cycle

    @property
    def outstanding_reads(self) -> int:
        """Number of reads still waiting for DRAM data."""
        return len(self._in_flight)

    def reset(self) -> None:
        """Drop in-flight requests and reset the DRAM row state."""
        self._in_flight.clear()
        self.dram.reset()
