"""Performance monitoring counters (PMC).

The methodology's confidence step (Section 4.3 of the paper) relies on the
kind of counters the Cobham Gaisler NGMP exposes — counters ``0x17`` and
``0x18`` report per-core and overall bus utilisation.  This module models an
equivalent counter block: per-core bus busy cycles, per-core request counts,
per-core contention (wait) cycles, instruction counts and total cycles, from
which utilisation figures are derived.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass(slots=True)
class CoreCounters:
    """Counters kept for a single core (one bus port)."""

    instructions: int = 0
    loads: int = 0
    stores: int = 0
    nops: int = 0
    bus_requests: int = 0
    bus_busy_cycles: int = 0
    contention_cycles: int = 0
    stall_cycles: int = 0
    store_buffer_full_stalls: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Flat dictionary view used by reports."""
        return {
            "instructions": self.instructions,
            "loads": self.loads,
            "stores": self.stores,
            "nops": self.nops,
            "bus_requests": self.bus_requests,
            "bus_busy_cycles": self.bus_busy_cycles,
            "contention_cycles": self.contention_cycles,
            "stall_cycles": self.stall_cycles,
            "store_buffer_full_stalls": self.store_buffer_full_stalls,
        }


@dataclass(slots=True)
class ResourceCounters:
    """Counters kept for one shared-resource channel (``bus``,
    ``bus_response``, ...): the per-channel PMC surface of split-transaction
    topologies.

    ``max_wait`` is the worst grant wait any single transaction suffered on
    the channel — the per-resource worst case the measured-bound pipeline
    (:mod:`repro.methodology.ubd`) reads as that resource's ``ubdm``
    candidate.  Unlike the per-request trace it covers *every* port, so it
    upper-bounds the observed core's own worst wait.
    """

    requests: int = 0
    busy_cycles: int = 0
    wait_cycles: int = 0
    max_wait: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Flat dictionary view used by reports."""
        return {
            "requests": self.requests,
            "busy_cycles": self.busy_cycles,
            "wait_cycles": self.wait_cycles,
            "max_wait": self.max_wait,
        }


@dataclass
class PerformanceCounters:
    """Counter block for a whole platform.

    Attributes:
        num_cores: number of cores (and therefore per-core counter sets).
        cycles: total elapsed cycles of the simulation window.
        bus_busy_cycles: cycles during which the demand channel (resource
            ``"bus"``) was serving a transaction — the bus-utilisation
            numerator of the paper's saturation check.  On the single
            shared bus this covers responses too (they occupy the same
            channel); on ``split_bus`` the response channel is a *parallel*
            resource whose busy cycles live only in its
            :attr:`resources` section, because summing overlapping
            channels would overstate utilisation.
        dram_accesses: number of requests that reached the DRAM.
        resources: per-channel counters keyed by ``resource_name``, created
            lazily on first service so idle channels leave no trace.
    """

    num_cores: int
    cycles: int = 0
    bus_busy_cycles: int = 0
    dram_accesses: int = 0
    core: List[CoreCounters] = field(default_factory=list)
    resources: Dict[str, ResourceCounters] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.core:
            self.core = [CoreCounters() for _ in range(self.num_cores)]

    # ------------------------------------------------------------------ #
    # Update helpers called by the simulator.
    # ------------------------------------------------------------------ #
    def note_bus_service(
        self, port: int, service_cycles: int, wait_cycles: int, resource: str = "bus"
    ) -> None:
        """Record one completed transaction issued by ``port`` on ``resource``."""
        if resource == "bus":
            # Only the demand channel feeds the headline utilisation; other
            # channels run in parallel with it (see the class docstring).
            self.bus_busy_cycles += service_cycles
        channel = self.resources.get(resource)
        if channel is None:
            channel = self.resources[resource] = ResourceCounters()
        channel.requests += 1
        channel.busy_cycles += service_cycles
        channel.wait_cycles += wait_cycles
        if wait_cycles > channel.max_wait:
            channel.max_wait = wait_cycles
        if 0 <= port < self.num_cores:
            counters = self.core[port]
            counters.bus_requests += 1
            counters.bus_busy_cycles += service_cycles
            counters.contention_cycles += wait_cycles

    def note_instruction(self, core_id: int, mnemonic: str) -> None:
        """Record the retirement of one instruction on ``core_id``."""
        counters = self.core[core_id]
        counters.instructions += 1
        if mnemonic == "load":
            counters.loads += 1
        elif mnemonic == "store":
            counters.stores += 1
        elif mnemonic == "nop":
            counters.nops += 1

    # ------------------------------------------------------------------ #
    # Derived utilisation figures (the NGMP 0x17/0x18 equivalents).
    # ------------------------------------------------------------------ #
    def bus_utilisation(self) -> float:
        """Overall bus utilisation over the measured window (0.0 - 1.0)."""
        if self.cycles == 0:
            return 0.0
        return min(1.0, self.bus_busy_cycles / self.cycles)

    def core_bus_utilisation(self, core_id: int) -> float:
        """Fraction of cycles the bus spent serving ``core_id``."""
        if self.cycles == 0:
            return 0.0
        return min(1.0, self.core[core_id].bus_busy_cycles / self.cycles)

    def average_contention(self, core_id: int) -> float:
        """Average contention delay per bus request of ``core_id``."""
        counters = self.core[core_id]
        if counters.bus_requests == 0:
            return 0.0
        return counters.contention_cycles / counters.bus_requests

    def total_requests(self) -> int:
        """Total number of bus transactions across all cores."""
        return sum(c.bus_requests for c in self.core)

    def resource_utilisation(self, resource: str) -> float:
        """Fraction of cycles channel ``resource`` spent serving requests."""
        channel = self.resources.get(resource)
        if channel is None or self.cycles == 0:
            return 0.0
        return min(1.0, channel.busy_cycles / self.cycles)

    def as_dict(self) -> Dict[str, object]:
        """Nested dictionary view used by reports and tests."""
        return {
            "cycles": self.cycles,
            "bus_busy_cycles": self.bus_busy_cycles,
            "bus_utilisation": self.bus_utilisation(),
            "dram_accesses": self.dram_accesses,
            "cores": [c.as_dict() for c in self.core],
            "resources": {
                name: channel.as_dict()
                for name, channel in sorted(self.resources.items())
            },
        }
