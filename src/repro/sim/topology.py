"""Shared-resource topologies: composing contention points into a platform.

A *topology* decides which :class:`repro.sim.resource.SharedResource`
instances sit behind the cores and how they chain.  The paper's platform is
the single-stage ``bus_only`` topology — one arbitrated bus in front of a
memory controller that schedules DRAM accesses on arrival.  The
``bus_bank_queues`` topology chains a second arbitrated stage behind the
bus: per-DRAM-bank memory-controller queues, each with its own arbitration
policy (:class:`repro.sim.memctrl.BankQueuedMemoryController`), so an L2
miss contends twice — once for the bus, once for its bank.  The
``split_bus`` topology additionally splits the bus NGMP split-transaction
style into two composed channels: an arbitrated *request channel* feeding
the bank queues and a separate arbitrated *response channel* returning the
data, so an L2 miss contends three times.

A topology builder returns the whole platform-side picture as a
:class:`ResourceChain`: the resources in phase order (both engines deliver
them front to back, tick the cores, arbitrate them front to back — see
:mod:`repro.sim.scheduler`) plus the wiring the system needs (where demand
requests are posted, where responses return, which controller owns the
DRAM).  :class:`repro.sim.system.System` supplies its callbacks through
:class:`TopologyHooks` and otherwise stays topology-agnostic, which is what
makes a new topology a pure registry addition::

    @register_topology("bus_crossbar", "per-core links into a crossbar")
    def _build_crossbar(config, hooks):
        ...
        return ResourceChain(...)

Like arbiters (:mod:`repro.sim.arbiter`) and engines
(:mod:`repro.sim.scheduler`), topologies are registered, not hardwired, on
the shared :class:`repro.registry.Registry` utility; the CLI's ``list``
subcommand and the campaign ``--topology`` axis read the same registry, so
a registered topology is immediately selectable everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from ..config import ArchConfig
from ..registry import Registry
from .arbiter import Arbiter, create_arbiter, make_arbiter
from .bus import Bus, ServiceCallback
from .memctrl import BankQueuedMemoryController, MemoryController, ReadCallback
from .pmc import PerformanceCounters
from .resource import SharedResource
from .trace import TraceRecorder


@dataclass(frozen=True)
class TopologyHooks:
    """What the system lends a topology builder.

    Attributes:
        service_callback: grant-time callback deciding a transaction's
            occupancy (the system's L2 lookup); shared by every bus channel.
        read_callback: fired when a DRAM read completes; the system uses it
            to post the response transfer on the chain's response channel.
        trace: the system's request trace recorder, if tracing is enabled.
        pmc: the system's performance counter block.
        arbiter: externally constructed arbiter overriding the policy named
            in ``config.bus`` for the *request* channel; must match that
            channel's port count.
    """

    service_callback: ServiceCallback
    read_callback: Optional[ReadCallback] = None
    trace: Optional[TraceRecorder] = None
    pmc: Optional[PerformanceCounters] = None
    arbiter: Optional[Arbiter] = None


@dataclass(frozen=True)
class ResourceChain:
    """A built topology: the resources plus the system-facing wiring.

    Attributes:
        resources: the shared-resource chain in phase order; both engines
            drive exactly this tuple through the event-port surface.
        request_bus: the channel cores post demand requests on.
        memctrl: the controller owning DRAM reads/writes and the
            :class:`~repro.sim.memctrl.MemCtrlStats` PMC surface.
        response_bus: the channel memory responses return on (the request
            bus itself on shared-bus topologies).
        response_port_of: maps a core id to its response port on
            ``response_bus`` (the shared extra port on single-bus
            topologies, the core's own port on ``split_bus``).
    """

    resources: Tuple[SharedResource, ...]
    request_bus: Bus
    memctrl: MemoryController
    response_bus: Bus
    response_port_of: Callable[[int], int]


#: Builder signature: given the platform configuration and the system's
#: hooks, return the full resource chain.
TopologyBuilder = Callable[[ArchConfig, TopologyHooks], ResourceChain]


@dataclass(frozen=True)
class TopologyEntry:
    """One registered topology."""

    name: str
    builder: TopologyBuilder
    description: str = ""


#: Topology name -> registered entry, in registration order.
TOPOLOGY_REGISTRY: Registry[TopologyEntry] = Registry("topology")


def register_topology(name: str, description: str = ""):
    """Decorator registering a topology builder under ``name``.

    Re-registering a name is a configuration error, for the same reason as
    with arbiters: two identical configurations must never build different
    platforms.
    """

    def decorator(builder: TopologyBuilder) -> TopologyBuilder:
        TOPOLOGY_REGISTRY.register(
            name, TopologyEntry(name=name, builder=builder, description=description)
        )
        return builder

    return decorator


def registered_topologies() -> Tuple[str, ...]:
    """Names of every registered topology, in registration order."""
    return TOPOLOGY_REGISTRY.names()


def build_topology(config: ArchConfig, hooks: TopologyHooks) -> ResourceChain:
    """Build the resource chain named by ``config.topology``."""
    return TOPOLOGY_REGISTRY.require(config.topology.name).builder(config, hooks)


def _request_bus(
    config: ArchConfig, hooks: TopologyHooks, num_ports: int
) -> Bus:
    """The demand-request channel shared by every built-in topology."""
    arbiter = hooks.arbiter
    if arbiter is None:
        arbiter = make_arbiter(config.bus, num_ports)
    return Bus(
        num_ports=num_ports,
        arbiter=arbiter,
        service_callback=hooks.service_callback,
        trace=hooks.trace,
        pmc=hooks.pmc,
    )


@register_topology(
    "bus_only",
    "single arbitrated bus; memory accesses schedule on arrival (the paper's platform)",
)
def _build_bus_only(config: ArchConfig, hooks: TopologyHooks) -> ResourceChain:
    # One demand port per core plus the shared split-transaction response port.
    bus = _request_bus(config, hooks, config.num_cores + 1)
    memctrl = MemoryController(config.dram, read_callback=hooks.read_callback)
    response_port = config.num_cores
    return ResourceChain(
        resources=(bus, memctrl),
        request_bus=bus,
        memctrl=memctrl,
        response_bus=bus,
        response_port_of=lambda core_id: response_port,
    )


@register_topology(
    "bus_bank_queues",
    "arbitrated bus feeding per-DRAM-bank arbitrated memory-controller queues",
)
def _build_bus_bank_queues(config: ArchConfig, hooks: TopologyHooks) -> ResourceChain:
    topology = config.topology
    bus = _request_bus(config, hooks, config.num_cores + 1)
    memctrl = BankQueuedMemoryController(
        config.dram,
        read_callback=hooks.read_callback,
        num_ports=config.num_cores,
        arbitration=topology.mem_arbitration,
        tdma_slot=topology.mem_tdma_slot,
    )
    response_port = config.num_cores
    return ResourceChain(
        resources=(bus, memctrl),
        request_bus=bus,
        memctrl=memctrl,
        response_bus=bus,
        response_port_of=lambda core_id: response_port,
    )


@register_topology(
    "split_bus",
    "split-transaction bus: arbitrated request channel into per-bank queues, "
    "arbitrated response channel returning the data",
)
def _build_split_bus(config: ArchConfig, hooks: TopologyHooks) -> ResourceChain:
    topology = config.topology
    num_cores = config.num_cores
    # The request channel carries demand traffic only (no response port).
    request = _request_bus(config, hooks, num_cores)
    memctrl = BankQueuedMemoryController(
        config.dram,
        read_callback=hooks.read_callback,
        num_ports=num_cores,
        arbitration=topology.mem_arbitration,
        tdma_slot=topology.mem_tdma_slot,
    )
    # The response channel has one port per core; with at most one
    # outstanding demand miss per core, each port holds at most one pending
    # response, which is what makes the (Nc - 1) * response-occupancy bound
    # of ArchConfig.ubd_terms exact for fair arbitration.
    response = Bus(
        num_ports=num_cores,
        arbiter=create_arbiter(
            topology.response_arbitration,
            num_cores,
            tdma_slot=topology.response_tdma_slot,
        ),
        service_callback=hooks.service_callback,
        trace=hooks.trace,
        pmc=hooks.pmc,
        resource_name="bus_response",
    )
    # Phase order is data-flow order: request deliveries may enqueue into
    # the bank queues, bank deliveries post responses, and a response posted
    # in this very cycle can still be granted in this cycle's arbitration
    # phase — exactly the single-bus timing of DESIGN.md Section 5.
    return ResourceChain(
        resources=(request, memctrl, response),
        request_bus=request,
        memctrl=memctrl,
        response_bus=response,
        response_port_of=lambda core_id: core_id,
    )
