"""Shared-resource topologies: composing contention points into a platform.

A *topology* decides which :class:`repro.sim.resource.SharedResource`
instances sit behind the cores and how they chain.  The paper's platform is
the single-stage ``bus_only`` topology — one arbitrated bus in front of a
memory controller that schedules DRAM accesses on arrival.  The
``bus_bank_queues`` topology chains a second arbitrated stage behind the
bus: per-DRAM-bank memory-controller queues, each with its own arbitration
policy (:class:`repro.sim.memctrl.BankQueuedMemoryController`), so an L2
miss contends twice — once for the bus, once for its bank.

Like arbiters (:mod:`repro.sim.arbiter`) and engines
(:mod:`repro.sim.scheduler`), topologies are registered, not hardwired::

    @register_topology("bus_crossbar", "per-core links into a crossbar")
    def _build_crossbar(config, read_callback):
        return CrossbarMemoryController(...)

:class:`repro.sim.system.System` calls :func:`build_memory_subsystem` with
the platform's :class:`~repro.config.TopologyConfig`; the CLI's ``list``
subcommand and the campaign ``--topology`` axis read the same registry, so
a registered topology is immediately selectable everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..config import ArchConfig
from ..errors import ConfigurationError
from .memctrl import BankQueuedMemoryController, MemoryController, ReadCallback

#: Builder signature: given the platform configuration and the system's
#: read-completion callback, return the memory-side resource chained behind
#: the bus (today a single controller; richer topologies may return deeper
#: chains once the system grows more hop points).
TopologyBuilder = Callable[[ArchConfig, Optional[ReadCallback]], MemoryController]


@dataclass(frozen=True)
class TopologyEntry:
    """One registered topology."""

    name: str
    builder: TopologyBuilder
    description: str = ""


#: Topology name -> registered entry, in registration order.
TOPOLOGY_REGISTRY: Dict[str, TopologyEntry] = {}


def register_topology(name: str, description: str = ""):
    """Decorator registering a topology builder under ``name``.

    Re-registering a name is a configuration error, for the same reason as
    with arbiters: two identical configurations must never build different
    platforms.
    """
    if not name:
        raise ConfigurationError("a topology needs a non-empty registry name")

    def decorator(builder: TopologyBuilder) -> TopologyBuilder:
        if name in TOPOLOGY_REGISTRY:
            raise ConfigurationError(f"topology {name!r} already registered")
        TOPOLOGY_REGISTRY[name] = TopologyEntry(
            name=name, builder=builder, description=description
        )
        return builder

    return decorator


def registered_topologies() -> Tuple[str, ...]:
    """Names of every registered topology, in registration order."""
    return tuple(TOPOLOGY_REGISTRY)


def build_memory_subsystem(
    config: ArchConfig, read_callback: Optional[ReadCallback] = None
) -> MemoryController:
    """Build the memory-side resource chain named by ``config.topology``."""
    entry = TOPOLOGY_REGISTRY.get(config.topology.name)
    if entry is None:
        raise ConfigurationError(
            f"unknown topology {config.topology.name!r}; "
            f"registered: {list(TOPOLOGY_REGISTRY)}"
        )
    return entry.builder(config, read_callback)


@register_topology(
    "bus_only",
    "single arbitrated bus; memory accesses schedule on arrival (the paper's platform)",
)
def _build_bus_only(
    config: ArchConfig, read_callback: Optional[ReadCallback]
) -> MemoryController:
    return MemoryController(config.dram, read_callback=read_callback)


@register_topology(
    "bus_bank_queues",
    "arbitrated bus feeding per-DRAM-bank arbitrated memory-controller queues",
)
def _build_bus_bank_queues(
    config: ArchConfig, read_callback: Optional[ReadCallback]
) -> BankQueuedMemoryController:
    topology = config.topology
    return BankQueuedMemoryController(
        config.dram,
        read_callback=read_callback,
        num_ports=config.num_cores,
        arbitration=topology.mem_arbitration,
        tdma_slot=topology.mem_tdma_slot,
    )
