"""Per-chain code-generated event loops (the ``codegen`` engine).

The generic :class:`repro.sim.scheduler.EventScheduler` drives any resource
chain through the event-port surface, paying interpreter dispatch for that
generality: a loop over ``system.resources``, a ``choose()`` call per grant,
a queue walk per horizon fold.  For a *concrete* platform all of that is
static — the topology names the resources in phase order, the configuration
names each arbiter — so this module generates the loop the generic engine
would have executed, as Python source specialised to the chain:

* the resource and core loops are unrolled (fixed resource order);
* the per-channel horizon folds are inlined (no ``next_event_cycle`` call);
* the grant logic is inlined per arbitration policy — the round-robin scan,
  the FIFO readiness minimum, the fixed-priority rank minimum, and a closed
  form for the TDMA slot schedule;
* the plain memory controller's no-op ``arbitrate`` disappears entirely.

Grant *side effects* (occupancy timing, trace/PMC stamps, DRAM issue) stay
in the resource classes — the generated code selects a winner and delegates
to :meth:`repro.sim.bus.Bus._grant_port` or
:meth:`repro.sim.memctrl.BankQueuedMemoryController._grant` — so the
specialisation is confined to the pure decision logic that the three-way
engine-equivalence suite can exhaustively compare.

Compilation is cached the way campaign results are: content-addressed by the
:func:`loop_cache_key` digest of the configuration (``ArchConfig.digest``
minus the ``engine`` field, which selects a loop but never changes one), so
equal platforms share one compiled loop object per process and unequal
platforms can never collide.

Fallback contract: anything the generator does not recognise — a registered
third-party topology or arbitration policy, an externally constructed
arbiter of an unknown class, a resource subclass — makes
:class:`CodegenEngine` silently delegate to the generic ``EventScheduler``
(see :func:`specialisation_mismatch`).  Unknown registry entries therefore
keep working, only without the specialised speedup.

Validation harness: :func:`compile_loop` with ``diagnostics=True`` emits a
self-checking variant that cross-checks every inlined winner selection and
horizon fold against the generic resource methods and raises
:class:`CodegenMismatch` pinpointing the first divergent cycle.  The
equivalence suite uses it for its regenerate-with-diagnostics pass: on a
three-way mismatch it recompiles with diagnostics, re-runs, and fails with
the offending generated source attached.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Tuple,
    Union,
)

from ..config import ArchConfig, canonical_digest
from ..errors import SimulationError
from .arbiter import (
    FifoArbiter,
    FixedPriorityArbiter,
    RoundRobinArbiter,
    TdmaArbiter,
)
from .bus import Bus
from .memctrl import BankQueuedMemoryController, MemoryController
from .resource import NO_EVENT

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .scheduler import EventScheduler
    from .system import System


class CodegenMismatch(SimulationError):
    """A diagnostics-mode generated loop diverged from the generic logic.

    Raised by the self-checking loop variant at the first cycle where an
    inlined winner selection or horizon fold disagrees with the generic
    resource method it specialises.  The message pinpoints the resource,
    the check and the cycle; the test harness attaches the generated source.
    """


class UnspecialisableError(SimulationError):
    """The configuration names something the generator cannot specialise."""


#: Arbitration policies the generator knows how to inline, mapped to the
#: exact class the built-in factory constructs.  ``specialisation_mismatch``
#: compares with ``type() is`` so a registered subclass (which may override
#: selection) falls back to the generic engine.
_ARBITER_CLASSES: Dict[str, type] = {
    "round_robin": RoundRobinArbiter,
    "fifo": FifoArbiter,
    "fixed_priority": FixedPriorityArbiter,
    "tdma": TdmaArbiter,
}


# --------------------------------------------------------------------------- #
# Specialisation plans: what the chain looks like, derived from the config.
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class _ChannelPlan:
    """One arbitrated bus channel (request or response)."""

    var: str
    label: str
    ports: int
    policy: str
    slot: int


@dataclass(frozen=True)
class _PlainMemPlan:
    """The arrival-scheduled memory controller (no visible contention)."""

    var: str
    label: str


@dataclass(frozen=True)
class _BankQueuePlan:
    """The bank-queued memory controller (per-bank arbitrated queues)."""

    var: str
    label: str
    ports: int
    banks: int
    policy: str
    slot: int


_ResourcePlan = Union[_ChannelPlan, _PlainMemPlan, _BankQueuePlan]


def _checked_policy(policy: str, where: str) -> str:
    if policy not in _ARBITER_CLASSES:
        raise UnspecialisableError(
            f"{where} arbitration policy {policy!r} has no specialised grant logic"
        )
    return policy


def _resource_plans(config: ArchConfig) -> List[_ResourcePlan]:
    """The chain the built-in topology would build, as specialisation plans.

    Raises :class:`UnspecialisableError` for registered topologies or
    policies the generator does not know — the signal
    :class:`CodegenEngine` turns into a generic-engine fallback.
    """
    name = config.topology.name
    cores = config.num_cores
    banks = config.dram.num_banks
    bus_policy = _checked_policy(config.bus.arbitration, "bus")
    if name == "bus_only":
        return [
            _ChannelPlan("r0", "bus", cores + 1, bus_policy, config.bus.tdma_slot),
            _PlainMemPlan("r1", "memctrl"),
        ]
    mem_policy_name = config.topology.mem_arbitration
    if name == "bus_bank_queues":
        return [
            _ChannelPlan("r0", "bus", cores + 1, bus_policy, config.bus.tdma_slot),
            _BankQueuePlan(
                "r1",
                "memqueue",
                cores,
                banks,
                _checked_policy(mem_policy_name, "memory"),
                config.topology.mem_tdma_slot,
            ),
        ]
    if name == "split_bus":
        return [
            _ChannelPlan("r0", "bus", cores, bus_policy, config.bus.tdma_slot),
            _BankQueuePlan(
                "r1",
                "memqueue",
                cores,
                banks,
                _checked_policy(mem_policy_name, "memory"),
                config.topology.mem_tdma_slot,
            ),
            _ChannelPlan(
                "r2",
                "bus_response",
                cores,
                _checked_policy(config.topology.response_arbitration, "response"),
                config.topology.response_tdma_slot,
            ),
        ]
    raise UnspecialisableError(f"topology {name!r} is not a built-in chain")


# --------------------------------------------------------------------------- #
# Source assembly.
# --------------------------------------------------------------------------- #


class _SourceWriter:
    """Indentation-aware line accumulator for the generated module."""

    def __init__(self) -> None:
        self._lines: List[str] = []
        self._level = 0

    def line(self, text: str = "") -> None:
        self._lines.append("    " * self._level + text if text else "")

    @contextmanager
    def indent(self) -> Iterator[None]:
        self._level += 1
        try:
            yield
        finally:
            self._level -= 1

    def render(self) -> str:
        return "\n".join(self._lines) + "\n"


def _tdma_grant_lines(ready: str, port: str, slot: int, ports: int) -> List[str]:
    """Closed form of ``TdmaArbiter.next_grant_opportunity`` as source lines.

    The first slot boundary at or after ``ready`` whose slot index is
    congruent to ``port`` modulo the port count; assigns ``_g``.
    """
    period = slot * ports
    return [
        f"_si = {ready} // {slot}",
        f"_g = (_si + (({port} - _si) % {ports})) * {slot}",
        f"if _g < {ready}:",
        f"    _g += {period}",
    ]


def _emit_channel_horizon(w: _SourceWriter, plan: _ChannelPlan) -> None:
    """Assign ``_h`` the channel's ``next_event_cycle(cycle)``, inlined."""
    r = plan.var
    w.line(f"if {r}._current is not None:")
    with w.indent():
        w.line(f"_h = {r}._busy_until")
    w.line(f"elif {r}._queued_total == 0:")
    with w.indent():
        w.line("_h = NO_EVENT")
    w.line("else:")
    with w.indent():
        w.line("_h = NO_EVENT")
        for port in range(plan.ports):
            w.line(f"_q = {r}q[{port}]")
            w.line("if _q:")
            with w.indent():
                w.line("_r = _q[0].ready_cycle")
                w.line("if _r < cycle:")
                with w.indent():
                    w.line("_r = cycle")
                if plan.policy == "tdma":
                    for text in _tdma_grant_lines("_r", str(port), plan.slot, plan.ports):
                        w.line(text)
                    w.line("if _g < _h:")
                    with w.indent():
                        w.line("_h = _g")
                else:
                    # Work-conserving policies can grant a ready head at
                    # once: the arbiter's horizon contribution is `ready`.
                    w.line("if _r < _h:")
                    with w.indent():
                        w.line("_h = _r")


def _emit_channel_winner(w: _SourceWriter, plan: _ChannelPlan) -> None:
    """Assign ``_w`` the arbitration winner (or -1), inlined per policy."""
    r = plan.var
    ports = plan.ports
    if plan.policy == "round_robin":
        # The Section 2 scan: i+1, i+2, ..., i from the last granted port,
        # fused with the pending check (head queued and ready).
        w.line("_w = -1")
        w.line(f"_port = arb_{r}._last_granted")
        w.line(f"for _n in range({ports}):")
        with w.indent():
            w.line("_port += 1")
            w.line(f"if _port >= {ports}:")
            with w.indent():
                w.line("_port = 0")
            w.line(f"_q = {r}q[_port]")
            w.line("if _q and _q[0].ready_cycle <= cycle:")
            with w.indent():
                w.line("_w = _port")
                w.line("break")
    elif plan.policy == "fifo":
        # Earliest readiness wins; the strict `<` keeps the lower port on
        # ties, matching FifoArbiter.select_with_ready's sorted() order.
        w.line("_w = -1")
        w.line("_best = 0")
        for port in range(ports):
            w.line(f"_q = {r}q[{port}]")
            w.line("if _q:")
            with w.indent():
                w.line("_r = _q[0].ready_cycle")
                if port == 0:
                    w.line("if _r <= cycle:")
                    with w.indent():
                        w.line(f"_w = {port}")
                        w.line("_best = _r")
                else:
                    w.line("if _r <= cycle and (_w < 0 or _r < _best):")
                    with w.indent():
                        w.line(f"_w = {port}")
                        w.line("_best = _r")
    elif plan.policy == "fixed_priority":
        # The rank table is read from the live arbiter so externally
        # constructed priority permutations keep working.
        w.line(f"_rank = arb_{r}._rank")
        w.line("_w = -1")
        w.line("_wr = 0")
        for port in range(ports):
            w.line(f"_q = {r}q[{port}]")
            w.line("if _q and _q[0].ready_cycle <= cycle:")
            with w.indent():
                w.line(f"_r = _rank[{port}]")
                w.line("if _w < 0 or _r < _wr:")
                with w.indent():
                    w.line(f"_w = {port}")
                    w.line("_wr = _r")
    else:  # tdma
        w.line("_w = -1")
        w.line(f"if cycle % {plan.slot} == 0:")
        with w.indent():
            w.line(f"_owner = (cycle // {plan.slot}) % {ports}")
            w.line(f"_q = {r}q[_owner]")
            w.line("if _q and _q[0].ready_cycle <= cycle:")
            with w.indent():
                w.line("_w = _owner")


def _emit_channel_winner_check(w: _SourceWriter, plan: _ChannelPlan) -> None:
    """Diagnostics: compare ``_w`` with the generic arbiter choice."""
    r = plan.var
    w.line(
        f"_pp = [_p for _p in range({plan.ports}) "
        f"if {r}q[_p] and {r}q[_p][0].ready_cycle <= cycle]"
    )
    w.line("if _pp:")
    with w.indent():
        w.line(
            f"_rc = [{r}q[_p][0].ready_cycle for _p in _pp] "
            f"if arb_{r}.uses_ready_order else None"
        )
        w.line(f"_wref = arb_{r}.choose(cycle, _pp, _rc)")
    w.line("else:")
    with w.indent():
        w.line("_wref = -1")
    w.line("if _w != _wref:")
    with w.indent():
        w.line("raise CodegenMismatch(")
        with w.indent():
            w.line(
                f"f\"{plan.label}: generated winner {{_w}} != generic "
                f"{{_wref}} at cycle {{cycle}}\""
            )
        w.line(")")


def _emit_horizon_check(w: _SourceWriter, var: str, label: str) -> None:
    """Diagnostics: compare ``_h`` with the generic ``next_event_cycle``."""
    w.line(f"_href = {var}.next_event_cycle(cycle)")
    w.line("if _h != _href:")
    with w.indent():
        w.line("raise CodegenMismatch(")
        with w.indent():
            w.line(
                f"f\"{label}: generated horizon {{_h}} != generic "
                f"{{_href}} at cycle {{cycle}}\""
            )
        w.line(")")


def _emit_bankq_horizon(w: _SourceWriter, plan: _BankQueuePlan) -> None:
    """Assign ``_h`` the bank-queued controller's horizon, inlined.

    The minimum over the in-flight completion heap and, per bank and port,
    the earliest grant opportunity (head readiness clamped by the clock and
    the bank's busy window, pushed to the next slot under TDMA).
    """
    r = plan.var
    w.line(f"_h = {r}f[0][0] if {r}f else NO_EVENT")
    w.line(f"if {r}._queued_total:")
    with w.indent():
        w.line(f"for _bank in range({plan.banks}):")
        with w.indent():
            w.line(f"_free = {r}banks[_bank].busy_until")
            w.line(f"_queues = {r}bq[_bank]")
            w.line(f"for _p in range({plan.ports}):")
            with w.indent():
                w.line("_q = _queues[_p]")
                w.line("if _q:")
                with w.indent():
                    w.line("_r = _q[0].ready_cycle")
                    w.line("if _r < cycle:")
                    with w.indent():
                        w.line("_r = cycle")
                    w.line("if _free > _r:")
                    with w.indent():
                        w.line("_r = _free")
                    if plan.policy == "tdma":
                        for text in _tdma_grant_lines("_r", "_p", plan.slot, plan.ports):
                            w.line(text)
                        w.line("if _g < _h:")
                        with w.indent():
                            w.line("_h = _g")
                    else:
                        w.line("if _r < _h:")
                        with w.indent():
                            w.line("_h = _r")


def _emit_bankq_grants(
    w: _SourceWriter, plan: _BankQueuePlan, diagnostics: bool
) -> None:
    """Grant at most one queued access per free bank, selection inlined."""
    r = plan.var
    ports = plan.ports
    if plan.policy == "tdma" and not diagnostics:
        # The slot gate is global to the controller, so the whole bank scan
        # can be skipped off-boundary.  (Diagnostics keeps the per-bank
        # shape so every bank's selection is cross-checked.)
        w.line(f"if {r}._queued_total and cycle % {plan.slot} == 0:")
    else:
        w.line(f"if {r}._queued_total:")
    with w.indent():
        w.line(f"for _bank in range({plan.banks}):")
        with w.indent():
            w.line(f"if {r}banks[_bank].busy_until > cycle:")
            with w.indent():
                w.line("continue")
            w.line(f"_queues = {r}bq[_bank]")
            if plan.policy == "round_robin":
                w.line(f"_arb = {r}arbs[_bank]")
                w.line("_w = -1")
                w.line("_port = _arb._last_granted")
                w.line(f"for _n in range({ports}):")
                with w.indent():
                    w.line("_port += 1")
                    w.line(f"if _port >= {ports}:")
                    with w.indent():
                        w.line("_port = 0")
                    w.line("_q = _queues[_port]")
                    w.line("if _q and _q[0].ready_cycle <= cycle:")
                    with w.indent():
                        w.line("_w = _port")
                        w.line("break")
            elif plan.policy == "fifo":
                w.line("_w = -1")
                w.line("_best = 0")
                w.line(f"for _p in range({ports}):")
                with w.indent():
                    w.line("_q = _queues[_p]")
                    w.line("if _q:")
                    with w.indent():
                        w.line("_r = _q[0].ready_cycle")
                        w.line("if _r <= cycle and (_w < 0 or _r < _best):")
                        with w.indent():
                            w.line("_w = _p")
                            w.line("_best = _r")
            elif plan.policy == "fixed_priority":
                # Bank arbiters are built by the controller with the default
                # identity permutation (specialisation_mismatch verifies),
                # so the rank minimum is simply the lowest pending port.
                w.line("_w = -1")
                w.line(f"for _p in range({ports}):")
                with w.indent():
                    w.line("_q = _queues[_p]")
                    w.line("if _q and _q[0].ready_cycle <= cycle:")
                    with w.indent():
                        w.line("_w = _p")
                        w.line("break")
            else:  # tdma
                w.line("_w = -1")
                w.line(f"if cycle % {plan.slot} == 0:")
                with w.indent():
                    w.line(f"_owner = (cycle // {plan.slot}) % {ports}")
                    w.line("_q = _queues[_owner]")
                    w.line("if _q and _q[0].ready_cycle <= cycle:")
                    with w.indent():
                        w.line("_w = _owner")
            if diagnostics:
                w.line(
                    f"_pp = [_p for _p in range({ports}) "
                    "if _queues[_p] and _queues[_p][0].ready_cycle <= cycle]"
                )
                w.line("if _pp:")
                with w.indent():
                    w.line(
                        "_rc = [_queues[_p][0].ready_cycle for _p in _pp] "
                        f"if {r}arbs[_bank].uses_ready_order else None"
                    )
                    w.line(f"_wref = {r}arbs[_bank].choose(cycle, _pp, _rc)")
                w.line("else:")
                with w.indent():
                    w.line("_wref = -1")
                w.line("if _w != _wref:")
                with w.indent():
                    w.line("raise CodegenMismatch(")
                    with w.indent():
                        w.line(
                            f"f\"{plan.label} bank {{_bank}}: generated winner "
                            f"{{_w}} != generic {{_wref}} at cycle {{cycle}}\""
                        )
                    w.line(")")
            w.line("if _w >= 0:")
            with w.indent():
                # Grant side effects stay in the controller; the order
                # mirrors BankQueuedMemoryController.arbitrate exactly.
                w.line("_access = _queues[_w].popleft()")
                w.line(f"{r}._queued_total -= 1")
                w.line(f"{r}arbs[_bank].notify_grant(cycle, _w)")
                w.line(f"{r}._grant(_access, cycle)")


def _emit_phase1(w: _SourceWriter, plan: _ResourcePlan) -> None:
    """Phase 1 — deliver ``plan``'s resource if its horizon is due."""
    r = plan.var
    w.line(f"# {plan.label}: deliver")
    w.line(f"if {r}._horizon_dirty:")
    with w.indent():
        if isinstance(plan, _ChannelPlan):
            _emit_channel_horizon(w, plan)
        elif isinstance(plan, _PlainMemPlan):
            w.line(f"_h = {r}f[0][0] if {r}f else NO_EVENT")
        else:
            _emit_bankq_horizon(w, plan)
        w.line(f"{r}._horizon_cache = _h")
        w.line(f"{r}._horizon_dirty = False")
    w.line("else:")
    with w.indent():
        w.line(f"_h = {r}._horizon_cache")
    w.line("if _h <= cycle:")
    with w.indent():
        w.line(f"{r}.deliver(cycle)")
        if isinstance(plan, _ChannelPlan):
            # Only bus channels wake cores; the controllers deliver into
            # the system's read callback and keep wake_targets empty.
            w.line(f"for _core_id in {r}.wake_targets:")
            with w.indent():
                w.line("woken |= 1 << _core_id")


def _emit_phase3(w: _SourceWriter, plan: _ResourcePlan, diagnostics: bool) -> None:
    """Phase 3 — arbitrate ``plan``'s resource and fold its horizon."""
    r = plan.var
    w.line(f"# {plan.label}: arbitrate + horizon")
    w.line(f"if {r}._horizon_dirty or {r}._horizon_cache <= cycle:")
    with w.indent():
        if isinstance(plan, _ChannelPlan):
            w.line(f"if {r}._current is None and {r}._queued_total:")
            with w.indent():
                _emit_channel_winner(w, plan)
                if diagnostics:
                    _emit_channel_winner_check(w, plan)
                w.line("if _w >= 0:")
                with w.indent():
                    w.line(f"{r}._grant_port(_w, cycle)")
            _emit_channel_horizon(w, plan)
        elif isinstance(plan, _PlainMemPlan):
            # The plain controller's arbitrate() is a no-op: only the
            # completion heap contributes events.
            w.line(f"_h = {r}f[0][0] if {r}f else NO_EVENT")
        else:
            _emit_bankq_grants(w, plan, diagnostics)
            _emit_bankq_horizon(w, plan)
        if diagnostics:
            _emit_horizon_check(w, r, plan.label)
        w.line(f"{r}._horizon_cache = _h")
        w.line(f"{r}._horizon_dirty = False")
    w.line("else:")
    with w.indent():
        w.line(f"_h = {r}._horizon_cache")
    w.line("if _h < horizon:")
    with w.indent():
        w.line("horizon = _h")


def generate_loop_source(
    config: ArchConfig, diagnostics: bool = False, replay_mask: int = 0
) -> str:
    """Generate the specialised run-loop module for ``config``.

    Pure and deterministic: the same configuration always yields the same
    source (the golden-snapshot tests rely on this).  Raises
    :class:`UnspecialisableError` when the configuration names a topology or
    policy the generator cannot inline.

    ``replay_mask`` is a bitmask of core indices the replay engine has
    swapped for :class:`repro.sim.trace.ReplayCore` instances.  A replayed
    core has no READY state, no store buffer and never needs a wake-up
    re-check, so its phase-2 block collapses to a single busy-until test
    and its horizon fold to the executing branch — the composition of the
    codegen and trace-replay optimisations.  ``replay_mask=0`` emits
    byte-identical source to the pre-replay generator (the golden
    snapshots pin this).
    """
    plans = _resource_plans(config)
    cores = config.num_cores
    w = _SourceWriter()
    w.line('"""Generated event loop (repro.sim.codegen).')
    w.line("")
    w.line(f"topology: {config.topology.name}")
    for plan in plans:
        if isinstance(plan, _ChannelPlan):
            w.line(
                f"  {plan.var} {plan.label}: {plan.ports} ports, "
                f"{plan.policy}" + (f" slot={plan.slot}" if plan.policy == "tdma" else "")
            )
        elif isinstance(plan, _PlainMemPlan):
            w.line(f"  {plan.var} {plan.label}: arrival-scheduled (no arbitration)")
        else:
            w.line(
                f"  {plan.var} {plan.label}: {plan.banks} banks x {plan.ports} ports, "
                f"{plan.policy}" + (f" slot={plan.slot}" if plan.policy == "tdma" else "")
            )
    w.line(f"cores: {cores}")
    if replay_mask:
        replayed = [i for i in range(cores) if (replay_mask >> i) & 1]
        w.line(f"replay cores: {replayed}")
    w.line(f"cache key: {loop_cache_key(config)}")
    if diagnostics:
        w.line("diagnostics: cross-checking inlined logic against generic methods")
    w.line('"""')
    w.line("")
    w.line("from repro.sim.core import CoreState")
    if diagnostics:
        w.line("from repro.sim.codegen import CodegenMismatch")
    w.line("")
    w.line("")
    w.line("def run(system, observed, max_cycles):")
    with w.indent():
        w.line(f"NO_EVENT = {NO_EVENT}")
        w.line("executing = CoreState.EXECUTING")
        w.line("ready = CoreState.READY")
        w.line("stalled = CoreState.STALL_STORE_BUFFER")
        w.line("done = CoreState.DONE")
        w.line("resources = system.resources")
        w.line("cores = system.cores")
        w.line("observed_cores = [cores[_i] for _i in observed]")
        w.line("only = observed_cores[0] if len(observed_cores) == 1 else None")
        # Stable sub-objects are prebound once per run: queue deques, the
        # in-flight heaps and the DRAM bank list survive reset() in place.
        for index, plan in enumerate(plans):
            r = plan.var
            w.line(f"{r} = resources[{index}]")
            if isinstance(plan, _ChannelPlan):
                w.line(f"{r}q = {r}._queues")
                w.line(f"arb_{r} = {r}.arbiter")
            elif isinstance(plan, _PlainMemPlan):
                w.line(f"{r}f = {r}._in_flight")
            else:
                w.line(f"{r}f = {r}._in_flight")
                w.line(f"{r}bq = {r}._bank_queues")
                w.line(f"{r}banks = {r}.dram._banks")
                w.line(f"{r}arbs = {r}.bank_arbiters")
        for core in range(cores):
            w.line(f"c{core} = cores[{core}]")
        w.line("cycle = system.current_cycle")
        w.line("timed_out = False")
        w.line("while True:")
        with w.indent():
            w.line("woken = 0")
            for plan in plans:
                _emit_phase1(w, plan)
            for core in range(cores):
                if (replay_mask >> core) & 1:
                    # A replay core acts exactly once per request: at the
                    # end of its compute segment.  Deliveries re-enter the
                    # EXECUTING state directly (no READY hop), a zero-gap
                    # segment has busy_until == cycle, and there is no
                    # store buffer — so the single test below is complete.
                    w.line(f"# core {core}: tick (replay)")
                    w.line(
                        f"if c{core}.state is executing and "
                        f"cycle >= c{core}._busy_until:"
                    )
                    with w.indent():
                        w.line(f"c{core}.tick(cycle)")
                    continue
                w.line(f"# core {core}: tick")
                w.line(f"_s = c{core}.state")
                w.line("if _s is executing:")
                with w.indent():
                    w.line(
                        f"if cycle >= c{core}._busy_until or "
                        f"(woken >> {core}) & 1 and c{core}.needs_tick(cycle):"
                    )
                    with w.indent():
                        w.line(f"c{core}.tick(cycle)")
                w.line("elif _s is ready or _s is stalled:")
                with w.indent():
                    w.line(f"c{core}.tick(cycle)")
                w.line(f"elif (woken >> {core}) & 1 and c{core}.needs_tick(cycle):")
                with w.indent():
                    w.line(f"c{core}.tick(cycle)")
            w.line("horizon = NO_EVENT")
            for plan in plans:
                _emit_phase3(w, plan, diagnostics)
            w.line("if only is not None:")
            with w.indent():
                w.line("if only.state is done:")
                with w.indent():
                    w.line("break")
            w.line("else:")
            with w.indent():
                w.line("for _c in observed_cores:")
                with w.indent():
                    w.line("if _c.state is not done:")
                    with w.indent():
                        w.line("break")
                w.line("else:")
                with w.indent():
                    w.line("break")
            w.line("if cycle >= max_cycles:")
            with w.indent():
                w.line("timed_out = True")
                w.line("break")
            for core in range(cores):
                if (replay_mask >> core) & 1:
                    # No READY state on a replay core: only the end of an
                    # executing segment contributes a horizon.
                    w.line(f"if c{core}.state is executing:")
                    with w.indent():
                        w.line(f"_ch = c{core}._busy_until")
                        w.line("if _ch < horizon:")
                        with w.indent():
                            w.line("horizon = _ch")
                    continue
                w.line(f"_s = c{core}.state")
                w.line("if _s is executing:")
                with w.indent():
                    w.line(f"_ch = c{core}._busy_until")
                    w.line("if _ch < horizon:")
                    with w.indent():
                        w.line("horizon = _ch")
                w.line("elif _s is ready and cycle + 1 < horizon:")
                with w.indent():
                    w.line("horizon = cycle + 1")
            w.line("if horizon <= cycle:")
            with w.indent():
                w.line("cycle += 1")
            w.line("elif horizon <= max_cycles:")
            with w.indent():
                w.line("cycle = horizon")
            w.line("else:")
            with w.indent():
                w.line("cycle = max_cycles")
        w.line("system.pmc.cycles = cycle + 1")
        w.line("system.current_cycle = cycle")
        w.line("return cycle, timed_out")
    return w.render()


# --------------------------------------------------------------------------- #
# Digest-keyed compile cache.
# --------------------------------------------------------------------------- #


def loop_cache_key(config: ArchConfig) -> str:
    """Content digest selecting a compiled loop for ``config``.

    ``ArchConfig.digest()`` minus the ``engine`` field: the engine choice
    selects *which* loop runs but never changes what the specialised loop
    must do, so ``engine="event"`` and ``engine="codegen"`` twins share one
    compiled loop.  Everything else that shapes the generated source — the
    topology chain, the arbiter set, slot lengths, core and bank counts —
    is part of the digest, so distinct platforms cannot collide.
    """
    payload = config.to_dict()
    payload.pop("engine", None)
    return canonical_digest(payload)


@dataclass(frozen=True)
class CompiledLoop:
    """A compiled specialised loop plus its provenance.

    Attributes:
        key: the :func:`loop_cache_key` digest the loop was compiled for.
        source: the generated module source (attached to failures by the
            equivalence harness; snapshot by the golden tests).
        run: the compiled entry point,
            ``run(system, observed, max_cycles) -> (cycle, timed_out)``.
        diagnostics: True for the self-checking variant.
    """

    key: str
    source: str
    run: Callable[..., Tuple[int, bool]]
    diagnostics: bool


#: (digest, diagnostics, replay_mask) -> compiled loop.  The replay mask is
#: part of the slot because a masked loop hard-codes which cores get the
#: reduced replay blocks; ``0`` is the plain (and pre-replay) variant.
_COMPILE_CACHE: Dict[Tuple[str, bool, int], CompiledLoop] = {}


def _compile(source: str, key: str, diagnostics: bool) -> CompiledLoop:
    namespace: Dict[str, object] = {}
    exec(  # noqa: S102 - compiling our own generated source is the feature
        compile(source, f"<codegen:{key[:12]}>", "exec"), namespace
    )
    run = namespace["run"]
    assert callable(run)
    return CompiledLoop(key=key, source=source, run=run, diagnostics=diagnostics)


def compile_loop(
    config: ArchConfig, diagnostics: bool = False, replay_mask: int = 0
) -> CompiledLoop:
    """Compile (or fetch from the per-process cache) the loop for ``config``.

    Cached the way campaign results are — content-addressed by
    :func:`loop_cache_key` — so every configuration with an equal digest
    reuses the identical :class:`CompiledLoop` object.  The diagnostics and
    replay-masked variants are cached under their own slots and never serve
    normal runs.
    """
    key = loop_cache_key(config)
    cache_key = (key, diagnostics, replay_mask)
    loop = _COMPILE_CACHE.get(cache_key)
    if loop is None:
        source = generate_loop_source(
            config, diagnostics=diagnostics, replay_mask=replay_mask
        )
        loop = _compile(source, key, diagnostics)
        _COMPILE_CACHE[cache_key] = loop
    return loop


def regenerate(
    config: ArchConfig, diagnostics: bool = False, replay_mask: int = 0
) -> CompiledLoop:
    """Drop any cached loop for ``config`` and compile a fresh one.

    The equivalence harness's second chance: after a three-way mismatch it
    regenerates (usually with ``diagnostics=True``) so a stale or corrupted
    cache entry cannot mask — or cause — the divergence being reported.
    """
    key = loop_cache_key(config)
    _COMPILE_CACHE.pop((key, diagnostics, replay_mask), None)
    return compile_loop(config, diagnostics=diagnostics, replay_mask=replay_mask)


def clear_compile_cache() -> None:
    """Empty the per-process compile cache (test isolation hook)."""
    _COMPILE_CACHE.clear()


def compile_cache_size() -> int:
    """Number of cached compiled loops (both variants)."""
    return len(_COMPILE_CACHE)


# --------------------------------------------------------------------------- #
# Bind-time guards and the engine.
# --------------------------------------------------------------------------- #


def specialisation_mismatch(system: "System") -> Optional[str]:
    """Why ``system`` cannot run the generated loop, or ``None`` if it can.

    The generated source is derived from the *configuration*; this guard
    verifies the *built* chain matches it — same resource classes in the
    same order, arbiter instances of exactly the expected built-in classes
    (a subclass may override selection), TDMA slots as configured and
    identity bank priorities.  Any mismatch — a registered topology or
    policy, an external arbiter, a resource subclass — returns a reason and
    :class:`CodegenEngine` falls back to the generic ``EventScheduler``.
    """
    config = system.config
    try:
        plans = _resource_plans(config)
    except UnspecialisableError as exc:
        return str(exc)
    resources = system.resources
    if len(resources) != len(plans):
        return (
            f"chain has {len(resources)} resources, expected {len(plans)} "
            f"for topology {config.topology.name!r}"
        )
    if len(system.cores) != config.num_cores:
        return "core count does not match the configuration"
    for plan, resource in zip(plans, resources):
        if isinstance(plan, _ChannelPlan):
            if type(resource) is not Bus:
                return f"{plan.label} is {type(resource).__name__}, not Bus"
            if resource.num_ports != plan.ports:
                return f"{plan.label} has {resource.num_ports} ports, expected {plan.ports}"
            arbiter = resource.arbiter
            if type(arbiter) is not _ARBITER_CLASSES[plan.policy]:
                return (
                    f"{plan.label} arbiter is {type(arbiter).__name__}, "
                    f"not the built-in {plan.policy!r} class"
                )
            if plan.policy == "tdma" and arbiter.slot_cycles != plan.slot:
                return f"{plan.label} TDMA slot differs from the configuration"
        elif isinstance(plan, _PlainMemPlan):
            if type(resource) is not MemoryController:
                return (
                    f"{plan.label} is {type(resource).__name__}, "
                    "not the plain MemoryController"
                )
        else:
            if type(resource) is not BankQueuedMemoryController:
                return (
                    f"{plan.label} is {type(resource).__name__}, "
                    "not BankQueuedMemoryController"
                )
            if resource.num_ports != plan.ports:
                return f"{plan.label} has {resource.num_ports} ports, expected {plan.ports}"
            if len(resource.bank_arbiters) != plan.banks:
                return f"{plan.label} bank count does not match the configuration"
            for bank_arbiter in resource.bank_arbiters:
                if type(bank_arbiter) is not _ARBITER_CLASSES[plan.policy]:
                    return (
                        f"{plan.label} bank arbiter is "
                        f"{type(bank_arbiter).__name__}, not the built-in "
                        f"{plan.policy!r} class"
                    )
                if plan.policy == "tdma" and bank_arbiter.slot_cycles != plan.slot:
                    return f"{plan.label} TDMA slot differs from the configuration"
                if plan.policy == "fixed_priority" and any(
                    bank_arbiter._rank[port] != port
                    for port in range(plan.ports)
                ):
                    return f"{plan.label} bank priorities are not the identity"
    return None


class CodegenEngine:
    """The ``codegen`` engine: run the chain-specialised generated loop.

    Binds the compiled loop for ``system.config`` at construction time (one
    generation + compile per configuration digest per process, then cache
    hits).  When :func:`specialisation_mismatch` reports anything the
    generator cannot specialise, the engine holds a generic
    :class:`~repro.sim.scheduler.EventScheduler` instead and delegates every
    run to it — ``fallback_reason`` says why.

    Args:
        system: the :class:`repro.sim.system.System` to drive.
    """

    name = "codegen"

    def __init__(self, system: "System") -> None:
        from .scheduler import EventScheduler

        self.system = system
        self.fallback_reason = specialisation_mismatch(system)
        if self.fallback_reason is None:
            self.compiled: Optional[CompiledLoop] = compile_loop(system.config)
            self._fallback: Optional["EventScheduler"] = None
        else:
            self.compiled = None
            self._fallback = EventScheduler(system)

    def run(self, observed: List[int], max_cycles: int) -> Tuple[int, bool]:
        """Run the generated loop (or the generic fallback); returns the
        final cycle and whether the run timed out."""
        if self.compiled is None:
            assert self._fallback is not None
            return self._fallback.run(observed, max_cycles)
        return self.compiled.run(self.system, observed, max_cycles)
