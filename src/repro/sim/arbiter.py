"""Arbitration policies and their registry.

The paper targets round-robin (RR) arbitration, whose worst-case single
request delay is ``ubd = (Nc - 1) * lbus``.  For the ablation studies we also
provide first-come-first-served (FIFO by readiness time), fixed priority and
TDMA arbiters, mirroring the policies discussed in the related work section
(Kelter's TDMA analysis, Paolieri's RR bus, Jalle's policy comparison).

An arbiter only decides *which* pending request is granted when a shared
resource is free; all timing (occupancy, completion delivery) is handled by
the resource it is attached to — the bus (:class:`repro.sim.bus.Bus`) or a
per-bank memory-controller queue
(:class:`repro.sim.memctrl.BankQueuedMemoryController`).

Policies are *registered*, not hardwired: the :func:`register_arbiter`
decorator adds a factory to :data:`ARBITER_REGISTRY`, and every consumer —
:func:`make_arbiter`, the bank-queue controller, the CLI's ``list``
subcommand and the campaign ``--arbiter`` axis — reads the registry, so a
new policy plugs in without touching the simulator core::

    @register_arbiter("lottery", "deterministic weighted lottery")
    def _build_lottery(num_ports: int, tdma_slot: int) -> Arbiter:
        return LotteryArbiter(num_ports)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..config import BusConfig
from ..errors import ConfigurationError, SimulationError
from ..registry import Registry


class Arbiter:
    """Base class for all arbitration policies.

    Args:
        num_ports: number of request ports attached to the bus (one per core
            plus, optionally, one response port for split transactions).
    """

    #: Short policy name used by factories, reports and configuration files.
    policy_name = "abstract"

    #: True when the attached resource should call :meth:`select_with_ready`
    #: (passing per-port readiness cycles) instead of :meth:`select`.  A
    #: capability flag rather than an ``isinstance`` check so registered
    #: third-party policies can opt in.
    uses_ready_order = False

    def __init__(self, num_ports: int) -> None:
        if num_ports < 1:
            raise ConfigurationError("an arbiter needs at least one port")
        self.num_ports = num_ports

    def select(self, cycle: int, pending_ports: Sequence[int]) -> int:
        """Return the port that wins arbitration at ``cycle``.

        Args:
            cycle: current simulation cycle.
            pending_ports: ports that currently hold a ready request; never
                empty when this method is called.
        """
        raise NotImplementedError

    def choose(
        self,
        cycle: int,
        pending_ports: Sequence[int],
        ready_cycles: Optional[Sequence[int]] = None,
    ) -> int:
        """Dispatch to :meth:`select` or ``select_with_ready``.

        The single place that interprets :attr:`uses_ready_order`, shared by
        every resource that hosts an arbiter (the bus, the bank queues), so
        the capability contract cannot drift between them.  ``ready_cycles``
        must be supplied (parallel to ``pending_ports``) when the policy
        declares ``uses_ready_order``.
        """
        if self.uses_ready_order:
            if ready_cycles is None:
                raise SimulationError(
                    f"{self.policy_name} arbitration needs per-port readiness cycles"
                )
            return self.select_with_ready(cycle, pending_ports, ready_cycles)
        return self.select(cycle, pending_ports)

    def notify_grant(self, cycle: int, port: int) -> None:
        """Inform the arbiter that ``port`` was granted at ``cycle``."""

    def next_event_cycle(self, cycle: int, port: int) -> int:
        """Earliest cycle >= ``cycle`` at which ``port`` could win a free bus.

        This is the arbiter's contribution to the event-driven scheduler's
        horizon (see :mod:`repro.sim.scheduler`): work-conserving policies
        can grant a ready request immediately, so the base implementation
        returns ``cycle``; schedule-driven policies (TDMA) override it with
        the start of the port's next eligible slot.  The contract is that no
        grant may happen strictly before the returned cycle — returning a
        too-early cycle only costs speed, returning a too-late one would
        change timing.
        """
        del port
        return cycle

    def reset(self) -> None:
        """Restore the arbiter's initial state."""


class RoundRobinArbiter(Arbiter):
    """Work-conserving round-robin arbitration (the paper's policy).

    After port ``i`` is granted, the next arbitration scans ports in the
    order ``i+1, i+2, ..., i`` (Section 2 of the paper), so the port granted
    most recently becomes the lowest-priority one.
    """

    policy_name = "round_robin"

    def __init__(self, num_ports: int, initial_owner: int = -1) -> None:
        super().__init__(num_ports)
        if not -1 <= initial_owner < num_ports:
            raise ConfigurationError(
                f"initial owner {initial_owner} out of range for {num_ports} ports"
            )
        self._initial_owner = initial_owner
        self._last_granted = initial_owner

    @property
    def last_granted(self) -> int:
        """Port granted most recently, or the initial owner if none yet."""
        return self._last_granted

    def priority_order(self) -> List[int]:
        """Return the current scan order from highest to lowest priority."""
        start = (self._last_granted + 1) % self.num_ports
        return [(start + offset) % self.num_ports for offset in range(self.num_ports)]

    def select(self, cycle: int, pending_ports: Sequence[int]) -> int:
        del cycle
        if len(pending_ports) == 1:
            return pending_ports[0]
        pending = set(pending_ports)
        # Scan i+1, i+2, ... without materialising priority_order(): this
        # runs once per grant and dominates saturated-bus arbitration.
        port = self._last_granted
        num_ports = self.num_ports
        for _ in range(num_ports):
            port += 1
            if port >= num_ports:
                port = 0
            if port in pending:
                return port
        raise SimulationError("round-robin arbiter called with no pending ports")

    def notify_grant(self, cycle: int, port: int) -> None:
        del cycle
        self._last_granted = port

    def reset(self) -> None:
        self._last_granted = self._initial_owner


class FifoArbiter(Arbiter):
    """First-come-first-served arbitration by request readiness time.

    Ties (identical readiness cycles) are broken by port index, which makes
    the policy deterministic.  The bus passes readiness times through
    :meth:`select_with_ready`; plain :meth:`select` falls back to port order.
    """

    policy_name = "fifo"
    uses_ready_order = True

    def select(self, cycle: int, pending_ports: Sequence[int]) -> int:
        del cycle
        if not pending_ports:
            raise SimulationError("FIFO arbiter called with no pending ports")
        return min(pending_ports)

    def select_with_ready(
        self, cycle: int, pending_ports: Sequence[int], ready_cycles: Sequence[int]
    ) -> int:
        """Select the pending port whose request became ready first."""
        del cycle
        if not pending_ports:
            raise SimulationError("FIFO arbiter called with no pending ports")
        pairs = sorted(zip(ready_cycles, pending_ports))
        return pairs[0][1]


class FixedPriorityArbiter(Arbiter):
    """Static priority arbitration: lower port index always wins.

    This policy is *not* time composable — a high-priority requester can
    starve the others — and serves as a contrast case in the ablation
    benchmarks.
    """

    policy_name = "fixed_priority"

    def __init__(self, num_ports: int, priority: Optional[Sequence[int]] = None) -> None:
        super().__init__(num_ports)
        if priority is None:
            priority = list(range(num_ports))
        if sorted(priority) != list(range(num_ports)):
            raise ConfigurationError(
                "priority must be a permutation of port indices "
                f"0..{num_ports - 1}, got {list(priority)}"
            )
        #: priority[i] gives the rank of port i (0 = highest).
        self._rank = {port: rank for rank, port in enumerate(priority)}

    def select(self, cycle: int, pending_ports: Sequence[int]) -> int:
        del cycle
        if not pending_ports:
            raise SimulationError("fixed-priority arbiter called with no pending ports")
        return min(pending_ports, key=lambda port: self._rank[port])


class TdmaArbiter(Arbiter):
    """Time-division multiple access arbitration.

    Time is divided into fixed slots of ``slot_cycles``; slot ``s`` belongs to
    port ``s mod num_ports``.  A request is only granted during its owner's
    slot and only if the remaining slot time can hold a full transaction of
    ``slot_cycles`` (the bus enforces the occupancy; the arbiter enforces
    ownership).  TDMA is not work conserving, so it wastes bandwidth when the
    slot owner has nothing to send — the classic contrast with round robin.
    """

    policy_name = "tdma"

    def __init__(self, num_ports: int, slot_cycles: int) -> None:
        super().__init__(num_ports)
        if slot_cycles < 1:
            raise ConfigurationError("TDMA slot length must be >= 1 cycle")
        self.slot_cycles = slot_cycles

    def slot_owner(self, cycle: int) -> int:
        """Return the port owning the TDMA slot active at ``cycle``."""
        return (cycle // self.slot_cycles) % self.num_ports

    def cycles_left_in_slot(self, cycle: int) -> int:
        """Return how many cycles remain in the slot active at ``cycle``."""
        return self.slot_cycles - (cycle % self.slot_cycles)

    def select(self, cycle: int, pending_ports: Sequence[int]) -> int:
        owner = self.slot_owner(cycle)
        if owner in set(pending_ports) and self.cycles_left_in_slot(cycle) == self.slot_cycles:
            return owner
        return -1  # nobody may start a transaction this cycle

    def next_grant_opportunity(self, cycle: int, port: int) -> int:
        """First cycle at or after ``cycle`` where ``port`` may start a transaction."""
        slot_index = cycle // self.slot_cycles
        for offset in range(2 * self.num_ports + 1):
            candidate = slot_index + offset
            if candidate % self.num_ports == port % self.num_ports:
                start = candidate * self.slot_cycles
                if start >= cycle:
                    return start
        raise SimulationError("TDMA schedule search failed")  # pragma: no cover

    def next_event_cycle(self, cycle: int, port: int) -> int:
        """TDMA horizon: the start of ``port``'s next slot (see base class)."""
        return self.next_grant_opportunity(cycle, port)


# --------------------------------------------------------------------------- #
# Registry-backed factory.
# --------------------------------------------------------------------------- #

#: Factory signature: ``factory(num_ports, tdma_slot) -> Arbiter``.  The slot
#: length is the only policy parameter any built-in needs; policies that do
#: not use it simply ignore it.
ArbiterFactory = Callable[[int, int], "Arbiter"]


@dataclass(frozen=True)
class ArbiterEntry:
    """One registered arbitration policy."""

    name: str
    factory: ArbiterFactory
    description: str = ""


#: Policy name -> registered entry, in registration order, on the shared
#: :class:`repro.registry.Registry` utility (duplicate rejection, listing
#: and lookup errors in one place).  The built-ins below register themselves
#: at import time; ``repro.config`` validates configuration fields against
#: these keys (lazily, so runtime registrations are honoured) and
#: ``repro-bounds list`` prints them.
ARBITER_REGISTRY: Registry[ArbiterEntry] = Registry("arbitration policy")


def register_arbiter(name: str, description: str = ""):
    """Class/function decorator registering an arbiter factory under ``name``.

    The decorated callable must accept ``(num_ports, tdma_slot)`` and return
    an :class:`Arbiter`.  Registering an already-taken name is a
    configuration error — silently replacing a policy would let two runs
    with identical configurations simulate different platforms.
    """

    def decorator(factory: ArbiterFactory) -> ArbiterFactory:
        ARBITER_REGISTRY.register(
            name, ArbiterEntry(name=name, factory=factory, description=description)
        )
        return factory

    return decorator


def registered_arbiters() -> Tuple[str, ...]:
    """Names of every registered arbitration policy, in registration order."""
    return ARBITER_REGISTRY.names()


def create_arbiter(policy: str, num_ports: int, *, tdma_slot: int = 9) -> Arbiter:
    """Instantiate the registered policy ``policy`` for ``num_ports`` ports."""
    return ARBITER_REGISTRY.require(policy).factory(num_ports, tdma_slot)


def make_arbiter(config: BusConfig, num_ports: int) -> Arbiter:
    """Create the arbiter selected by ``config.arbitration`` for ``num_ports`` ports."""
    return create_arbiter(config.arbitration, num_ports, tdma_slot=config.tdma_slot)


@register_arbiter("round_robin", "work-conserving round robin (the paper's policy)")
def _build_round_robin(num_ports: int, tdma_slot: int) -> Arbiter:
    del tdma_slot
    return RoundRobinArbiter(num_ports)


@register_arbiter("fifo", "first-come-first-served by request readiness time")
def _build_fifo(num_ports: int, tdma_slot: int) -> Arbiter:
    del tdma_slot
    return FifoArbiter(num_ports)


@register_arbiter("fixed_priority", "static priority: lower port index wins")
def _build_fixed_priority(num_ports: int, tdma_slot: int) -> Arbiter:
    del tdma_slot
    return FixedPriorityArbiter(num_ports)


@register_arbiter("tdma", "time-division slots, one per port (not work conserving)")
def _build_tdma(num_ports: int, tdma_slot: int) -> Arbiter:
    return TdmaArbiter(num_ports, tdma_slot)
