"""Per-core store buffer.

The paper's reference architecture (Section 5.3) has a store buffer that
"keeps store requests and allows instructions to proceed in the pipeline
unless the buffer is full, i.e. a store request is considered completed as
soon as it is put in the buffer".  This is what makes the store variant of
the rsk-nop experiment (Figure 7(b)) qualitatively different from the load
variant: once the injection time between stores exceeds the contended drain
rate of the buffer, the buffer completely hides the bus latency and the
observed slowdown collapses to zero.

The buffer is a bounded FIFO.  Entries are drained through the core's bus
port one at a time; the head entry is eligible for the bus as soon as it
reaches the head (back-to-back drains therefore have an injection time of
zero, which is why saturated store traffic does observe the full ``ubd``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

from ..config import StoreBufferConfig
from ..errors import SimulationError


@dataclass
class StoreEntry:
    """One buffered store."""

    addr: int
    enqueue_cycle: int


class StoreBuffer:
    """Bounded FIFO of pending stores for one core.

    Args:
        config: capacity of the buffer.
        core_id: owning core, used only for error messages.
    """

    def __init__(self, config: StoreBufferConfig, core_id: int = 0) -> None:
        self.capacity = config.entries
        self.core_id = core_id
        self._entries: Deque[StoreEntry] = deque()
        #: True while the head entry is out on the bus (posted, not completed).
        self._head_in_flight = False
        self.total_enqueued = 0
        self.total_drained = 0
        #: Count of rejected pushes.  This is a *polling* counter: a stalled
        #: core retries once per processed cycle, so its value depends on the
        #: simulation engine (the event engine skips no-op retry cycles).  It
        #: is a debugging aid only and must never feed results, PMCs or
        #: artifacts — everything observable is engine-independent.
        self.full_rejections = 0

    # ------------------------------------------------------------------ #
    # Core-side interface.
    # ------------------------------------------------------------------ #
    def is_full(self) -> bool:
        """True when a new store cannot be accepted."""
        return len(self._entries) >= self.capacity

    def is_empty(self) -> bool:
        """True when no store is buffered."""
        return not self._entries

    def occupancy(self) -> int:
        """Number of buffered stores (including one possibly on the bus)."""
        return len(self._entries)

    def try_push(self, addr: int, cycle: int) -> bool:
        """Accept a store if there is room; return whether it was accepted."""
        if self.is_full():
            self.full_rejections += 1
            return False
        self._entries.append(StoreEntry(addr=addr, enqueue_cycle=cycle))
        self.total_enqueued += 1
        return True

    def forwards(self, addr: int, line_size: int) -> bool:
        """True if a buffered store covers the same line as ``addr``.

        Used for store-to-load forwarding: a load that hits a buffered store
        does not need to reach the bus.  Matching at line granularity errs on
        the side of forwarding, which is harmless for a timing model that
        does not track data values.
        """
        if not self._entries:
            return False
        line = addr - (addr % line_size)
        return any(entry.addr - (entry.addr % line_size) == line for entry in self._entries)

    # ------------------------------------------------------------------ #
    # Bus-side interface (driven by the core each cycle).
    # ------------------------------------------------------------------ #
    def head_ready_to_issue(self) -> Optional[StoreEntry]:
        """Return the head entry if it may be posted on the bus now."""
        if self._head_in_flight or not self._entries:
            return None
        return self._entries[0]

    def mark_head_issued(self) -> None:
        """Record that the head entry has been posted on the bus."""
        if not self._entries:
            raise SimulationError(f"store buffer {self.core_id}: issue with no entries")
        if self._head_in_flight:
            raise SimulationError(f"store buffer {self.core_id}: head already in flight")
        self._head_in_flight = True

    def complete_head(self, cycle: int) -> StoreEntry:
        """Pop the head entry after its bus transaction completed."""
        del cycle
        if not self._entries or not self._head_in_flight:
            raise SimulationError(
                f"store buffer {self.core_id}: completion without an in-flight head"
            )
        entry = self._entries.popleft()
        self._head_in_flight = False
        self.total_drained += 1
        return entry

    @property
    def head_in_flight(self) -> bool:
        """True while the head entry's bus transaction is outstanding."""
        return self._head_in_flight

    def reset(self) -> None:
        """Drop every entry (statistics preserved)."""
        self._entries.clear()
        self._head_in_flight = False
