"""Shared processor-to-L2 bus with pluggable arbitration.

The bus owns request queues (one per port), the arbitration timing and the
occupancy bookkeeping.  What a granted transaction *does* — looking up the
L2, scheduling a DRAM access, waking a core — is decided by the memory
subsystem through two callbacks supplied by :class:`repro.sim.system.System`:

* ``service_callback(request, cycle)`` is invoked at grant time and must
  return the bus occupancy in cycles for this transaction;
* ``request.on_complete(request, cycle)`` is invoked when the occupancy ends
  and the data is usable by the owner.

Each simulation cycle has two bus phases, called by the system in this order:

1. :meth:`Bus.deliver` — finish a transaction whose occupancy ends now, so
   the owning core can already use the data in this cycle;
2. :meth:`Bus.arbitrate` — after all cores have ticked (and possibly posted
   new requests ready in this very cycle), grant the bus if it is free.

This ordering realises the timing semantics of DESIGN.md Section 5 and is
what produces the synchrony effect the paper studies.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional

from ..errors import SimulationError
from .arbiter import Arbiter
from .pmc import PerformanceCounters, ResourceCounters
from .resource import NO_EVENT, EventPort
from .trace import RequestRecord, TraceRecorder

#: Signature of the grant-time callback: (request, cycle) -> bus occupancy.
ServiceCallback = Callable[["BusRequest", int], int]
#: Signature of the completion callback: (request, cycle) -> None.
CompletionCallback = Callable[["BusRequest", int], None]


class BusRequest:
    """One bus transaction from readiness to completion.

    A ``__slots__`` class rather than a dataclass: request objects are
    created for every memory access of a simulation, so construction cost
    matters.

    Attributes:
        port: issuing port (core id, or the response port for memory data).
        kind: ``"load"``, ``"store"``, ``"ifetch"`` or ``"response"``.
        addr: target byte address.
        ready_cycle: first cycle at which the arbiter may consider the request.
        origin_core: core the transaction ultimately belongs to (equals
            ``port`` except for split-transaction responses).
        on_complete: callback invoked when the transaction finishes.
        service_cycles: bus occupancy, filled in at grant time.
        record: the trace record attached to this request, if tracing is on.
    """

    __slots__ = (
        "port",
        "kind",
        "addr",
        "ready_cycle",
        "origin_core",
        "on_complete",
        "service_cycles",
        "grant_cycle",
        "complete_cycle",
        "record",
    )

    def __init__(
        self,
        port: int,
        kind: str,
        addr: int,
        ready_cycle: int,
        origin_core: int = -1,
        on_complete: Optional[CompletionCallback] = None,
        service_cycles: int = 0,
        grant_cycle: int = -1,
        complete_cycle: int = -1,
        record: Optional[RequestRecord] = None,
    ) -> None:
        self.port = port
        self.kind = kind
        self.addr = addr
        self.ready_cycle = ready_cycle
        self.origin_core = origin_core if origin_core >= 0 else port
        self.on_complete = on_complete
        self.service_cycles = service_cycles
        self.grant_cycle = grant_cycle
        self.complete_cycle = complete_cycle
        self.record = record

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BusRequest(port={self.port}, kind={self.kind!r}, addr={self.addr:#x}, "
            f"ready_cycle={self.ready_cycle}, grant_cycle={self.grant_cycle}, "
            f"complete_cycle={self.complete_cycle})"
        )

    @property
    def granted(self) -> bool:
        """True once the arbiter has granted this request."""
        return self.grant_cycle >= 0


class Bus(EventPort):
    """A shared bus channel: per-port queues, one transaction in flight.

    The bus is the first :class:`repro.sim.resource.SharedResource` of every
    topology: it implements the deliver/arbitrate lifecycle, the event-port
    surface (cached horizon, invalidation, wake targets), and the PMC
    surface (a per-channel section of the attached counter block).  A
    topology may instantiate it more than once — the ``split_bus`` topology
    composes a request channel and a response channel, distinguished by
    ``resource_name``.
    """

    def __init__(
        self,
        num_ports: int,
        arbiter: Arbiter,
        service_callback: ServiceCallback,
        trace: Optional[TraceRecorder] = None,
        pmc: Optional[PerformanceCounters] = None,
        resource_name: str = "bus",
    ) -> None:
        if num_ports < 1:
            raise SimulationError("bus needs at least one port")
        if arbiter.num_ports != num_ports:
            raise SimulationError(
                f"arbiter built for {arbiter.num_ports} ports attached to a "
                f"{num_ports}-port bus"
            )
        #: SharedResource protocol surface (see :mod:`repro.sim.resource`).
        self.resource_name = resource_name
        self.num_ports = num_ports
        self.arbiter = arbiter
        self.service_callback = service_callback
        self.trace = trace
        self.pmc = pmc
        self._queues: List[Deque[BusRequest]] = [deque() for _ in range(num_ports)]
        self._current: Optional[BusRequest] = None
        self._busy_until = 0
        #: Number of queued (not yet granted) requests across all ports; a
        #: cheap counter so the per-cycle arbitration fast path avoids
        #: scanning the queues when nothing is pending.
        self._queued_total = 0
        #: Number of ports whose queue is currently non-empty, maintained by
        #: :meth:`post` / :meth:`_grant_port` so the traced-post contention
        #: snapshot is O(1) instead of a per-post scan over all queues.
        self._nonempty_ports = 0
        #: Lazily cached PMC section for this channel (see :meth:`deliver`).
        self._pmc_channel: Optional[ResourceCounters] = None
        self._is_demand_channel = resource_name == "bus"
        self.granted_count = 0
        self._init_event_port()

    # ------------------------------------------------------------------ #
    # Posting requests.
    # ------------------------------------------------------------------ #
    def post(self, request: BusRequest) -> None:
        """Queue ``request`` on its port and snapshot contention information."""
        port = request.port
        if not 0 <= port < self.num_ports:
            raise SimulationError(f"request posted on invalid port {port}")
        queue = self._queues[port]
        trace = self.trace
        if trace is not None and trace.enabled:
            # The contention snapshot comes from the maintained non-empty
            # port count, so traced posting stays O(1) (posting is hot).
            contenders = self._nonempty_ports - (1 if queue else 0)
            current = self._current
            if current is not None and current.port != port:
                # A transaction currently holding the bus is also a ready
                # contender from the point of view of the request being posted.
                contenders += 1
            # Positional form of RequestRecord(port, kind, addr, ready_cycle,
            # grant_cycle, complete_cycle, service_cycles, contenders_at_ready,
            # bus_busy_at_ready, resource, origin_core): posting is the
            # hottest traced path and keyword marshalling is measurable here.
            request.record = RequestRecord(
                port,
                request.kind,
                request.addr,
                request.ready_cycle,
                -1,
                -1,
                0,
                contenders,
                current is not None and request.ready_cycle < self._busy_until,
                self.resource_name,
                request.origin_core,
            )
            # Recorded at post time so requests still in flight when the run
            # terminates remain visible; completion fills in the remaining
            # fields in place.
            trace.record(request.record)
        if not queue:
            self._nonempty_ports += 1
        queue.append(request)
        self._queued_total += 1
        # A post can only create an earlier event on a *free* channel: while
        # a transaction is in flight the horizon is its delivery at
        # busy_until regardless of the queues, so the cache stays valid (the
        # delivery itself re-invalidates, and the recompute sees the queue).
        if self._current is None:
            self._horizon_dirty = True

    def pending_count(self, port: int) -> int:
        """Number of queued (not yet granted) requests on ``port``."""
        return len(self._queues[port])

    def has_pending(self) -> bool:
        """True if any port has a queued request."""
        return any(self._queues)

    def is_busy_at(self, cycle: int) -> bool:
        """True if a transaction occupies the bus during ``cycle``."""
        return self._current is not None and cycle < self._busy_until

    @property
    def busy_until(self) -> int:
        """First cycle at which the bus will be free again."""
        return self._busy_until if self._current is not None else 0

    @property
    def current_request(self) -> Optional[BusRequest]:
        """The transaction currently occupying the bus, if any."""
        return self._current

    # ------------------------------------------------------------------ #
    # Per-cycle phases.
    # ------------------------------------------------------------------ #
    def deliver(self, cycle: int) -> Optional[BusRequest]:
        """Phase 1: finish the in-flight transaction if its occupancy ends now.

        Returns the completed request, or ``None`` when nothing completed.
        The completed transaction's owning core is published through
        ``wake_targets`` (reset on every call), which is how the event
        engine learns which cores a delivery may have woken without
        interpreting the request itself.
        """
        wake = self.wake_targets
        if wake:
            wake.clear()
        if self._current is None or cycle < self._busy_until:
            return None
        request = self._current
        self._current = None
        self._horizon_dirty = True
        request.complete_cycle = cycle
        if request.record is not None:
            request.record.complete_cycle = cycle
        pmc = self.pmc
        if pmc is not None:
            # Inline of PerformanceCounters.note_bus_service (kept in sync
            # with it) with the channel section cached after its lazy
            # creation: delivery runs once per transaction, and the method
            # call plus per-call dict lookup are measurable there.
            wait = request.grant_cycle - request.ready_cycle
            service = request.service_cycles
            channel = self._pmc_channel
            if channel is None:
                channel = pmc.resources.get(self.resource_name)
                if channel is None:
                    channel = pmc.resources[self.resource_name] = ResourceCounters()
                self._pmc_channel = channel
            if self._is_demand_channel:
                pmc.bus_busy_cycles += service
            channel.requests += 1
            channel.busy_cycles += service
            channel.wait_cycles += wait
            if wait > channel.max_wait:
                channel.max_wait = wait
            origin = request.origin_core
            if 0 <= origin < pmc.num_cores:
                counters = pmc.core[origin]
                counters.bus_requests += 1
                counters.bus_busy_cycles += service
                counters.contention_cycles += wait
        wake.append(request.origin_core)
        if request.on_complete is not None:
            request.on_complete(request, cycle)
        return request

    def arbitrate(self, cycle: int) -> Optional[BusRequest]:
        """Phase 2: grant one pending request if the bus is free.

        Returns the granted request, or ``None`` when nothing was granted
        (bus busy, no ready request, or a TDMA slot mismatch).
        """
        if self._current is not None or self._queued_total == 0:
            return None
        pending_ports = [
            port
            for port, queue in enumerate(self._queues)
            if queue and queue[0].ready_cycle <= cycle
        ]
        if not pending_ports:
            return None
        ready_cycles = None
        if self.arbiter.uses_ready_order:
            ready_cycles = [self._queues[port][0].ready_cycle for port in pending_ports]
        winner = self.arbiter.choose(cycle, pending_ports, ready_cycles)
        if winner < 0:
            return None  # TDMA: no eligible slot owner this cycle
        return self._grant_port(winner, cycle)

    def _grant_port(self, port: int, cycle: int) -> BusRequest:
        """Grant the head request of ``port`` and start its occupancy.

        The winner-independent half of :meth:`arbitrate`: queue bookkeeping,
        occupancy timing, trace/PMC stamps and the arbiter grant notification.
        Shared with the generated loops of :mod:`repro.sim.codegen`, whose
        specialised selection logic picks ``port`` and then delegates here so
        the grant side effects cannot drift between engines.  ``port`` must
        hold a ready request on a free channel.
        """
        queue = self._queues[port]
        request = queue.popleft()
        if not queue:
            self._nonempty_ports -= 1
        self._queued_total -= 1
        self._horizon_dirty = True
        request.grant_cycle = cycle
        request.service_cycles = self.service_callback(request, cycle)
        if request.service_cycles < 1:
            raise SimulationError(
                f"service callback returned non-positive occupancy for {request.kind}"
            )
        self._busy_until = cycle + request.service_cycles
        self._current = request
        self.granted_count += 1
        if request.record is not None:
            request.record.grant_cycle = cycle
            request.record.service_cycles = request.service_cycles
        self.arbiter.notify_grant(cycle, port)
        return request

    # ------------------------------------------------------------------ #
    # Event-horizon support (see repro.sim.scheduler).
    # ------------------------------------------------------------------ #
    def next_event_cycle(self, cycle: int) -> int:
        """Earliest future cycle at which the bus state can change.

        While a transaction is in flight the next event is its delivery at
        ``busy_until``.  On a free bus, the next event is the earliest cycle
        at which a queued request both is ready and could win arbitration —
        the arbiter contributes the latter through
        :meth:`repro.sim.arbiter.Arbiter.next_event_cycle`, which lets
        schedule-driven policies (TDMA) push the horizon to their next slot.
        :data:`~repro.sim.resource.NO_EVENT` means the bus is idle with empty
        queues and will only move again when someone posts a request.
        """
        if self._current is not None:
            return self._busy_until
        if self._queued_total == 0:
            return NO_EVENT
        arbiter = self.arbiter
        horizon = NO_EVENT
        for port, queue in enumerate(self._queues):
            if not queue:
                continue
            ready = queue[0].ready_cycle
            if ready < cycle:
                ready = cycle
            grant = arbiter.next_event_cycle(ready, port)
            if grant < horizon:
                horizon = grant
        return horizon

    #: Backwards-compatible alias for the pre-scheduler skip-ahead API.
    next_activity = next_event_cycle

    def reset(self) -> None:
        """Drop all queued requests and clear the in-flight transaction."""
        for queue in self._queues:
            queue.clear()
        self._current = None
        self._busy_until = 0
        self._queued_total = 0
        self.granted_count = 0
        self.arbiter.reset()
        self._init_event_port()
