"""Cycle-level multicore simulator substrate.

This subpackage implements the platform the paper experiments on: in-order
cores with private L1 caches, a shared round-robin bus, a way-partitioned L2,
a memory controller with a banked DRAM model, per-core store buffers,
performance monitoring counters and a request-level trace.

The top-level entry point is :class:`repro.sim.system.System`.
"""

from .isa import Alu, Instruction, Load, Nop, Program, Store
from .arbiter import (
    Arbiter,
    FifoArbiter,
    FixedPriorityArbiter,
    RoundRobinArbiter,
    TdmaArbiter,
    make_arbiter,
)
from .bus import Bus, BusRequest
from .cache import CacheStats, SetAssociativeCache
from .core import Core
from .dram import Dram
from .l2 import PartitionedL2
from .memctrl import MemoryController
from .pmc import PerformanceCounters
from .scheduler import EventScheduler, SteppedEngine, make_engine
from .store_buffer import StoreBuffer
from .system import System, SystemResult
from .trace import RequestRecord, TraceRecorder

__all__ = [
    "Alu",
    "Arbiter",
    "Bus",
    "BusRequest",
    "CacheStats",
    "Core",
    "Dram",
    "EventScheduler",
    "FifoArbiter",
    "FixedPriorityArbiter",
    "Instruction",
    "Load",
    "MemoryController",
    "Nop",
    "PartitionedL2",
    "PerformanceCounters",
    "Program",
    "RequestRecord",
    "RoundRobinArbiter",
    "SetAssociativeCache",
    "SteppedEngine",
    "Store",
    "StoreBuffer",
    "System",
    "SystemResult",
    "TdmaArbiter",
    "TraceRecorder",
    "make_arbiter",
    "make_engine",
]
