"""Cycle-level multicore simulator substrate.

This subpackage implements the platform the paper experiments on: in-order
cores with private L1 caches, a shared arbitrated bus, a way-partitioned L2,
a memory controller with a banked DRAM model, per-core store buffers,
performance monitoring counters and a request-level trace.  Contention
points implement the :class:`repro.sim.resource.SharedResource` protocol —
including its event-port surface (cached ``horizon``, ``invalidate_horizon``,
``wake_targets``) — and compose into topologies (:mod:`repro.sim.topology`):
the paper's single bus, the bus chained into per-DRAM-bank arbitrated memory
queues, or the NGMP-style split request/response bus pair.

Arbitration policies, simulation engines and topologies are all
registry-backed (``register_arbiter`` / ``register_engine`` /
``register_topology``), so new ones plug in without editing the simulator
core.  Four engines ship built in: the stepped cycle-by-cycle oracle, the
generic event-driven fast path (:mod:`repro.sim.scheduler`), the
``codegen`` engine (:mod:`repro.sim.codegen`), which compiles a run loop
specialised to the configured topology chain and arbiter set and falls
back to the event engine for anything it cannot specialise, and the
``replay`` engine (:mod:`repro.sim.trace`), which captures each core's
demand-request trace once per kernel and streams it through the live
interconnect on every later run, falling back per core on trace-unsafe
programs.

The top-level entry point is :class:`repro.sim.system.System`.
"""

from .isa import Alu, Instruction, Load, Nop, Program, Store
from .arbiter import (
    ARBITER_REGISTRY,
    Arbiter,
    FifoArbiter,
    FixedPriorityArbiter,
    RoundRobinArbiter,
    TdmaArbiter,
    create_arbiter,
    make_arbiter,
    register_arbiter,
    registered_arbiters,
)
from .bus import Bus, BusRequest
from .cache import CacheStats, SetAssociativeCache
from .codegen import (
    CodegenEngine,
    CodegenMismatch,
    CompiledLoop,
    UnspecialisableError,
    compile_loop,
    generate_loop_source,
    loop_cache_key,
    specialisation_mismatch,
)
from .core import Core
from .dram import Dram
from .l2 import PartitionedL2
from .memctrl import BankQueuedMemoryController, MemoryController
from .pmc import PerformanceCounters
from .resource import NO_EVENT, EventPort, SharedResource, min_horizon
from .scheduler import (
    ENGINE_REGISTRY,
    EventScheduler,
    SteppedEngine,
    make_engine,
    register_engine,
    registered_engines,
)
from .store_buffer import StoreBuffer
from .system import System, SystemResult
from .topology import (
    TOPOLOGY_REGISTRY,
    ResourceChain,
    TopologyHooks,
    build_topology,
    register_topology,
    registered_topologies,
)
from .trace import (
    CaptureProbe,
    CoreTrace,
    ReplayCore,
    ReplayEngine,
    RequestRecord,
    TraceCache,
    TraceRecorder,
    TraceStep,
    TraceUnsafe,
    clear_trace_cache,
    core_side_key,
    global_trace_cache,
    replay_blocker,
    trace_key,
)

__all__ = [
    "ARBITER_REGISTRY",
    "Alu",
    "Arbiter",
    "BankQueuedMemoryController",
    "Bus",
    "BusRequest",
    "CacheStats",
    "CaptureProbe",
    "CodegenEngine",
    "CodegenMismatch",
    "CompiledLoop",
    "Core",
    "CoreTrace",
    "Dram",
    "ENGINE_REGISTRY",
    "EventPort",
    "EventScheduler",
    "FifoArbiter",
    "FixedPriorityArbiter",
    "Instruction",
    "Load",
    "MemoryController",
    "NO_EVENT",
    "Nop",
    "PartitionedL2",
    "PerformanceCounters",
    "Program",
    "ReplayCore",
    "ReplayEngine",
    "RequestRecord",
    "ResourceChain",
    "RoundRobinArbiter",
    "SetAssociativeCache",
    "SharedResource",
    "SteppedEngine",
    "Store",
    "StoreBuffer",
    "System",
    "SystemResult",
    "TOPOLOGY_REGISTRY",
    "TdmaArbiter",
    "TopologyHooks",
    "TraceCache",
    "TraceRecorder",
    "TraceStep",
    "TraceUnsafe",
    "UnspecialisableError",
    "build_topology",
    "clear_trace_cache",
    "compile_loop",
    "core_side_key",
    "create_arbiter",
    "generate_loop_source",
    "global_trace_cache",
    "loop_cache_key",
    "replay_blocker",
    "trace_key",
    "make_arbiter",
    "make_engine",
    "min_horizon",
    "register_arbiter",
    "register_engine",
    "register_topology",
    "registered_arbiters",
    "specialisation_mismatch",
    "registered_engines",
    "registered_topologies",
]
