"""Set-associative cache model with LRU/FIFO replacement.

The model tracks presence and recency only (no data values): the simulator
cares about hit/miss timing, not about functional correctness of loaded
values.  The same class implements the private IL1 and DL1 caches and, with
way masking, the way-partitioned shared L2 (see :mod:`repro.sim.l2`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import CacheConfig
from ..errors import ConfigurationError, SimulationError


@dataclass
class CacheStats:
    """Hit/miss counters kept by every cache instance."""

    read_hits: int = 0
    read_misses: int = 0
    write_hits: int = 0
    write_misses: int = 0
    fills: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        """Total number of lookups."""
        return self.read_hits + self.read_misses + self.write_hits + self.write_misses

    @property
    def misses(self) -> int:
        """Total number of misses."""
        return self.read_misses + self.write_misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that hit; 0.0 when the cache was never accessed."""
        total = self.accesses
        if total == 0:
            return 0.0
        return (self.read_hits + self.write_hits) / total

    def reset(self) -> None:
        """Zero every counter."""
        self.read_hits = 0
        self.read_misses = 0
        self.write_hits = 0
        self.write_misses = 0
        self.fills = 0
        self.evictions = 0


# A resident line is a two-element list ``[stamp, dirty]`` keyed by tag in
# its set's dict.  A plain list (not a dataclass) because line creation and
# stamp updates run for every memory access of a simulation.
_STAMP = 0
_DIRTY = 1


class SetAssociativeCache:
    """A set-associative cache tracking tags and replacement state.

    Args:
        config: geometry and policy of the cache.
        name: label used in error messages and statistics reports.
    """

    def __init__(self, config: CacheConfig, name: str = "cache") -> None:
        self.config = config
        self.name = name
        self.stats = CacheStats()
        # {} literal, not dict(): this allocation runs per System build and
        # large geometries make the constructor-call variant measurable.
        self._sets: List[Dict[int, List]] = [{} for _ in range(config.num_sets)]
        self._stamp = 0
        self._line_shift = config.line_size.bit_length() - 1
        self._index_mask = config.num_sets - 1
        # Hot-path constants: lookups/fills run for every instruction of a
        # simulation, so the policy strings and index geometry are resolved
        # once here instead of per access.
        self._index_bits = self._index_mask.bit_length()
        self._lru = config.replacement == "lru"
        self._write_back = config.write_policy == "write_back"

    # ------------------------------------------------------------------ #
    # Address helpers.
    # ------------------------------------------------------------------ #
    def line_address(self, addr: int) -> int:
        """Return the address of the first byte of the line containing ``addr``."""
        return (addr >> self._line_shift) << self._line_shift

    def set_index(self, addr: int) -> int:
        """Return the set index selected by ``addr``."""
        return (addr >> self._line_shift) & self._index_mask

    def tag(self, addr: int) -> int:
        """Return the tag bits of ``addr``."""
        return addr >> self._line_shift >> self._index_bits

    # ------------------------------------------------------------------ #
    # Lookups and fills.
    # ------------------------------------------------------------------ #
    def _next_stamp(self) -> int:
        self._stamp += 1
        return self._stamp

    def contains(self, addr: int) -> bool:
        """Return True if the line holding ``addr`` is present (no side effects)."""
        block = addr >> self._line_shift
        return (block >> self._index_bits) in self._sets[block & self._index_mask]

    def lookup(
        self, addr: int, is_write: bool = False, ways: Optional[Sequence[int]] = None
    ) -> bool:
        """Perform one access and return whether it hit.

        Args:
            addr: byte address of the access.
            is_write: True for stores (affects only statistics and dirty bits).
            ways: optional way restriction; unused by the base class but part
                of the signature so the partitioned L2 can share call sites.

        A hit updates the replacement state (LRU recency); a miss does not
        allocate — callers decide whether and when to call :meth:`fill`,
        because allocation happens only after the line has been fetched over
        the bus.
        """
        del ways  # the flat cache ignores way restrictions
        block = addr >> self._line_shift
        line_set = self._sets[block & self._index_mask]
        line = line_set.get(block >> self._index_bits)
        if line is not None:
            if self._lru:
                self._stamp += 1
                line[_STAMP] = self._stamp
            if is_write:
                line[_DIRTY] = self._write_back
                self.stats.write_hits += 1
            else:
                self.stats.read_hits += 1
            return True
        if is_write:
            self.stats.write_misses += 1
        else:
            self.stats.read_misses += 1
        return False

    def fill(self, addr: int, dirty: bool = False) -> Optional[int]:
        """Install the line containing ``addr`` and return the evicted line address.

        Returns ``None`` when no eviction was necessary.  The caller is
        responsible for issuing any write-back traffic for dirty victims.
        """
        block = addr >> self._line_shift
        index = block & self._index_mask
        line_set = self._sets[index]
        tag = block >> self._index_bits
        line = line_set.get(tag)
        if line is not None:
            # Refilling a present line only refreshes its stamp.
            line[_STAMP] = self._next_stamp()
            line[_DIRTY] = line[_DIRTY] or dirty
            return None
        victim_addr: Optional[int] = None
        if len(line_set) >= self.config.ways:
            victim_tag = None
            victim_stamp = None
            for candidate_tag, candidate in line_set.items():
                stamp = candidate[_STAMP]
                if victim_stamp is None or stamp < victim_stamp:
                    victim_stamp = stamp
                    victim_tag = candidate_tag
            del line_set[victim_tag]
            self.stats.evictions += 1
            victim_addr = self._reconstruct_address(victim_tag, index)
        line_set[tag] = [self._next_stamp(), dirty]
        self.stats.fills += 1
        return victim_addr

    def invalidate(self, addr: int) -> bool:
        """Remove the line containing ``addr``; return True if it was present."""
        line_set = self._sets[self.set_index(addr)]
        return line_set.pop(self.tag(addr), None) is not None

    def flush(self) -> None:
        """Empty the cache without touching the statistics counters."""
        for line_set in self._sets:
            line_set.clear()

    def _reconstruct_address(self, tag: int, index: int) -> int:
        return ((tag << self._index_mask.bit_length() | index) << self._line_shift)

    # ------------------------------------------------------------------ #
    # Introspection (used by tests and reports).
    # ------------------------------------------------------------------ #
    def occupancy(self) -> int:
        """Total number of valid lines currently stored."""
        return sum(len(line_set) for line_set in self._sets)

    def resident_lines(self) -> Tuple[int, ...]:
        """Sorted tuple of the line addresses currently resident."""
        lines = []
        for index, line_set in enumerate(self._sets):
            for tag in line_set:
                lines.append(self._reconstruct_address(tag, index))
        return tuple(sorted(lines))

    def ways_used(self, addr: int) -> int:
        """Number of valid lines in the set selected by ``addr``."""
        return len(self._sets[self.set_index(addr)])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} {self.name} "
            f"{self.config.size_bytes}B/{self.config.ways}w/{self.config.line_size}B>"
        )


class WayPartitionedCache(SetAssociativeCache):
    """A set-associative cache whose ways are statically partitioned.

    Each partition owner (a core identifier) is restricted to a subset of the
    ways in every set, which is how the NGMP splits its shared L2 (one way per
    core).  Lookups hit on a line regardless of which partition installed it
    (the partition restricts *allocation*, mirroring way-partitioning
    hardware), but evictions only ever target the owner's ways.
    """

    def __init__(
        self,
        config: CacheConfig,
        partitions: Dict[int, Sequence[int]],
        name: str = "l2",
    ) -> None:
        super().__init__(config, name=name)
        self._partitions: Dict[int, Tuple[int, ...]] = {}
        for owner, ways in partitions.items():
            ways_tuple = tuple(sorted(set(ways)))
            if not ways_tuple:
                raise ConfigurationError(f"partition for owner {owner} is empty")
            for way in ways_tuple:
                if not 0 <= way < config.ways:
                    raise ConfigurationError(
                        f"partition way {way} out of range for {config.ways}-way cache"
                    )
            self._partitions[owner] = ways_tuple
        # Track which way each resident line occupies: set index -> tag -> way.
        self._line_way: List[Dict[int, int]] = [{} for _ in range(config.num_sets)]

    def partition_of(self, owner: int) -> Tuple[int, ...]:
        """Return the ways assigned to ``owner``."""
        try:
            return self._partitions[owner]
        except KeyError as exc:
            raise SimulationError(f"no L2 partition defined for owner {owner}") from exc

    def fill_for(self, owner: int, addr: int, dirty: bool = False) -> Optional[int]:
        """Install a line on behalf of ``owner`` inside its way partition."""
        ways = self.partition_of(owner)
        index = self.set_index(addr)
        tag = self.tag(addr)
        line_set = self._sets[index]
        way_map = self._line_way[index]
        line = line_set.get(tag)
        if line is not None:
            line[_STAMP] = self._next_stamp()
            line[_DIRTY] = line[_DIRTY] or dirty
            return None
        used = {way_map[t]: t for t in line_set if way_map.get(t) is not None}
        free_ways = [w for w in ways if w not in used]
        victim_addr: Optional[int] = None
        if free_ways:
            chosen_way = free_ways[0]
        else:
            # Evict the least recently used line among the owner's ways.
            candidates = [(line_set[t][_STAMP], t, w) for w, t in used.items() if w in ways]
            if not candidates:
                raise SimulationError(f"partition for owner {owner} has no resident lines to evict")
            _, victim_tag, chosen_way = min(candidates)
            del line_set[victim_tag]
            del way_map[victim_tag]
            self.stats.evictions += 1
            victim_addr = self._reconstruct_address(victim_tag, index)
        line_set[tag] = [self._next_stamp(), dirty]
        way_map[tag] = chosen_way
        self.stats.fills += 1
        return victim_addr

    def fill(self, addr: int, dirty: bool = False) -> Optional[int]:
        """Unrestricted fills are not meaningful for a partitioned cache."""
        raise SimulationError(
            "WayPartitionedCache requires fill_for(owner, addr); use fill_for instead"
        )
