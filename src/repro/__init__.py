"""repro — measurement-based contention bounds for real-time round-robin buses.

A from-scratch Python reproduction of

    G. Fernandez, J. Jalle, J. Abella, E. Quiñones, T. Vardanega,
    F. J. Cazorla, "Increasing Confidence on Measurement-Based Contention
    Bounds for Real-Time Round-Robin Buses", DAC 2015.

The package contains three layers:

* :mod:`repro.sim` — a cycle-level NGMP-like multicore simulator (cores,
  private L1 caches, a shared round-robin bus, a way-partitioned L2, a memory
  controller with a banked DRAM model, store buffers, PMCs and a request
  trace);
* :mod:`repro.kernels` — the resource-stressing kernels (rsk, rsk-nop, the
  nop-only kernel) and a synthetic EEMBC-Autobench substitute;
* :mod:`repro.analysis` and :mod:`repro.methodology` — the paper's analytical
  model (Equations 1-3), the saw-tooth period detection and the full
  measurement-based methodology that derives ``ubd`` without knowing any bus
  timing parameter, plus the naive prior-art estimator and the ETB padding
  that consumes the bound.

Quickstart::

    from repro import reference_config, UbdEstimator

    result = UbdEstimator(reference_config(), k_max=60, iterations=60).run()
    print(result.summary())      # ubdm = 27 cycles on the reference platform
"""

from .config import (
    ArchConfig,
    BusConfig,
    CacheConfig,
    DramConfig,
    L2Config,
    StoreBufferConfig,
    get_preset,
    reference_config,
    small_config,
    variant_config,
)
from .errors import (
    AnalysisError,
    ConfigurationError,
    MethodologyError,
    ProgramError,
    ReproError,
    SimulationError,
)
from .analysis import (
    ContentionModel,
    SawtoothAnalyzer,
    assess_confidence,
    contender_histogram,
    contention_histogram,
    derive_delta_nop,
    gamma_of_delta,
    sawtooth_curve,
    ubd_analytical,
)
from .kernels import (
    build_nop_kernel,
    build_rsk,
    build_rsk_nop,
    build_synthetic_kernel,
    synthetic_kernel_names,
)
from .methodology import (
    ExperimentRunner,
    NaiveUbdEstimator,
    UbdEstimator,
    build_contender_set,
    compute_etb,
    mbta_padding,
    run_rsk_reference_workload,
    run_workload_campaign,
)
from .sim import Program, System

__version__ = "1.0.0"

__all__ = [
    "AnalysisError",
    "ArchConfig",
    "BusConfig",
    "CacheConfig",
    "ConfigurationError",
    "ContentionModel",
    "DramConfig",
    "ExperimentRunner",
    "L2Config",
    "MethodologyError",
    "NaiveUbdEstimator",
    "Program",
    "ProgramError",
    "ReproError",
    "SawtoothAnalyzer",
    "SimulationError",
    "StoreBufferConfig",
    "System",
    "UbdEstimator",
    "__version__",
    "assess_confidence",
    "build_contender_set",
    "build_nop_kernel",
    "build_rsk",
    "build_rsk_nop",
    "build_synthetic_kernel",
    "compute_etb",
    "contender_histogram",
    "contention_histogram",
    "derive_delta_nop",
    "gamma_of_delta",
    "get_preset",
    "mbta_padding",
    "reference_config",
    "run_rsk_reference_workload",
    "run_workload_campaign",
    "sawtooth_curve",
    "small_config",
    "synthetic_kernel_names",
    "ubd_analytical",
    "variant_config",
]
