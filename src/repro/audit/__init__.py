"""One-command platform audits: config (or campaign) in, verdict out.

``repro-bounds audit <preset|config.json|campaign-dir>`` evaluates every
registered audit dimension — the measured-bound sandwich, the Section 4.3
confidence criteria, the write-burst gate, the three-way engine
cross-check, the synchrony histogram, and (for campaign directories) the
artifact-consistency checks — and emits a versioned machine-readable
``flags.json`` plus a self-contained ``report.html``, exiting with the
worst verdict (0 pass / 1 warn / 2 fail) so CI can gate on it.

See ``DESIGN.md`` ("Audit dimensions") for the dimension contract and how
to register new dimensions.
"""

from .campaign import (
    CAMPAIGN_DIMENSIONS,
    CampaignAuditContext,
    audit_campaign_artifacts,
    register_campaign_dimension,
)
from .core import (
    FLAGS_NAME,
    FLAGS_SCHEMA_VERSION,
    REPORT_NAME,
    VERDICT_FAIL,
    VERDICT_ORDER,
    VERDICT_PASS,
    VERDICT_WARN,
    AuditReport,
    DimensionResult,
    Finding,
    exit_code_for,
    load_flags,
    report_from_dict,
    worst_verdict,
    write_flags,
)
from .dimensions import (
    CONFIG_DIMENSIONS,
    AuditDimension,
    AuditOptions,
    ConfigAuditContext,
    audit_config,
    register_dimension,
)
from .html import render_html
from .runner import (
    AuditArtifacts,
    audit_campaign_dir,
    audit_config_file,
    audit_preset,
    resolve_and_audit,
    run_audit,
    write_artifacts,
)

__all__ = [
    "AuditArtifacts",
    "AuditDimension",
    "AuditOptions",
    "AuditReport",
    "CAMPAIGN_DIMENSIONS",
    "CONFIG_DIMENSIONS",
    "CampaignAuditContext",
    "ConfigAuditContext",
    "DimensionResult",
    "FLAGS_NAME",
    "FLAGS_SCHEMA_VERSION",
    "Finding",
    "REPORT_NAME",
    "VERDICT_FAIL",
    "VERDICT_ORDER",
    "VERDICT_PASS",
    "VERDICT_WARN",
    "audit_campaign_artifacts",
    "audit_campaign_dir",
    "audit_config",
    "audit_config_file",
    "audit_preset",
    "exit_code_for",
    "load_flags",
    "render_html",
    "report_from_dict",
    "resolve_and_audit",
    "register_campaign_dimension",
    "register_dimension",
    "run_audit",
    "worst_verdict",
    "write_artifacts",
    "write_flags",
]
