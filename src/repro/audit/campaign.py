"""Campaign-mode audit dimensions: re-reading a finished campaign directory.

A campaign audit never simulates anything — it replays the read path over
the artifacts a finished campaign left behind (``results.jsonl`` +
``summary.json`` + the optional ``campaign.json`` manifest,
SCHEMA_VERSION 4) and checks that the million-run view is internally
consistent and respects the analytical envelopes the records themselves
embed.  The same verdict semantics as the config-mode dimensions apply:
``fail`` only on a contradiction *inside the artifacts* (schema drift, a
summary that disagrees with its records, a manifest whose campaign
identity does not match the records, an observed delay above its
analytical bound), ``warn`` where a property cannot be checked (unfair
arbitration has no Equation 1 bound; a platform without rsk reference runs
carries no bound evidence) or where the artifacts declare themselves
*in-flight* — a streaming campaign's manifest says ``completed: false``
and its checkpointed summary legitimately lags the record stream, which
downgrades the consistency contradiction to a warning (the crash/abort
signature) instead of a hard artifact corruption.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..campaign.runner import summarize_records
from ..campaign.spec import KIND_RSK, SCHEMA_VERSION, campaign_digest
from ..errors import ReproError
from ..registry import Registry
from .core import (
    VERDICT_FAIL,
    VERDICT_PASS,
    VERDICT_WARN,
    DimensionResult,
    Finding,
)
from .dimensions import AuditDimension


class CampaignAuditContext:
    """Shared state for one audited campaign directory.

    Holds the loaded records/summary plus a lazily recomputed summary (one
    :func:`~repro.campaign.runner.summarize_records` call shared by however
    many dimensions need the aggregated view).
    """

    def __init__(
        self,
        records: Sequence[Dict[str, object]],
        summary: Mapping[str, object],
        manifest: Optional[Mapping[str, object]] = None,
    ) -> None:
        self.records = list(records)
        self.summary = dict(summary)
        self.manifest = dict(manifest) if manifest is not None else None
        self._recomputed: Optional[Tuple[Optional[Dict[str, object]], Optional[str]]] = None

    @property
    def completed(self) -> bool:
        """Whether the artifacts declare a *finished* campaign.

        Pre-manifest layouts never streamed, so they are always complete;
        with a manifest, the ``completed`` flag decides (a streaming
        campaign flips it only at finalisation).
        """
        if self.manifest is None:
            return True
        return bool(self.manifest.get("completed"))

    def recomputed_summary(self) -> Tuple[Optional[Dict[str, object]], Optional[str]]:
        """``summarize_records`` over the loaded records, or the reason not."""
        if self._recomputed is None:
            try:
                self._recomputed = (summarize_records(self.records), None)
            except ReproError as exc:
                self._recomputed = (None, str(exc))
        return self._recomputed


#: Registry of campaign-mode dimensions, evaluated in registration order.
CAMPAIGN_DIMENSIONS: Registry[AuditDimension[CampaignAuditContext]] = Registry(
    "campaign audit dimension"
)

_CampaignRunner = Callable[[CampaignAuditContext], DimensionResult]


def register_campaign_dimension(
    name: str, title: str, description: str
) -> Callable[[_CampaignRunner], _CampaignRunner]:
    """Registration decorator for campaign-mode dimensions."""

    def decorator(run: _CampaignRunner) -> _CampaignRunner:
        CAMPAIGN_DIMENSIONS.register(
            name, AuditDimension(name=name, title=title, description=description, run=run)
        )
        return run

    return decorator


# --------------------------------------------------------------------------- #
# Dimension: artifact schema integrity.
# --------------------------------------------------------------------------- #
@register_campaign_dimension(
    "artifact_schema",
    "Artifact schema integrity",
    "Checks every result record and the summary against the supported "
    "SCHEMA_VERSION, run counts, and run_id uniqueness.",
)
def _artifact_schema(context: CampaignAuditContext) -> DimensionResult:
    findings: List[Finding] = []
    versions: Dict[object, int] = {}
    for record in context.records:
        version = record.get("schema")
        versions[version] = versions.get(version, 0) + 1
    stale = {v: n for v, n in versions.items() if v != SCHEMA_VERSION}
    findings.append(
        Finding(
            check="record_schema",
            verdict=VERDICT_PASS if not stale else VERDICT_FAIL,
            detail=(
                f"all {len(context.records)} records carry schema {SCHEMA_VERSION}"
                if not stale
                else f"{sum(stale.values())} records carry stale schema versions "
                f"{sorted(str(v) for v in stale)}"
            ),
            evidence={
                "expected_schema": SCHEMA_VERSION,
                "versions_seen": {str(v): n for v, n in sorted(versions.items(), key=str)},
            },
        )
    )
    summary_schema = context.summary.get("schema")
    findings.append(
        Finding(
            check="summary_schema",
            verdict=VERDICT_PASS if summary_schema == SCHEMA_VERSION else VERDICT_FAIL,
            detail=(f"summary carries schema {summary_schema!r} " f"(expected {SCHEMA_VERSION})"),
            evidence={"expected_schema": SCHEMA_VERSION, "summary_schema": summary_schema},
        )
    )
    total = context.summary.get("total_runs")
    count_matches = total == len(context.records)
    findings.append(
        Finding(
            check="run_count",
            # An in-flight checkpointed summary legitimately lags the
            # record stream (manifest says completed: false) — warn there,
            # fail only on a *finished* campaign's mismatch.
            verdict=(
                VERDICT_PASS
                if count_matches
                else (VERDICT_WARN if not context.completed else VERDICT_FAIL)
            ),
            detail=(
                f"summary reports {total!r} runs; results.jsonl holds "
                f"{len(context.records)} records"
                + ("" if count_matches or context.completed else " (in-flight checkpoint)")
            ),
            evidence={
                "total_runs": total,
                "records": len(context.records),
                "completed": context.completed,
            },
        )
    )
    run_ids = [record.get("run_id") for record in context.records]
    duplicates = sorted({str(run_id) for run_id in run_ids if run_ids.count(run_id) > 1})
    findings.append(
        Finding(
            check="run_id_unique",
            verdict=VERDICT_PASS if not duplicates else VERDICT_FAIL,
            detail=(
                "every record carries a unique run_id"
                if not duplicates
                else f"duplicate run_ids: {duplicates}"
            ),
            evidence={"duplicates": duplicates},
        )
    )
    findings.extend(_manifest_findings(context))
    return DimensionResult(
        name="artifact_schema",
        title="Artifact schema integrity",
        findings=tuple(findings),
    )


def _manifest_findings(context: CampaignAuditContext) -> List[Finding]:
    """Checks over the ``campaign.json`` manifest (store-backed layout).

    A missing manifest is the accepted pre-manifest layout; a present one
    must stamp the supported schema, a ``campaign_id`` that matches the
    digest of the records actually on disk, and — for a completed campaign
    — a ``total_runs`` equal to the record count.  An in-flight manifest
    (``completed: false``) warns: it is the signature of a streaming
    campaign that crashed or is still running.
    """
    manifest = context.manifest
    if manifest is None:
        return [
            Finding(
                check="manifest",
                verdict=VERDICT_PASS,
                detail="no campaign.json manifest (pre-manifest layout, accepted)",
                evidence={"manifest": None},
            )
        ]
    findings: List[Finding] = []
    manifest_schema = manifest.get("schema")
    findings.append(
        Finding(
            check="manifest_schema",
            verdict=VERDICT_PASS if manifest_schema == SCHEMA_VERSION else VERDICT_FAIL,
            detail=(
                f"manifest carries schema {manifest_schema!r} (expected {SCHEMA_VERSION})"
            ),
            evidence={"expected_schema": SCHEMA_VERSION, "manifest_schema": manifest_schema},
        )
    )
    completed = context.completed
    owner = manifest.get("owner")
    if completed:
        in_flight_detail = "manifest declares the campaign completed"
    elif owner is not None:
        # Daemon-owned in-flight directory: the service stamps an owner
        # (e.g. "serve:<pid>") at stream begin and drops it at finalise,
        # so a surviving owner names who to ask — or what crashed.  The
        # verdict stays WARN: resumable, not corrupt.
        in_flight_detail = (
            f"manifest declares the campaign in-flight (completed: false), "
            f"owned by {owner!r} — the owning daemon is still streaming it, "
            "or died before finalisation (resumable)"
        )
    else:
        in_flight_detail = (
            "manifest declares the campaign in-flight (completed: "
            "false) — it is still streaming, or crashed before "
            "finalisation"
        )
    findings.append(
        Finding(
            check="manifest_completed",
            verdict=VERDICT_PASS if completed else VERDICT_WARN,
            detail=in_flight_detail,
            evidence=(
                {"completed": completed}
                if owner is None
                else {"completed": completed, "owner": owner}
            ),
        )
    )
    total = manifest.get("total_runs")
    count_matches = total == len(context.records)
    findings.append(
        Finding(
            check="manifest_run_count",
            # An in-flight stream legitimately holds a prefix of total_runs.
            verdict=(
                VERDICT_PASS
                if count_matches
                else (VERDICT_WARN if not completed else VERDICT_FAIL)
            ),
            detail=(
                f"manifest expects {total!r} runs; results.jsonl holds "
                f"{len(context.records)} records"
                + ("" if completed or count_matches else " (in-flight prefix)")
            ),
            evidence={"total_runs": total, "records": len(context.records)},
        )
    )
    if completed:
        expected_id = campaign_digest(
            [str(record.get("digest", "")) for record in context.records]
        )
        stamped = manifest.get("campaign_id")
        findings.append(
            Finding(
                check="manifest_campaign_id",
                verdict=VERDICT_PASS if stamped == expected_id else VERDICT_FAIL,
                detail=(
                    "manifest campaign_id matches the digest of the records on disk"
                    if stamped == expected_id
                    else f"manifest campaign_id {stamped!r} does not match the "
                    f"records on disk ({expected_id})"
                ),
                evidence={"campaign_id": stamped, "recomputed": expected_id},
            )
        )
    return findings


# --------------------------------------------------------------------------- #
# Dimension: summary vs records consistency.
# --------------------------------------------------------------------------- #
@register_campaign_dimension(
    "summary_consistency",
    "Summary reproducibility",
    "Recomputes the summary from the records and compares it, key by key, "
    "against the stored summary.json (minus its non-deterministic timing).",
)
def _summary_consistency(context: CampaignAuditContext) -> DimensionResult:
    recomputed, reason = context.recomputed_summary()
    if recomputed is None:
        assert reason is not None
        return DimensionResult(
            name="summary_consistency",
            title="Summary reproducibility",
            findings=(
                Finding(
                    check="recompute",
                    verdict=VERDICT_FAIL,
                    detail=f"records cannot be summarised: {reason}",
                    evidence={"fallback_reason": reason},
                ),
            ),
        )
    stored = {key: value for key, value in context.summary.items() if key != "timing"}
    drifted = sorted(
        key
        for key in set(stored) | set(recomputed)
        if stored.get(key) != recomputed.get(key)
    )
    if drifted and not context.completed:
        # A streaming campaign checkpoints summary.json at most every few
        # seconds, so an in-flight (or crashed) directory legitimately has
        # a summary lagging results.jsonl: a warning, not corruption.
        verdict = VERDICT_WARN
        detail = (
            f"summary.json lags its records on {drifted} — consistent with "
            "the manifest's completed: false (in-flight checkpoint)"
        )
    elif drifted:
        verdict = VERDICT_FAIL
        detail = f"summary.json disagrees with its records on: {drifted}"
    else:
        verdict = VERDICT_PASS
        detail = "summary.json is exactly the deterministic aggregation of results.jsonl"
    return DimensionResult(
        name="summary_consistency",
        title="Summary reproducibility",
        findings=(
            Finding(
                check="summary_matches_records",
                verdict=verdict,
                detail=detail,
                evidence={"drifted_keys": drifted, "completed": context.completed},
            ),
        ),
    )


# --------------------------------------------------------------------------- #
# Dimension: observed delays vs analytical envelopes, per platform bucket.
# --------------------------------------------------------------------------- #
@register_campaign_dimension(
    "campaign_bounds",
    "Observed delays vs analytical bounds",
    "Checks, per platform bucket, the aggregated worst contention delay "
    "against the analytical ubd and every aggregated per-stage worst case "
    "against its ubd_terms envelope.",
)
def _campaign_bounds(context: CampaignAuditContext) -> DimensionResult:
    recomputed, reason = context.recomputed_summary()
    if recomputed is None:
        assert reason is not None
        return DimensionResult(
            name="campaign_bounds",
            title="Observed delays vs analytical bounds",
            findings=(
                Finding(
                    check="recompute",
                    verdict=VERDICT_WARN,
                    detail=f"no aggregated view to check: {reason}",
                    evidence={"fallback_reason": reason},
                ),
            ),
        )
    findings: List[Finding] = []
    rows: List[Tuple[str, ...]] = []
    per_platform = recomputed["per_platform"]
    assert isinstance(per_platform, dict)
    for key in sorted(per_platform):
        bucket = per_platform[key]
        rsk = bucket.get(KIND_RSK)
        ubd = bucket.get("analytical_ubd")
        terms = bucket.get("analytical_terms")
        if rsk is None:
            continue
        delay = rsk.get("max_contention_delay")
        if delay is not None:
            if ubd is None:
                findings.append(
                    Finding(
                        check=f"ubd:{key}",
                        verdict=VERDICT_WARN,
                        detail=(
                            f"{key}: no Equation 1 bound under "
                            f"{bucket.get('arbiter')!r} arbitration "
                            f"(worst observed delay {delay})"
                        ),
                        evidence={
                            "platform": key,
                            "max_contention_delay": delay,
                            "fallback_reason": "no analytical ubd for this arbiter",
                        },
                    )
                )
                rows.append((key, str(delay), "-", "no bound"))
            else:
                respected = delay <= ubd
                findings.append(
                    Finding(
                        check=f"ubd:{key}",
                        verdict=VERDICT_PASS if respected else VERDICT_FAIL,
                        detail=(
                            f"{key}: worst observed contention delay {delay} "
                            f"versus analytical ubd {ubd}"
                        ),
                        evidence={
                            "platform": key,
                            "max_contention_delay": delay,
                            "analytical_ubd": ubd,
                        },
                    )
                )
                rows.append((key, str(delay), str(ubd), "OK" if respected else "EXCEEDS"))
        stage_worst = rsk.get("stage_worst_case")
        if stage_worst and isinstance(terms, dict):
            for stage in sorted(set(stage_worst) & set(terms)):
                worst = stage_worst[stage]
                envelope = terms[stage]
                covered = worst <= envelope
                findings.append(
                    Finding(
                        check=f"stage:{key}:{stage}",
                        verdict=VERDICT_PASS if covered else VERDICT_FAIL,
                        detail=(
                            f"{key}: worst observed {stage} delay {worst} "
                            f"versus analytical term {envelope}"
                        ),
                        evidence={
                            "platform": key,
                            "stage": stage,
                            "observed_worst_case": worst,
                            "analytical": envelope,
                        },
                    )
                )
                rows.append(
                    (
                        f"{key} [{stage}]",
                        str(worst),
                        str(envelope),
                        "OK" if covered else "EXCEEDS",
                    )
                )
    if not findings:
        findings.append(
            Finding(
                check="no_bound_evidence",
                verdict=VERDICT_WARN,
                detail="no platform bucket carries rsk delay evidence to check",
                evidence={"fallback_reason": "no rsk runs with delay histograms"},
            )
        )
    return DimensionResult(
        name="campaign_bounds",
        title="Observed delays vs analytical bounds",
        findings=tuple(findings),
        tables=(
            (
                "Aggregated worst cases vs analytical envelopes",
                ("platform [stage]", "observed", "analytical", "check"),
                tuple(rows),
            ),
        ),
    )


# --------------------------------------------------------------------------- #
# Dimension: coverage — does every platform carry bound evidence?
# --------------------------------------------------------------------------- #
@register_campaign_dimension(
    "campaign_coverage",
    "Reference-run coverage",
    "Warns about platform buckets that ran no rsk reference workloads — "
    "their summary rows carry no worst-case delay evidence at all.",
)
def _campaign_coverage(context: CampaignAuditContext) -> DimensionResult:
    recomputed, reason = context.recomputed_summary()
    if recomputed is None:
        assert reason is not None
        return DimensionResult(
            name="campaign_coverage",
            title="Reference-run coverage",
            findings=(
                Finding(
                    check="recompute",
                    verdict=VERDICT_WARN,
                    detail=f"no aggregated view to check: {reason}",
                    evidence={"fallback_reason": reason},
                ),
            ),
        )
    per_platform = recomputed["per_platform"]
    assert isinstance(per_platform, dict)
    uncovered = sorted(key for key, bucket in per_platform.items() if KIND_RSK not in bucket)
    findings = [
        Finding(
            check="rsk_coverage",
            verdict=VERDICT_PASS if not uncovered else VERDICT_WARN,
            detail=(
                f"every one of the {len(per_platform)} platform buckets has rsk "
                "reference runs"
                if not uncovered
                else f"{len(uncovered)} of {len(per_platform)} platform buckets "
                f"ran no rsk reference workloads: {uncovered}"
            ),
            evidence={
                "platforms": len(per_platform),
                "without_rsk_runs": uncovered,
            },
        )
    ]
    return DimensionResult(
        name="campaign_coverage",
        title="Reference-run coverage",
        findings=tuple(findings),
    )


def audit_campaign_artifacts(
    records: Sequence[Dict[str, object]],
    summary: Mapping[str, object],
    manifest: Optional[Mapping[str, object]] = None,
) -> Tuple[DimensionResult, ...]:
    """Evaluate every registered campaign-mode dimension over the artifacts."""
    context = CampaignAuditContext(records, summary, manifest=manifest)
    return tuple(entry.run(context) for entry in CAMPAIGN_DIMENSIONS.values())
