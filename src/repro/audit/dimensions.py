"""Config-mode audit dimensions: one platform, every methodology check.

Each dimension is a named, registered evaluation over a
:class:`ConfigAuditContext` — the shared measurement state of one audited
platform (the measured-bound pipeline run, the traced synchrony run, the
store-side probe).  The registry (:data:`CONFIG_DIMENSIONS`) makes new
dimensions pure additions: register a callable and it appears in the
``flags.json``, the HTML report and the CLI verdict with no orchestrator
change — the same growth pattern as the arbiter/engine/topology registries.

The dimension contract (see ``DESIGN.md``, "Audit dimensions"):

* **name** — machine-stable registry key (the ``flags.json`` identity);
* **inputs** — everything is read from the shared context, so expensive
  measurements (the saw-tooth sweep, the stress runs) happen at most once
  per audit however many dimensions consume them;
* **verdict semantics** — ``fail`` only on an *observed contradiction*
  (a bound not covering an observation, diverging engines, a failed
  Section 4.3 confidence criterion); ``warn`` when a property cannot be
  established (no analytical envelope to sandwich against, a gated
  assumption flagged by a probe); ``pass`` otherwise;
* **evidence payload** — JSON-serialisable, carrying the numbers behind the
  verdict (observed vs ``ubdm`` vs analytical per resource, engine cycle
  counts and fallback reasons, store-burst rates).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Generic, List, Optional, Tuple, TypeVar

from ..analysis.confidence import assess_write_burst
from ..analysis.contention import ContentionHistogram, contention_histogram
from ..config import FAIR_ARBITRATION_POLICIES, ArchConfig
from ..errors import ReproError
from ..kernels.rsk import build_rsk
from ..methodology.experiment import ContendedMeasurement, ExperimentRunner
from ..methodology.ubd import (
    MeasuredBoundPipeline,
    MeasuredBoundReport,
    UbdEstimator,
    UbdMethodologyResult,
)
from ..registry import Registry
from ..sim.isa import Program
from ..sim.system import System, SystemResult
from .core import (
    VERDICT_FAIL,
    VERDICT_PASS,
    VERDICT_WARN,
    DimensionResult,
    Finding,
)


@dataclass(frozen=True)
class AuditOptions:
    """Measurement knobs forwarded to the audit's underlying experiments.

    The defaults match the CLI defaults of ``derive-ubd``/``synchrony``;
    tests and CI lower them to keep a full audit in the seconds range.
    """

    k_max: int = 60
    iterations: int = 40
    stress_iterations: int = 40
    synchrony_iterations: int = 150
    equivalence_iterations: int = 40


class ConfigAuditContext:
    """Shared measurement state for one audited platform configuration.

    Every expensive measurement is computed lazily and cached, so the
    dimensions can be written independently while the audit still runs the
    saw-tooth sweep, the stress runs and the synchrony trace exactly once.
    A measurement the methodology refuses (no composable bounds, no
    detectable period) is cached as its *reason* instead — dimensions
    surface it as a ``warn`` finding with the fallback reason as evidence.
    """

    def __init__(self, config: ArchConfig, options: Optional[AuditOptions] = None) -> None:
        self.config = config
        self.options = options or AuditOptions()
        self._measured: Optional[Tuple[Optional[MeasuredBoundReport], Optional[str]]] = None
        self._methodology: Optional[
            Tuple[Optional[UbdMethodologyResult], Optional[str]]
        ] = None
        self._synchrony: Optional[Tuple[Optional[ContendedMeasurement], Optional[str]]] = None
        self._store_probe: Optional[
            Tuple[Optional[ContendedMeasurement], Optional[str]]
        ] = None

    # ------------------------------------------------------------------ #
    # Cached measurements.
    # ------------------------------------------------------------------ #
    def measured_report(self) -> Tuple[Optional[MeasuredBoundReport], Optional[str]]:
        """The measured-bound pipeline's report, or the reason it refused."""
        if self._measured is None:
            options = self.options
            try:
                pipeline = MeasuredBoundPipeline(
                    self.config,
                    k_max=options.k_max,
                    iterations=options.iterations,
                    stress_iterations=options.stress_iterations,
                )
                self._measured = (pipeline.run(), None)
            except ReproError as exc:
                self._measured = (None, str(exc))
        return self._measured

    def bus_methodology(self) -> Tuple[Optional[UbdMethodologyResult], Optional[str]]:
        """The saw-tooth methodology result (shared with the pipeline when
        the pipeline ran; derived standalone when it refused — the Section 4
        procedure needs no analytical decomposition)."""
        if self._methodology is None:
            report, _ = self.measured_report()
            if report is not None:
                self._methodology = (report.bus_methodology, None)
            else:
                options = self.options
                try:
                    # No auto-extension: an audit's fallback sweep stays
                    # within the configured budget — if no period shows up
                    # in options.k_max steps the dimension warns with the
                    # reason instead of hunting for one.
                    estimator = UbdEstimator(
                        self.config,
                        k_max=options.k_max,
                        iterations=options.iterations,
                        auto_extend=False,
                    )
                    self._methodology = (estimator.run(), None)
                except ReproError as exc:
                    self._methodology = (None, str(exc))
        return self._methodology

    def synchrony_run(self) -> Tuple[Optional[ContendedMeasurement], Optional[str]]:
        """A traced load rsk vs ``Nc - 1`` rsk run (the Figure 6(b) setup)."""
        if self._synchrony is None:
            try:
                runner = ExperimentRunner(self.config)
                scua = build_rsk(self.config, 0, iterations=self.options.synchrony_iterations)
                self._synchrony = (
                    runner.run_against_rsk(scua, 0, trace=True),
                    None,
                )
            except ReproError as exc:
                self._synchrony = (None, str(exc))
        return self._synchrony

    def store_probe(self) -> Tuple[Optional[ContendedMeasurement], Optional[str]]:
        """A store rsk vs store rsk run probing the write-burst assumption."""
        if self._store_probe is None:
            try:
                runner = ExperimentRunner(self.config)
                scua = build_rsk(
                    self.config,
                    0,
                    kind="store",
                    iterations=self.options.synchrony_iterations,
                )
                self._store_probe = (
                    runner.run_against_rsk(scua, 0, kind="store", trace=False),
                    None,
                )
            except ReproError as exc:
                self._store_probe = (None, str(exc))
        return self._store_probe


ContextT = TypeVar("ContextT")


@dataclass(frozen=True)
class AuditDimension(Generic[ContextT]):
    """One registered audit dimension (see the module docstring contract)."""

    name: str
    title: str
    description: str
    run: Callable[[ContextT], DimensionResult]


#: Registry of config-mode dimensions, evaluated in registration order.
CONFIG_DIMENSIONS: Registry[AuditDimension[ConfigAuditContext]] = Registry("audit dimension")

_ConfigRunner = Callable[[ConfigAuditContext], DimensionResult]


def register_dimension(
    name: str, title: str, description: str
) -> Callable[[_ConfigRunner], _ConfigRunner]:
    """Class-less registration decorator for config-mode dimensions."""

    def decorator(run: _ConfigRunner) -> _ConfigRunner:
        CONFIG_DIMENSIONS.register(
            name, AuditDimension(name=name, title=title, description=description, run=run)
        )
        return run

    return decorator


def _unavailable(name: str, title: str, check: str, reason: str) -> DimensionResult:
    """A single-warning dimension result for a measurement that refused."""
    return DimensionResult(
        name=name,
        title=title,
        findings=(
            Finding(
                check=check,
                verdict=VERDICT_WARN,
                detail=f"not established: {reason}",
                evidence={"fallback_reason": reason},
            ),
        ),
    )


# --------------------------------------------------------------------------- #
# Dimension: the measured-bound pipeline (per-resource ubdm terms).
# --------------------------------------------------------------------------- #
@register_dimension(
    "measured_bounds",
    "Measured per-resource bounds",
    "Runs the resource-generic measured-bound pipeline and reports one "
    "measured ubdm term per shared resource next to its analytical envelope.",
)
def _measured_bounds(context: ConfigAuditContext) -> DimensionResult:
    report, reason = context.measured_report()
    if report is None:
        assert reason is not None
        return _unavailable(
            "measured_bounds",
            "Measured per-resource bounds",
            "pipeline",
            reason,
        )
    findings: List[Finding] = []
    rows: List[Tuple[str, ...]] = []
    for term in report.terms.values():
        findings.append(
            Finding(
                check=f"term_{term.resource}",
                verdict=VERDICT_PASS,
                detail=term.summary(),
                evidence={
                    "resource": term.resource,
                    "observed_worst_case": term.observed_worst_case,
                    "ubdm": term.ubdm,
                    "analytical": term.analytical,
                    "method": term.method,
                    "requests": term.requests,
                },
            )
        )
        rows.append(
            (
                term.resource,
                str(term.observed_worst_case),
                str(term.ubdm),
                str(term.analytical),
                term.method,
                term.sandwich.status,
            )
        )
    within = report.end_to_end_ubdm <= report.end_to_end_analytical
    findings.append(
        Finding(
            check="end_to_end",
            verdict=VERDICT_PASS if within else VERDICT_FAIL,
            detail=(
                f"end-to-end measured bound {report.end_to_end_ubdm} cycles "
                f"(analytical envelope {report.end_to_end_analytical})"
            ),
            evidence={
                "end_to_end_ubdm": report.end_to_end_ubdm,
                "end_to_end_analytical": report.end_to_end_analytical,
                "terms": {r: t.ubdm for r, t in report.terms.items()},
                "analytical_terms": dict(report.analytical_terms),
            },
        )
    )
    if report.memory_split is not None:
        split = report.memory_split
        findings.append(
            Finding(
                check="memory_split",
                verdict=VERDICT_PASS,
                detail=split.summary(),
                evidence={
                    "memory_requests": split.memory_requests,
                    "queue_wait_max": split.queue_wait_max,
                    "queue_wait_mean": split.queue_wait_mean,
                    "service_max": split.service_max,
                    "service_mean": split.service_mean,
                },
            )
        )
    return DimensionResult(
        name="measured_bounds",
        title="Measured per-resource bounds",
        findings=tuple(findings),
        tables=(
            (
                f"{report.arch_name}/{report.topology}: observed <= ubdm <= analytical",
                ("resource", "observed", "ubdm", "analytical", "method", "check"),
                tuple(rows),
            ),
        ),
    )


# --------------------------------------------------------------------------- #
# Dimension: the per-stage sandwich cross-check.
# --------------------------------------------------------------------------- #
@register_dimension(
    "sandwich",
    "Per-stage sandwich cross-check",
    "Checks every measured term against both sides of its sandwich: it must "
    "cover the observed worst case and stay within the analytical envelope.",
)
def _sandwich(context: ConfigAuditContext) -> DimensionResult:
    report, reason = context.measured_report()
    if report is None:
        assert reason is not None
        return _unavailable("sandwich", "Per-stage sandwich cross-check", "cross_check", reason)
    findings = tuple(
        Finding(
            check=f"sandwich_{check.resource}",
            verdict=VERDICT_PASS if check.passed else VERDICT_FAIL,
            detail=check.summary(),
            evidence={
                "resource": check.resource,
                "observed_worst_case": check.observed_worst_case,
                "ubdm": check.ubdm,
                "analytical": check.analytical,
                "covers_observation": check.covers_observation,
                "within_envelope": check.within_envelope,
                "status": check.status,
            },
        )
        for check in report.cross_check.checks
    )
    return DimensionResult(
        name="sandwich",
        title="Per-stage sandwich cross-check",
        findings=findings,
    )


# --------------------------------------------------------------------------- #
# Dimension: Section 4.3 confidence criteria.
# --------------------------------------------------------------------------- #
@register_dimension(
    "confidence",
    "Saw-tooth confidence criteria",
    "Evaluates the Section 4.3 criteria attached to the ubdm estimate: bus "
    "saturation, delta_nop reliability, estimator agreement, sweep coverage.",
)
def _confidence(context: ConfigAuditContext) -> DimensionResult:
    methodology, reason = context.bus_methodology()
    if methodology is None:
        assert reason is not None
        return _unavailable("confidence", "Saw-tooth confidence criteria", "methodology", reason)
    findings = [
        Finding(
            check=check.name,
            verdict=VERDICT_PASS if check.passed else VERDICT_FAIL,
            detail=check.detail,
        )
        for check in methodology.confidence.checks
    ]
    findings.append(
        Finding(
            check="ubdm",
            verdict=VERDICT_PASS,
            detail=methodology.summary(),
            evidence={
                "ubdm": methodology.ubdm,
                "period_k": methodology.period.period_k,
                "delta_nop": methodology.delta_nop.cycles_per_nop,
            },
        )
    )
    return DimensionResult(
        name="confidence",
        title="Saw-tooth confidence criteria",
        findings=tuple(findings),
    )


# --------------------------------------------------------------------------- #
# Dimension: the write-burst PMC gate.
# --------------------------------------------------------------------------- #
def _burst_evidence(config: ArchConfig, result: SystemResult) -> Dict[str, object]:
    """The burst-rate numbers behind a write-burst verdict (the same
    quantities :func:`repro.analysis.confidence.assess_write_burst` gates
    on, exported for the flags payload)."""
    pmc = result.pmc
    cycles = pmc.cycles
    store_rate = 0.0
    if cycles > 0:
        store_rate = max((core.stores / cycles for core in pmc.core), default=0.0)
    service = config.dram.row_miss_latency
    return {
        "store_rate_per_cycle": store_rate,
        "row_miss_service": service,
        "writes_per_bank_service": store_rate * service,
        "store_buffer_full_stalls": max(
            (core.store_buffer_full_stalls for core in pmc.core), default=0
        ),
        "store_buffer_entries": config.store_buffer.entries,
    }


@register_dimension(
    "write_burst",
    "Write-burst queueing gate",
    "Gates the memory term's 'at most Nc - 1 queued accesses' assumption: "
    "on the audited demand traffic (fail if flagged) and under a store-rsk "
    "probe (warn if flagged — store-heavy tasks need a store-side bound).",
)
def _write_burst(context: ConfigAuditContext) -> DimensionResult:
    findings: List[Finding] = []
    report, _ = context.measured_report()
    if report is not None and report.write_burst is not None:
        check = report.write_burst
        findings.append(
            Finding(
                check="demand_traffic",
                verdict=VERDICT_PASS if check.passed else VERDICT_FAIL,
                detail=check.detail,
            )
        )
    else:
        contended, reason = context.synchrony_run()
        if contended is None:
            assert reason is not None
            return _unavailable(
                "write_burst", "Write-burst queueing gate", "demand_traffic", reason
            )
        check = assess_write_burst(context.config, contended.result.pmc)
        findings.append(
            Finding(
                check="demand_traffic",
                verdict=VERDICT_PASS if check.passed else VERDICT_FAIL,
                detail=check.detail,
                evidence=_burst_evidence(context.config, contended.result),
            )
        )
    probe, reason = context.store_probe()
    if probe is None:
        assert reason is not None
        findings.append(
            Finding(
                check="store_probe",
                verdict=VERDICT_WARN,
                detail=f"store probe could not run: {reason}",
                evidence={"fallback_reason": reason},
            )
        )
    else:
        probe_check = assess_write_burst(context.config, probe.result.pmc)
        findings.append(
            Finding(
                check="store_probe",
                verdict=VERDICT_PASS if probe_check.passed else VERDICT_WARN,
                detail=probe_check.detail,
                evidence=_burst_evidence(context.config, probe.result),
            )
        )
    return DimensionResult(
        name="write_burst",
        title="Write-burst queueing gate",
        findings=tuple(findings),
    )


# --------------------------------------------------------------------------- #
# Dimension: three-way engine equivalence.
# --------------------------------------------------------------------------- #
def _trace_tuples(result: SystemResult) -> Optional[List[Tuple[object, ...]]]:
    if result.trace is None:
        return None
    return [
        (
            record.port,
            record.kind,
            record.addr,
            record.resource,
            record.origin_core,
            record.ready_cycle,
            record.grant_cycle,
            record.complete_cycle,
            record.service_cycles,
            record.contenders_at_ready,
            record.bus_busy_at_ready,
            record.mem_ready_cycle,
            record.mem_grant_cycle,
            record.mem_complete_cycle,
            record.response_ready_cycle,
            record.response_grant_cycle,
            record.response_complete_cycle,
        )
        for record in result.trace.records
    ]


def _observable_state(result: SystemResult) -> Dict[str, object]:
    return {
        "cycles": result.cycles,
        "done_cycles": list(result.done_cycles),
        "instructions": list(result.instructions),
        "timed_out": result.timed_out,
        "pmc": result.pmc.as_dict(),
        "trace": _trace_tuples(result),
    }


def _equivalence_run(context: ConfigAuditContext, engine: str) -> SystemResult:
    config = context.config
    programs: List[Optional[Program]] = [None] * config.num_cores
    programs[0] = build_rsk(config, 0, iterations=context.options.equivalence_iterations)
    for core in range(1, config.num_cores):
        programs[core] = build_rsk(config, core, iterations=None)
    system = System(config, programs, trace=True)
    return system.run(observed_cores=[0], engine=engine)


@register_dimension(
    "engine_equivalence",
    "Engine cross-check (stepped / event / codegen)",
    "Replays one contended rsk run on every registered engine and compares "
    "the full observable state (times, PMCs, every trace stamp) against the "
    "stepped oracle.",
)
def _engine_equivalence(context: ConfigAuditContext) -> DimensionResult:
    from ..sim.codegen import specialisation_mismatch
    from ..sim.scheduler import registered_engines

    engines = registered_engines()
    if "stepped" not in engines:  # pragma: no cover - built-in engine
        return _unavailable(
            "engine_equivalence",
            "Engine cross-check (stepped / event / codegen)",
            "oracle",
            "the stepped oracle engine is not registered",
        )
    oracle = _equivalence_run(context, "stepped")
    oracle_state = _observable_state(oracle)
    findings: List[Finding] = []
    for engine in engines:
        if engine == "stepped":
            continue
        result = _equivalence_run(context, engine)
        state = _observable_state(result)
        matches = state == oracle_state
        evidence: Dict[str, object] = {
            "engine": engine,
            "cycles": result.cycles,
            "oracle_cycles": oracle.cycles,
            "traced_requests": (len(result.trace.records) if result.trace is not None else 0),
        }
        if engine == "codegen":
            config = context.config
            programs: List[Optional[Program]] = [None] * config.num_cores
            programs[0] = build_rsk(config, 0, iterations=1)
            evidence["fallback_reason"] = specialisation_mismatch(System(config, programs))
        if not matches:
            diverged = [key for key in oracle_state if state.get(key) != oracle_state[key]]
            evidence["diverged_fields"] = diverged
        findings.append(
            Finding(
                check=f"{engine}_vs_stepped",
                verdict=VERDICT_PASS if matches else VERDICT_FAIL,
                detail=(
                    f"{engine} engine reproduces the stepped oracle's observable "
                    f"state over {oracle.cycles} cycles"
                    if matches
                    else f"{engine} engine diverged from the stepped oracle"
                ),
                evidence=evidence,
            )
        )
    return DimensionResult(
        name="engine_equivalence",
        title="Engine cross-check (stepped / event / codegen)",
        findings=tuple(findings),
    )


# --------------------------------------------------------------------------- #
# Dimension: the synchrony effect and the observed bound.
# --------------------------------------------------------------------------- #
@register_dimension(
    "synchrony",
    "Synchrony and observed bound",
    "Histograms the contention delay of a contended load rsk: every observed "
    "delay must respect the analytical bound, and most requests should sit "
    "on the synchrony plateau.",
)
def _synchrony(context: ConfigAuditContext) -> DimensionResult:
    contended, reason = context.synchrony_run()
    if contended is None:
        assert reason is not None
        return _unavailable("synchrony", "Synchrony and observed bound", "histogram", reason)
    assert contended.trace is not None
    histogram: ContentionHistogram = contention_histogram(contended.trace, 0)
    findings: List[Finding] = []
    if context.config.bus.arbitration in FAIR_ARBITRATION_POLICIES:
        ubd = context.config.ubd
        respected = histogram.max_observed <= ubd
        findings.append(
            Finding(
                check="bound_respected",
                verdict=VERDICT_PASS if respected else VERDICT_FAIL,
                detail=(
                    f"worst observed contention delay {histogram.max_observed} "
                    f"cycles versus analytical ubd {ubd}"
                ),
                evidence={
                    "max_observed": histogram.max_observed,
                    "analytical_ubd": ubd,
                    "total_requests": histogram.total_requests,
                },
            )
        )
    else:
        findings.append(
            Finding(
                check="bound_respected",
                verdict=VERDICT_WARN,
                detail=(
                    f"no analytical ubd under {context.config.bus.arbitration!r} "
                    f"arbitration (Equation 1 covers "
                    f"{list(FAIR_ARBITRATION_POLICIES)})"
                ),
                evidence={
                    "fallback_reason": (f"unfair arbitration {context.config.bus.arbitration!r}"),
                    "max_observed": histogram.max_observed,
                },
            )
        )
    plateau = histogram.fraction_at_mode()
    findings.append(
        Finding(
            check="synchrony_plateau",
            verdict=VERDICT_PASS if plateau >= 0.5 else VERDICT_WARN,
            detail=(
                f"{plateau:.0%} of requests sit on the modal delay of "
                f"{histogram.mode} cycles (bus utilisation "
                f"{contended.bus_utilisation:.0%})"
            ),
            evidence={
                "mode": histogram.mode,
                "fraction_at_mode": plateau,
                "bus_utilisation": contended.bus_utilisation,
            },
        )
    )
    return DimensionResult(
        name="synchrony",
        title="Synchrony and observed bound",
        findings=tuple(findings),
        histograms=(
            (
                "Contention delay per rsk request",
                "gamma",
                dict(histogram.counts),
            ),
        ),
    )


def audit_config(
    config: ArchConfig, options: Optional[AuditOptions] = None
) -> Tuple[DimensionResult, ...]:
    """Evaluate every registered config-mode dimension over ``config``."""
    context = ConfigAuditContext(config, options)
    return tuple(entry.run(context) for entry in CONFIG_DIMENSIONS.values())
