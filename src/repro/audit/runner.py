"""Audit orchestration: resolve a target, run the dimensions, emit artifacts.

The audit accepts three target shapes behind one CLI argument:

* a **preset name** (``ref``, ``small``, ...) — optionally re-based onto
  another topology with ``--topology``;
* a **configuration file** (``*.json``, the :meth:`ArchConfig.to_dict`
  layout campaign artifacts embed);
* a **campaign directory** (holds ``results.jsonl``) — audited read-only,
  nothing is re-simulated.

Whatever the target, the output is the same pair of artifacts in the output
directory: a versioned machine-readable ``flags.json`` and a self-contained
``report.html``, with the process exit code equal to the worst verdict's
position (0 pass / 1 warn / 2 fail) so CI can gate on it directly.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional

from ..config import PRESETS, ArchConfig, config_from_dict, get_preset
from ..errors import AuditError, ReproError
from .campaign import audit_campaign_artifacts
from .core import (
    FLAGS_NAME,
    REPORT_NAME,
    AuditReport,
    write_flags,
)
from ..campaign.artifacts import RESULTS_NAME, load_campaign, load_manifest
from .dimensions import AuditOptions, audit_config
from .html import render_html


@dataclass(frozen=True)
class AuditArtifacts:
    """Everything one audit invocation produced."""

    report: AuditReport
    flags_path: Path
    html_path: Path


def audit_preset(
    name: str,
    topology: Optional[str] = None,
    options: Optional[AuditOptions] = None,
) -> AuditReport:
    """Audit a built-in preset, optionally re-based onto ``topology``."""
    config = get_preset(name)
    if topology is not None:
        config = config.with_topology_name(topology)
    target: Dict[str, object] = {"kind": "preset", "name": name}
    if topology is not None:
        target["topology"] = topology
    else:
        target["topology"] = config.topology.name
    return AuditReport(target=target, dimensions=audit_config(config, options))


def audit_config_file(
    path: os.PathLike,
    topology: Optional[str] = None,
    options: Optional[AuditOptions] = None,
) -> AuditReport:
    """Audit a platform described by an ``ArchConfig.to_dict`` JSON file."""
    source = Path(path)
    try:
        with source.open("r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as exc:
        raise AuditError(f"cannot read configuration file {source}: {exc}") from exc
    if not isinstance(payload, dict):
        raise AuditError(f"{source}: configuration must be a JSON object")
    try:
        config = config_from_dict(payload)
    except ReproError as exc:
        raise AuditError(f"{source}: not a valid platform configuration: {exc}") from exc
    if topology is not None:
        config = config.with_topology_name(topology)
    target: Dict[str, object] = {
        "kind": "config",
        "name": config.name,
        "path": str(source),
        "topology": config.topology.name,
    }
    return AuditReport(target=target, dimensions=audit_config(config, options))


def audit_campaign_dir(directory: os.PathLike) -> AuditReport:
    """Audit a campaign directory (read-only; nothing re-simulated).

    Loads the optional ``campaign.json`` manifest alongside the records and
    summary: store-backed streaming campaigns stamp their identity and
    completion state there, and the dimensions use it to tell an in-flight
    (or crashed) directory from a corrupt one.
    """
    campaign_dir = Path(directory)
    try:
        records, summary = load_campaign(campaign_dir)
        manifest = load_manifest(campaign_dir)
    except ReproError as exc:
        raise AuditError(
            f"cannot load campaign artifacts from {campaign_dir}: {exc}"
        ) from exc
    target: Dict[str, object] = {
        "kind": "campaign",
        "name": campaign_dir.name,
        "path": str(campaign_dir),
    }
    if manifest is not None:
        target["campaign_id"] = str(manifest.get("campaign_id"))
        target["completed"] = bool(manifest.get("completed"))
    return AuditReport(
        target=target,
        dimensions=audit_campaign_artifacts(records, summary, manifest=manifest),
    )


def resolve_and_audit(
    target: str,
    topology: Optional[str] = None,
    options: Optional[AuditOptions] = None,
) -> AuditReport:
    """Resolve ``target`` (preset | config.json | campaign dir) and audit it."""
    path = Path(target)
    if path.is_dir():
        if not (path / RESULTS_NAME).exists():
            raise AuditError(
                f"{path} is a directory but holds no {RESULTS_NAME}; "
                "expected a finished campaign output directory"
            )
        if topology is not None:
            raise AuditError("--topology does not apply to campaign directories")
        return audit_campaign_dir(path)
    if path.is_file():
        return audit_config_file(path, topology=topology, options=options)
    if target in PRESETS:
        return audit_preset(target, topology=topology, options=options)
    raise AuditError(
        f"cannot resolve audit target {target!r}: not a preset "
        f"({sorted(PRESETS)}), not a configuration file, not a campaign "
        "directory"
    )


def write_artifacts(report: AuditReport, out_dir: os.PathLike) -> AuditArtifacts:
    """Write ``flags.json`` + ``report.html`` for ``report`` under ``out_dir``."""
    directory = Path(out_dir)
    try:
        directory.mkdir(parents=True, exist_ok=True)
    except OSError as exc:
        raise AuditError(f"cannot create audit output directory {directory}: {exc}") from exc
    flags_path = write_flags(report, directory / FLAGS_NAME)
    html_path = directory / REPORT_NAME
    html_path.write_text(render_html(report), encoding="utf-8")
    return AuditArtifacts(report=report, flags_path=flags_path, html_path=html_path)


def run_audit(
    target: str,
    out_dir: os.PathLike,
    topology: Optional[str] = None,
    options: Optional[AuditOptions] = None,
) -> AuditArtifacts:
    """One-command audit: resolve, evaluate every dimension, emit artifacts."""
    report = resolve_and_audit(target, topology=topology, options=options)
    return write_artifacts(report, out_dir)
