"""Verdicts, findings and the machine-readable ``flags.json`` schema.

An audit evaluates a platform (or a finished campaign) along named *quality
dimensions* — the measured-bound sandwich, the write-burst gate, engine
equivalence, and so on.  Every dimension produces structured
:class:`Finding`\\ s, each with one of three verdicts:

* ``pass`` — the check ran and the property holds;
* ``warn`` — the check could not establish the property (an analytical side
  of a sandwich is undefined, a gate flagged an assumption, a measurement
  was not applicable) but nothing *observed* contradicts it;
* ``fail`` — an observed quantity contradicts a bound or an invariant
  (a measured term not covering its observation, diverging engines, a
  campaign artifact whose records disagree with its summary).

Verdicts aggregate by worst case: a dimension's verdict is the worst of its
findings, the audit's verdict is the worst of its dimensions, and the CLI
exit code is the verdict's position in :data:`VERDICT_ORDER` (0/1/2) so CI
can gate on ``fail`` while still surfacing ``warn``.

The whole report serialises to a versioned ``flags.json``
(:meth:`AuditReport.to_dict` / :func:`report_from_dict` round-trip, pinned
by tier-1 tests); bump :data:`FLAGS_SCHEMA_VERSION` whenever a field changes
meaning so downstream consumers never misread stale artifacts.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Tuple

from ..errors import AuditError

#: Version stamp embedded in every ``flags.json``; bump on any change to the
#: payload layout or to the meaning of a verdict.
FLAGS_SCHEMA_VERSION = 1

#: The three verdicts, ordered best to worst; the index doubles as the CLI
#: exit code (0 = pass, 1 = warn, 2 = fail).
VERDICT_ORDER: Tuple[str, ...] = ("pass", "warn", "fail")

VERDICT_PASS = "pass"
VERDICT_WARN = "warn"
VERDICT_FAIL = "fail"

#: File names an audit writes into its output directory.
FLAGS_NAME = "flags.json"
REPORT_NAME = "report.html"


def _require_verdict(verdict: str) -> str:
    if verdict not in VERDICT_ORDER:
        raise AuditError(f"unknown verdict {verdict!r}; expected one of {list(VERDICT_ORDER)}")
    return verdict


def worst_verdict(verdicts: Iterable[str]) -> str:
    """The worst verdict of ``verdicts`` (``pass`` for an empty iterable)."""
    worst = 0
    for verdict in verdicts:
        worst = max(worst, VERDICT_ORDER.index(_require_verdict(verdict)))
    return VERDICT_ORDER[worst]


def exit_code_for(verdict: str) -> int:
    """Map a verdict to the audit CLI's exit code (0 / 1 / 2)."""
    return VERDICT_ORDER.index(_require_verdict(verdict))


@dataclass(frozen=True)
class Finding:
    """One named check inside a dimension, with its verdict and evidence.

    Attributes:
        check: short machine-stable identifier of the check (unique inside
            its dimension).
        verdict: ``pass`` / ``warn`` / ``fail``.
        detail: one-line human readable explanation.
        evidence: JSON-serialisable payload backing the verdict (observed
            vs measured vs analytical values, burst rates, fallback
            reasons, ...).  Shapes are per-check and documented in
            ``DESIGN.md`` ("Audit dimensions").
    """

    check: str
    verdict: str
    detail: str
    evidence: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        _require_verdict(self.verdict)

    def as_record(self) -> Dict[str, object]:
        """JSON-serialisable view (the shape ``flags.json`` embeds)."""
        return {
            "check": self.check,
            "verdict": self.verdict,
            "detail": self.detail,
            "evidence": dict(self.evidence),
        }


@dataclass(frozen=True)
class DimensionResult:
    """Outcome of one audit dimension.

    Attributes:
        name: the dimension's registered name.
        title: human readable heading used by the HTML report.
        findings: the dimension's checks, in evaluation order.
        tables: optional evidence tables for the report —
            ``(title, headers, rows)`` triples rendered through
            :func:`repro.report.tables.render_table`.
        histograms: optional evidence histograms —
            ``(title, label, counts)`` triples rendered through
            :func:`repro.report.histogram.render_histogram`.
    """

    name: str
    title: str
    findings: Tuple[Finding, ...]
    tables: Tuple[Tuple[str, Tuple[str, ...], Tuple[Tuple[str, ...], ...]], ...] = ()
    histograms: Tuple[Tuple[str, str, Dict[int, int]], ...] = ()

    @property
    def verdict(self) -> str:
        """Worst verdict across the dimension's findings."""
        return worst_verdict(finding.verdict for finding in self.findings)

    def as_record(self) -> Dict[str, object]:
        """JSON-serialisable view (the shape ``flags.json`` embeds)."""
        return {
            "name": self.name,
            "title": self.title,
            "verdict": self.verdict,
            "findings": [finding.as_record() for finding in self.findings],
            "tables": [
                {"title": title, "headers": list(headers), "rows": [list(r) for r in rows]}
                for title, headers, rows in self.tables
            ],
            "histograms": [
                {
                    "title": title,
                    "label": label,
                    "counts": {str(k): counts[k] for k in sorted(counts)},
                }
                for title, label, counts in self.histograms
            ],
        }


@dataclass(frozen=True)
class AuditReport:
    """A complete audit: the target, plus one result per dimension.

    Attributes:
        target: what was audited — ``kind`` (``preset`` / ``config`` /
            ``campaign``), ``name`` and, for file targets, ``path``.
        dimensions: dimension results in evaluation order.
    """

    target: Dict[str, object]
    dimensions: Tuple[DimensionResult, ...]

    @property
    def verdict(self) -> str:
        """Worst verdict across every dimension."""
        return worst_verdict(dimension.verdict for dimension in self.dimensions)

    @property
    def exit_code(self) -> int:
        """The CLI exit code for this audit (0 pass / 1 warn / 2 fail)."""
        return exit_code_for(self.verdict)

    def dimension(self, name: str) -> DimensionResult:
        """The result of dimension ``name`` (:class:`AuditError` if absent)."""
        for dimension in self.dimensions:
            if dimension.name == name:
                return dimension
        raise AuditError(
            f"audit has no dimension {name!r}; "
            f"present: {[d.name for d in self.dimensions]}"
        )

    def failed_findings(self) -> List[Finding]:
        """Every finding whose verdict is ``fail``, across all dimensions."""
        return [
            finding
            for dimension in self.dimensions
            for finding in dimension.findings
            if finding.verdict == VERDICT_FAIL
        ]

    def to_dict(self) -> Dict[str, object]:
        """The versioned ``flags.json`` payload."""
        return {
            "schema": FLAGS_SCHEMA_VERSION,
            "tool": "repro-bounds audit",
            "target": dict(self.target),
            "verdict": self.verdict,
            "exit_code": self.exit_code,
            "dimensions": [dimension.as_record() for dimension in self.dimensions],
        }


def _finding_from_record(record: Mapping[str, object]) -> Finding:
    data: Any = record
    try:
        return Finding(
            check=str(data["check"]),
            verdict=str(data["verdict"]),
            detail=str(data["detail"]),
            evidence=dict(data.get("evidence", {})),
        )
    except (KeyError, TypeError) as exc:
        raise AuditError(f"malformed finding record: {exc}") from exc


def _dimension_from_record(record: Mapping[str, object]) -> DimensionResult:
    data: Any = record
    try:
        findings = tuple(_finding_from_record(finding) for finding in data.get("findings", ()))
        tables = tuple(
            (
                str(table["title"]),
                tuple(str(h) for h in table["headers"]),
                tuple(tuple(str(c) for c in row) for row in table["rows"]),
            )
            for table in data.get("tables", ())
        )
        histograms = tuple(
            (
                str(histogram["title"]),
                str(histogram["label"]),
                {int(k): int(v) for k, v in histogram["counts"].items()},
            )
            for histogram in data.get("histograms", ())
        )
        dimension = DimensionResult(
            name=str(data["name"]),
            title=str(data["title"]),
            findings=findings,
            tables=tables,
            histograms=histograms,
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise AuditError(f"malformed dimension record: {exc}") from exc
    stored = record.get("verdict")
    if stored is not None and stored != dimension.verdict:
        raise AuditError(
            f"dimension {dimension.name!r} stores verdict {stored!r} but its "
            f"findings aggregate to {dimension.verdict!r}"
        )
    return dimension


def report_from_dict(payload: Mapping[str, object]) -> AuditReport:
    """Rebuild an :class:`AuditReport` from a ``flags.json`` payload.

    Validation is strict: an unknown schema version, a malformed record or a
    stored verdict disagreeing with its findings raises
    :class:`~repro.errors.AuditError` — a flag file must never be half-read.
    """
    if not isinstance(payload, Mapping):
        raise AuditError("flags payload must be a JSON object")
    if payload.get("schema") != FLAGS_SCHEMA_VERSION:
        raise AuditError(
            f"unsupported flags schema {payload.get('schema')!r} "
            f"(this build reads version {FLAGS_SCHEMA_VERSION})"
        )
    target = payload.get("target")
    if not isinstance(target, Mapping):
        raise AuditError("flags payload has no target object")
    dimensions_raw = payload.get("dimensions")
    if not isinstance(dimensions_raw, list):
        raise AuditError("flags payload has no dimensions list")
    report = AuditReport(
        target=dict(target),
        dimensions=tuple(_dimension_from_record(d) for d in dimensions_raw),
    )
    stored = payload.get("verdict")
    if stored is not None and stored != report.verdict:
        raise AuditError(
            f"flags payload stores verdict {stored!r} but its dimensions "
            f"aggregate to {report.verdict!r}"
        )
    return report


def write_flags(report: AuditReport, path: os.PathLike) -> Path:
    """Write ``report`` as canonical ``flags.json`` under ``path``."""
    destination = Path(path)
    with destination.open("w", encoding="utf-8") as handle:
        json.dump(report.to_dict(), handle, sort_keys=True, indent=2)
        handle.write("\n")
    return destination


def load_flags(path: os.PathLike) -> AuditReport:
    """Load and validate a ``flags.json`` file."""
    source = Path(path)
    try:
        with source.open("r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as exc:
        raise AuditError(f"cannot read flags file {source}: {exc}") from exc
    return report_from_dict(payload)
