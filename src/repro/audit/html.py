"""Self-contained HTML rendering of an :class:`~repro.audit.core.AuditReport`.

The report is a single file with inline CSS and zero external references
(no scripts, no fonts, no images) so it can be archived as a CI artifact
and opened anywhere, years later, exactly as emitted.  Findings render as
real HTML tables; the evidence tables and histograms reuse the existing
text renderers (:func:`repro.report.tables.render_table`,
:func:`repro.report.histogram.render_histogram`) inside ``<pre>`` blocks —
one rendering path for the CLI, the campaign report and the audit report.
"""

from __future__ import annotations

import html
import json
from typing import Dict, List

from ..report.histogram import render_histogram
from ..report.tables import render_table
from .core import FLAGS_SCHEMA_VERSION, AuditReport, DimensionResult, Finding

_STYLE = """
body { font-family: -apple-system, "Segoe UI", Roboto, Helvetica, Arial,
       sans-serif; margin: 2rem auto; max-width: 72rem; padding: 0 1rem;
       color: #1c2733; background: #ffffff; }
h1 { font-size: 1.5rem; border-bottom: 2px solid #d5dce3; padding-bottom: .4rem; }
h2 { font-size: 1.15rem; margin-top: 2rem; }
table { border-collapse: collapse; width: 100%; margin: .6rem 0 1rem; }
th, td { border: 1px solid #d5dce3; padding: .35rem .6rem; text-align: left;
         font-size: .9rem; vertical-align: top; }
th { background: #f2f5f8; }
pre { background: #f6f8fa; border: 1px solid #d5dce3; padding: .6rem;
      overflow-x: auto; font-size: .8rem; line-height: 1.35; }
code { font-family: ui-monospace, SFMono-Regular, Menlo, Consolas, monospace; }
.verdict { display: inline-block; padding: .1rem .55rem; border-radius: .8rem;
           font-weight: 600; font-size: .8rem; text-transform: uppercase; }
.verdict-pass { background: #dcf2e3; color: #1d6b3a; }
.verdict-warn { background: #fdf0d3; color: #8a6116; }
.verdict-fail { background: #fbdcdc; color: #9e2020; }
.meta { color: #5a6b7b; font-size: .85rem; }
details { margin: .3rem 0; }
summary { cursor: pointer; color: #35506b; font-size: .85rem; }
"""


def _badge(verdict: str) -> str:
    return f'<span class="verdict verdict-{verdict}">{verdict}</span>'


def _findings_table(findings: List[Finding]) -> str:
    rows = []
    for finding in findings:
        evidence = ""
        if finding.evidence:
            payload = html.escape(
                json.dumps(finding.evidence, sort_keys=True, indent=2, default=str)
            )
            evidence = (
                "<details><summary>evidence</summary>"
                f"<pre><code>{payload}</code></pre></details>"
            )
        rows.append(
            "<tr>"
            f"<td><code>{html.escape(finding.check)}</code></td>"
            f"<td>{_badge(finding.verdict)}</td>"
            f"<td>{html.escape(finding.detail)}{evidence}</td>"
            "</tr>"
        )
    return (
        "<table><thead><tr><th>check</th><th>verdict</th><th>detail</th>"
        "</tr></thead><tbody>" + "".join(rows) + "</tbody></table>"
    )


def _dimension_section(dimension: DimensionResult) -> str:
    parts = [
        f'<h2 id="{html.escape(dimension.name)}">'
        f"{html.escape(dimension.title)} {_badge(dimension.verdict)}</h2>",
        f'<p class="meta">dimension <code>{html.escape(dimension.name)}</code> · '
        f"{len(dimension.findings)} finding(s)</p>",
        _findings_table(list(dimension.findings)),
    ]
    for title, headers, rows in dimension.tables:
        rendered = html.escape(render_table(list(headers), [list(r) for r in rows]))
        parts.append(f"<h3>{html.escape(title)}</h3><pre><code>{rendered}</code></pre>")
    for title, label, counts in dimension.histograms:
        rendered = html.escape(render_histogram(counts, title=title, label=label))
        parts.append(f"<pre><code>{rendered}</code></pre>")
    return "\n".join(parts)


def _target_line(target: Dict[str, object]) -> str:
    pieces = []
    for key in ("kind", "name", "path", "topology"):
        value = target.get(key)
        if value is not None:
            pieces.append(f"{key}: <code>{html.escape(str(value))}</code>")
    return " · ".join(pieces) or "unknown target"


def render_html(report: AuditReport) -> str:
    """Render ``report`` as one dependency-free HTML document."""
    summary_rows = "".join(
        "<tr>"
        f'<td><a href="#{html.escape(d.name)}"><code>{html.escape(d.name)}</code></a></td>'
        f"<td>{html.escape(d.title)}</td>"
        f"<td>{_badge(d.verdict)}</td>"
        f"<td>{len(d.findings)}</td>"
        "</tr>"
        for d in report.dimensions
    )
    sections = "\n".join(_dimension_section(d) for d in report.dimensions)
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>repro-bounds audit: {html.escape(str(report.target.get("name", "")))}</title>
<style>{_STYLE}</style>
</head>
<body>
<h1>repro-bounds audit {_badge(report.verdict)}</h1>
<p class="meta">{_target_line(report.target)} ·
flags schema {FLAGS_SCHEMA_VERSION} · exit code {report.exit_code}</p>
<table><thead><tr><th>dimension</th><th>title</th><th>verdict</th>
<th>findings</th></tr></thead><tbody>{summary_rows}</tbody></table>
{sections}
</body>
</html>
"""
