"""Resource-stressing kernels (rsk) and the paper's rsk-nop variant.

Three generators are provided, mirroring Figure 1 and Section 4 of the paper:

* :func:`build_rsk` — ``rsk(t)``: a tight loop of ``W + 1`` memory operations
  of type ``t`` (loads or stores) whose addresses map to the same DL1 set, so
  every operation misses in the DL1 and hits in the L2.  Used both as the
  *contender* kernel and, in Section 3.2, as the software under analysis.
* :func:`build_rsk_nop` — ``rsk-nop(t, k)``: the same loop with ``k`` nop
  instructions inserted between consecutive memory operations, which
  stretches the injection time by ``k * delta_nop`` cycles.  Sweeping ``k``
  exposes the saw-tooth whose period equals ``ubd``.
* :func:`build_nop_kernel` — a loop containing only nop instructions, used to
  measure ``delta_nop`` (execution time divided by the number of nops).

All generators return :class:`repro.sim.isa.Program` objects placed in the
private address region of the target core.
"""

from __future__ import annotations

from typing import List, Optional

from ..config import ArchConfig
from ..errors import ProgramError
from ..sim.isa import INSTRUCTION_BYTES, Alu, Instruction, Load, Nop, Program, Store
from .layout import (
    core_address_space,
    footprint_fits_l2_partition,
    same_bank_same_set_addresses,
    same_set_addresses,
)

#: Default number of loop iterations for a finite kernel used as the scua.
DEFAULT_ITERATIONS = 200


def _memory_instruction(kind: str, addr: int) -> Instruction:
    if kind == "load":
        return Load(addr)
    if kind == "store":
        return Store(addr)
    raise ProgramError(f"unsupported rsk access type {kind!r} (use 'load' or 'store')")


def build_rsk(
    config: ArchConfig,
    core_id: int,
    kind: str = "load",
    iterations: Optional[int] = None,
    extra_conflict_lines: int = 1,
    loop_control_overhead: int = 0,
) -> Program:
    """Build ``rsk(t)`` for ``core_id``.

    Args:
        config: target platform (provides the DL1 geometry).
        core_id: core the kernel will run on; selects its address region.
        kind: ``"load"`` or ``"store"`` — the bus access type ``t``.
        iterations: loop iterations; ``None`` builds an infinite contender.
        extra_conflict_lines: how many lines beyond the DL1 associativity the
            loop touches (the paper uses ``W + 1``, i.e. one extra line).
        loop_control_overhead: latency (cycles) of an optional ALU
            instruction appended to the body, modelling loop-control overhead
            at iteration boundaries.  The paper unrolls aggressively to keep
            this below 2%; the default of 0 models a fully unrolled loop.
    """
    if extra_conflict_lines < 1:
        raise ProgramError("rsk needs at least one extra conflicting line to miss in DL1")
    space = core_address_space(core_id)
    addresses = same_set_addresses(
        config.dl1, config.dl1.ways + extra_conflict_lines, base=space.data_base
    )
    if not footprint_fits_l2_partition(config, addresses):
        raise ProgramError(
            "rsk footprint does not fit the core's L2 partition; the kernel would "
            "not hit in L2 as the methodology requires"
        )
    body: List[Instruction] = [_memory_instruction(kind, addr) for addr in addresses]
    if loop_control_overhead > 0:
        body.append(Alu(latency=loop_control_overhead))
    return Program(
        name=f"rsk-{kind}[core{core_id}]",
        body=tuple(body),
        iterations=iterations,
        base_pc=space.code_base,
    )


def build_rsk_nop(
    config: ArchConfig,
    core_id: int,
    kind: str = "load",
    k: int = 0,
    iterations: int = DEFAULT_ITERATIONS,
    extra_conflict_lines: int = 1,
    loop_control_overhead: int = 0,
) -> Program:
    """Build ``rsk-nop(t, k)`` for ``core_id`` (Figure 1(b)).

    ``k`` nop instructions are inserted after every memory operation of the
    plain rsk, raising the injection time between consecutive bus requests
    from ``delta_rsk`` to ``delta_rsk + k * delta_nop``.

    Args:
        config: target platform.
        core_id: core the kernel will run on.
        kind: ``"load"`` or ``"store"``.
        k: number of nops between consecutive memory operations (>= 0).
        iterations: loop iterations (the scua must terminate, so the default
            is finite).
        extra_conflict_lines: see :func:`build_rsk`.
        loop_control_overhead: see :func:`build_rsk`.
    """
    if k < 0:
        raise ProgramError(f"nop count k must be >= 0, got {k}")
    if iterations < 1:
        raise ProgramError("rsk-nop must run at least one iteration")
    space = core_address_space(core_id)
    addresses = same_set_addresses(
        config.dl1, config.dl1.ways + extra_conflict_lines, base=space.data_base
    )
    if not footprint_fits_l2_partition(config, addresses):
        raise ProgramError(
            "rsk-nop footprint does not fit the core's L2 partition; the kernel "
            "would not hit in L2 as the methodology requires"
        )
    body: List[Instruction] = []
    for addr in addresses:
        body.append(_memory_instruction(kind, addr))
        body.extend(Nop() for _ in range(k))
    if loop_control_overhead > 0:
        body.append(Alu(latency=loop_control_overhead))
    return Program(
        name=f"rsk-nop-{kind}(k={k})[core{core_id}]",
        body=tuple(body),
        iterations=iterations,
        base_pc=space.code_base,
    )


def build_bank_conflict_rsk(
    config: ArchConfig,
    core_id: int,
    kind: str = "load",
    iterations: Optional[int] = None,
    target_bank: int = 0,
    loop_control_overhead: int = 0,
) -> Program:
    """Build the bank-conflict rsk: every access misses DL1 *and* L2 and
    lands on one DRAM bank.

    Where the plain :func:`build_rsk` saturates the bus (its lines hit in
    the L2), this variant drives sustained DRAM traffic: its lines collide
    in a single DL1 set, a single L2 set beyond the core's partition ways,
    and a single DRAM bank — and every core's kernel targets the *same*
    bank (``target_bank``), so ``Nc`` contenders serialise on one bank
    queue.  This turns the ``bus_bank_queues`` and ``split_bus`` topologies
    into measurable worst cases: the observed bank-queue waits approach the
    ``memory`` term of ``ArchConfig.ubd_terms`` instead of being incidental
    side effects of an L2-missing workload.

    Args:
        config: target platform.
        core_id: core the kernel will run on; selects its address region.
        kind: ``"load"`` or ``"store"`` — the access type.
        iterations: loop iterations; ``None`` builds an infinite contender.
        target_bank: DRAM bank every access maps to.
        loop_control_overhead: see :func:`build_rsk`.
    """
    # Exceed both the DL1 associativity and the core's L2 partition ways so
    # LRU/FIFO replacement misses on every access at both levels.
    count = max(config.dl1.ways, len(config.l2_ways_for_core(core_id))) + 1
    addresses = same_bank_same_set_addresses(
        config, count, core_id=core_id, target_bank=target_bank
    )
    body: List[Instruction] = [_memory_instruction(kind, addr) for addr in addresses]
    if loop_control_overhead > 0:
        body.append(Alu(latency=loop_control_overhead))
    return Program(
        name=f"rsk-bank-{kind}[core{core_id}]",
        body=tuple(body),
        iterations=iterations,
        base_pc=core_address_space(core_id).code_base,
    )


def build_nop_kernel(
    config: ArchConfig,
    core_id: int,
    iterations: int = 10,
    body_fraction_of_il1: float = 0.25,
) -> Program:
    """Build the nop-only kernel used to derive ``delta_nop`` (Section 4.2).

    The loop body is made as large as possible *without causing instruction
    cache misses* — the paper sizes it to the IL1 — so that dividing the
    execution time by the number of executed nops yields ``delta_nop`` with
    negligible loop-boundary error.

    Args:
        config: target platform.
        core_id: core the kernel will run on.
        iterations: loop iterations.
        body_fraction_of_il1: fraction of the IL1 capacity the body occupies
            (strictly between 0 and 1 so the body always fits).
    """
    if not 0.0 < body_fraction_of_il1 < 1.0:
        raise ProgramError("body_fraction_of_il1 must be in (0, 1)")
    if iterations < 1:
        raise ProgramError("the nop kernel must run at least one iteration")
    space = core_address_space(core_id)
    max_instructions = int(config.il1.size_bytes * body_fraction_of_il1) // INSTRUCTION_BYTES
    body_size = max(1, max_instructions)
    body = tuple(Nop() for _ in range(body_size))
    return Program(
        name=f"nop-kernel[core{core_id}]",
        body=body,
        iterations=iterations,
        base_pc=space.code_base,
    )


def rsk_request_count(program: Program) -> int:
    """Number of bus requests a finite rsk / rsk-nop generates per run.

    For the kernels built by this module every memory instruction misses in
    the DL1 (loads) or is written through (stores), so the request count
    equals the dynamic number of memory instructions.
    """
    count = program.count_memory_instructions()
    if count is None:
        raise ProgramError(
            f"program {program.name!r} is infinite; its request count is unbounded"
        )
    return count
