"""Resource-stressing kernels (rsk) and the paper's rsk-nop variant.

Three generators are provided, mirroring Figure 1 and Section 4 of the paper:

* :func:`build_rsk` — ``rsk(t)``: a tight loop of ``W + 1`` memory operations
  of type ``t`` (loads or stores) whose addresses map to the same DL1 set, so
  every operation misses in the DL1 and hits in the L2.  Used both as the
  *contender* kernel and, in Section 3.2, as the software under analysis.
* :func:`build_rsk_nop` — ``rsk-nop(t, k)``: the same loop with ``k`` nop
  instructions inserted between consecutive memory operations, which
  stretches the injection time by ``k * delta_nop`` cycles.  Sweeping ``k``
  exposes the saw-tooth whose period equals ``ubd``.
* :func:`build_nop_kernel` — a loop containing only nop instructions, used to
  measure ``delta_nop`` (execution time divided by the number of nops).

On multi-resource topologies every shared resource needs its *own*
worst-case generator — the whole premise of the measured-bound methodology
is that the stressing kernel saturates the resource being bounded.  The
**rsk registry** (:data:`RSK_REGISTRY`, one more instance of the shared
:class:`repro.registry.Registry`) maps each ``ArchConfig.ubd_terms``
resource name to the kernel that drives that resource to its worst case:

* ``bus`` — :func:`build_rsk` (every access hits the L2, saturating the
  arbitrated demand channel);
* ``memory`` — :func:`build_bank_conflict_rsk` (every access misses both
  cache levels and all cores collide on one DRAM bank queue);
* ``bus_response`` — :func:`build_response_conflict_rsk` (every access
  misses both cache levels but each core hammers its *own* bank, so DRAM
  services overlap and the returning data piles up on the response
  channel).

The measured-bound pipeline (:mod:`repro.methodology.ubd`) selects kernels
purely through this registry, so a new topology whose ``ubd_terms`` entry
names a registered resource gets a measured bound without touching the
methodology layer.

All generators return :class:`repro.sim.isa.Program` objects placed in the
private address region of the target core.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..config import ArchConfig
from ..errors import MethodologyError, ProgramError
from ..registry import Registry
from ..sim.isa import INSTRUCTION_BYTES, Alu, Instruction, Load, Nop, Program, Store
from .layout import (
    core_address_space,
    footprint_fits_l2_partition,
    same_bank_same_set_addresses,
    same_set_addresses,
)

#: Default number of loop iterations for a finite kernel used as the scua.
DEFAULT_ITERATIONS = 200


def _memory_instruction(kind: str, addr: int) -> Instruction:
    if kind == "load":
        return Load(addr)
    if kind == "store":
        return Store(addr)
    raise ProgramError(f"unsupported rsk access type {kind!r} (use 'load' or 'store')")


def build_rsk(
    config: ArchConfig,
    core_id: int,
    kind: str = "load",
    iterations: Optional[int] = None,
    extra_conflict_lines: int = 1,
    loop_control_overhead: int = 0,
) -> Program:
    """Build ``rsk(t)`` for ``core_id``.

    Args:
        config: target platform (provides the DL1 geometry).
        core_id: core the kernel will run on; selects its address region.
        kind: ``"load"`` or ``"store"`` — the bus access type ``t``.
        iterations: loop iterations; ``None`` builds an infinite contender.
        extra_conflict_lines: how many lines beyond the DL1 associativity the
            loop touches (the paper uses ``W + 1``, i.e. one extra line).
        loop_control_overhead: latency (cycles) of an optional ALU
            instruction appended to the body, modelling loop-control overhead
            at iteration boundaries.  The paper unrolls aggressively to keep
            this below 2%; the default of 0 models a fully unrolled loop.
    """
    if extra_conflict_lines < 1:
        raise ProgramError("rsk needs at least one extra conflicting line to miss in DL1")
    space = core_address_space(core_id)
    addresses = same_set_addresses(
        config.dl1, config.dl1.ways + extra_conflict_lines, base=space.data_base
    )
    if not footprint_fits_l2_partition(config, addresses):
        raise ProgramError(
            "rsk footprint does not fit the core's L2 partition; the kernel would "
            "not hit in L2 as the methodology requires"
        )
    body: List[Instruction] = [_memory_instruction(kind, addr) for addr in addresses]
    if loop_control_overhead > 0:
        body.append(Alu(latency=loop_control_overhead))
    return Program(
        name=f"rsk-{kind}[core{core_id}]",
        body=tuple(body),
        iterations=iterations,
        base_pc=space.code_base,
    )


def build_rsk_nop(
    config: ArchConfig,
    core_id: int,
    kind: str = "load",
    k: int = 0,
    iterations: int = DEFAULT_ITERATIONS,
    extra_conflict_lines: int = 1,
    loop_control_overhead: int = 0,
) -> Program:
    """Build ``rsk-nop(t, k)`` for ``core_id`` (Figure 1(b)).

    ``k`` nop instructions are inserted after every memory operation of the
    plain rsk, raising the injection time between consecutive bus requests
    from ``delta_rsk`` to ``delta_rsk + k * delta_nop``.

    Args:
        config: target platform.
        core_id: core the kernel will run on.
        kind: ``"load"`` or ``"store"``.
        k: number of nops between consecutive memory operations (>= 0).
        iterations: loop iterations (the scua must terminate, so the default
            is finite).
        extra_conflict_lines: see :func:`build_rsk`.
        loop_control_overhead: see :func:`build_rsk`.
    """
    if k < 0:
        raise ProgramError(f"nop count k must be >= 0, got {k}")
    if iterations < 1:
        raise ProgramError("rsk-nop must run at least one iteration")
    space = core_address_space(core_id)
    addresses = same_set_addresses(
        config.dl1, config.dl1.ways + extra_conflict_lines, base=space.data_base
    )
    if not footprint_fits_l2_partition(config, addresses):
        raise ProgramError(
            "rsk-nop footprint does not fit the core's L2 partition; the kernel "
            "would not hit in L2 as the methodology requires"
        )
    body: List[Instruction] = []
    for addr in addresses:
        body.append(_memory_instruction(kind, addr))
        body.extend(Nop() for _ in range(k))
    if loop_control_overhead > 0:
        body.append(Alu(latency=loop_control_overhead))
    return Program(
        name=f"rsk-nop-{kind}(k={k})[core{core_id}]",
        body=tuple(body),
        iterations=iterations,
        base_pc=space.code_base,
    )


def build_bank_conflict_rsk(
    config: ArchConfig,
    core_id: int,
    kind: str = "load",
    iterations: Optional[int] = None,
    target_bank: int = 0,
    loop_control_overhead: int = 0,
) -> Program:
    """Build the bank-conflict rsk: every access misses DL1 *and* L2 and
    lands on one DRAM bank.

    Where the plain :func:`build_rsk` saturates the bus (its lines hit in
    the L2), this variant drives sustained DRAM traffic: its lines collide
    in a single DL1 set, a single L2 set beyond the core's partition ways,
    and a single DRAM bank — and every core's kernel targets the *same*
    bank (``target_bank``), so ``Nc`` contenders serialise on one bank
    queue.  This turns the ``bus_bank_queues`` and ``split_bus`` topologies
    into measurable worst cases: the observed bank-queue waits approach the
    ``memory`` term of ``ArchConfig.ubd_terms`` instead of being incidental
    side effects of an L2-missing workload.

    Args:
        config: target platform.
        core_id: core the kernel will run on; selects its address region.
        kind: ``"load"`` or ``"store"`` — the access type.
        iterations: loop iterations; ``None`` builds an infinite contender.
        target_bank: DRAM bank every access maps to.
        loop_control_overhead: see :func:`build_rsk`.
    """
    # Exceed both the DL1 associativity and the core's L2 partition ways so
    # LRU/FIFO replacement misses on every access at both levels.
    count = max(config.dl1.ways, len(config.l2_ways_for_core(core_id))) + 1
    addresses = same_bank_same_set_addresses(
        config, count, core_id=core_id, target_bank=target_bank
    )
    body: List[Instruction] = [_memory_instruction(kind, addr) for addr in addresses]
    if loop_control_overhead > 0:
        body.append(Alu(latency=loop_control_overhead))
    return Program(
        name=f"rsk-bank-{kind}[core{core_id}]",
        body=tuple(body),
        iterations=iterations,
        base_pc=core_address_space(core_id).code_base,
    )


def build_response_conflict_rsk(
    config: ArchConfig,
    core_id: int,
    kind: str = "load",
    iterations: Optional[int] = None,
    loop_control_overhead: int = 0,
) -> Program:
    """Build the response-channel stressor: every access misses DL1 *and* L2,
    each core targets its **own** DRAM bank, and the access pattern mixes
    row hits into the row misses so the data returns *cluster*.

    Stressing the response channel is harder than stressing a bank queue:
    an in-order core blocks on its demand miss, so the whole platform runs
    closed-loop — requests are serialised by the request channel, every
    access takes the same (row-miss) DRAM service, and the responses come
    back locked to the same phase offsets, never contending.  Two
    ingredients break the lock:

    * **row-hit jitter** — every bank-conflict address is paired with a
      second conflict group one cache line over: the partner lands in the
      *same DRAM row* (an immediate row hit) but its own DL1/L2 sets (so it
      still misses both caches).  Alternating row-miss and row-hit services
      makes each core's response timing jitter by the hit/miss latency
      difference.
    * **per-core period skew** — core ``c`` replays its first ``c``
      row-miss addresses at the end of the loop, so no two cores share a
      loop period and their response phases drift through every offset,
      including the collisions where returns from different banks are ready
      in the same cycle.

    On ``split_bus`` this is the registered worst-case generator for the
    ``bus_response`` term: with at most one pending response per port, a
    fair round of ``Nc - 1`` response occupancies is exactly what the
    analytical term bounds, and the drifting phases drive the channel's
    observed grant waits toward it.

    Args:
        config: target platform.
        core_id: core the kernel will run on; also selects its DRAM bank
            (``core_id % num_banks``) and its period skew.
        kind: ``"load"`` or ``"store"`` — the access type.
        iterations: loop iterations; ``None`` builds an infinite contender.
        loop_control_overhead: see :func:`build_rsk`.
    """
    count = max(config.dl1.ways, len(config.l2_ways_for_core(core_id))) + 1
    addresses = same_bank_same_set_addresses(
        config, count, core_id=core_id, target_bank=core_id % config.dram.num_banks
    )
    line = config.dl1.line_size
    body: List[Instruction] = []
    for addr in addresses:
        body.append(_memory_instruction(kind, addr))
        # Same row (one line over), own DL1/L2 conflict group: a guaranteed
        # cache miss that the open row serves fast — the jitter source.
        body.append(_memory_instruction(kind, addr + line))
    for index in range(core_id):
        body.append(_memory_instruction(kind, addresses[index % count]))
    if loop_control_overhead > 0:
        body.append(Alu(latency=loop_control_overhead))
    return Program(
        name=f"rsk-response-{kind}[core{core_id}]",
        body=tuple(body),
        iterations=iterations,
        base_pc=core_address_space(core_id).code_base,
    )


# --------------------------------------------------------------------------- #
# The rsk registry: resource name -> worst-case stressing kernel.
# --------------------------------------------------------------------------- #

#: Builder signature shared by every registered stressing kernel:
#: ``(config, core_id, kind, iterations) -> Program`` with ``iterations=None``
#: building an infinite contender.
RskBuilder = Callable[[ArchConfig, int, str, Optional[int]], Program]


@dataclass(frozen=True)
class RskEntry:
    """One registered resource-stressing kernel."""

    resource: str
    builder: RskBuilder
    description: str = ""

    def build(
        self,
        config: ArchConfig,
        core_id: int,
        kind: str = "load",
        iterations: Optional[int] = None,
    ) -> Program:
        """Build the kernel for ``core_id`` (``iterations=None`` = infinite)."""
        return self.builder(config, core_id, kind, iterations)


#: Resource name (an ``ArchConfig.ubd_terms`` key) -> registered stressor.
RSK_REGISTRY: Registry[RskEntry] = Registry("resource-stressing kernel")


def register_rsk(
    resource: str, description: str = ""
) -> Callable[[RskBuilder], RskBuilder]:
    """Decorator registering a stressing-kernel builder for ``resource``.

    Re-registering a resource is a configuration error: two runs of the
    measured-bound pipeline on identical configurations must never stress a
    resource with different kernels.
    """

    def decorator(builder: RskBuilder) -> RskBuilder:
        RSK_REGISTRY.register(
            resource,
            RskEntry(resource=resource, builder=builder, description=description),
        )
        return builder

    return decorator


def registered_rsks() -> Tuple[str, ...]:
    """Resources with a registered stressing kernel, in registration order."""
    return RSK_REGISTRY.names()


def rsk_for_resource(resource: str) -> RskEntry:
    """The stressing kernel registered for ``resource``.

    Raises :class:`~repro.errors.ConfigurationError` (naming the registered
    alternatives) for resources without a worst-case generator — a topology
    whose ``ubd_terms`` introduce a new resource must register one before the
    pipeline can measure it.
    """
    return RSK_REGISTRY.require(resource)


def build_stress_contender_set(
    config: ArchConfig,
    resource: str,
    scua_core: int,
    kind: str = "load",
) -> Dict[int, Program]:
    """One infinite stressing kernel per core other than ``scua_core``.

    The per-resource analogue of
    :func:`repro.methodology.experiment.build_contender_set`: the contenders
    are drawn from the rsk registry, so they drive ``resource`` — not just
    the bus — to its worst case.
    """
    if not 0 <= scua_core < config.num_cores:
        raise MethodologyError(f"scua core {scua_core} does not exist")
    entry = rsk_for_resource(resource)
    return {
        core: entry.build(config, core, kind=kind, iterations=None)
        for core in range(config.num_cores)
        if core != scua_core
    }


@register_rsk("bus", "L2-hitting rsk saturating the arbitrated demand channel")
def _bus_rsk(
    config: ArchConfig, core_id: int, kind: str, iterations: Optional[int]
) -> Program:
    return build_rsk(config, core_id, kind=kind, iterations=iterations)


@register_rsk("memory", "bank-conflict rsk serialising every core on one DRAM bank queue")
def _memory_rsk(
    config: ArchConfig, core_id: int, kind: str, iterations: Optional[int]
) -> Program:
    return build_bank_conflict_rsk(config, core_id, kind=kind, iterations=iterations)


@register_rsk(
    "bus_response",
    "per-core-bank rsk overlapping DRAM services to pile returns on the response channel",
)
def _response_rsk(
    config: ArchConfig, core_id: int, kind: str, iterations: Optional[int]
) -> Program:
    return build_response_conflict_rsk(config, core_id, kind=kind, iterations=iterations)


def build_nop_kernel(
    config: ArchConfig,
    core_id: int,
    iterations: int = 10,
    body_fraction_of_il1: float = 0.25,
) -> Program:
    """Build the nop-only kernel used to derive ``delta_nop`` (Section 4.2).

    The loop body is made as large as possible *without causing instruction
    cache misses* — the paper sizes it to the IL1 — so that dividing the
    execution time by the number of executed nops yields ``delta_nop`` with
    negligible loop-boundary error.

    Args:
        config: target platform.
        core_id: core the kernel will run on.
        iterations: loop iterations.
        body_fraction_of_il1: fraction of the IL1 capacity the body occupies
            (strictly between 0 and 1 so the body always fits).
    """
    if not 0.0 < body_fraction_of_il1 < 1.0:
        raise ProgramError("body_fraction_of_il1 must be in (0, 1)")
    if iterations < 1:
        raise ProgramError("the nop kernel must run at least one iteration")
    space = core_address_space(core_id)
    max_instructions = int(config.il1.size_bytes * body_fraction_of_il1) // INSTRUCTION_BYTES
    body_size = max(1, max_instructions)
    body = tuple(Nop() for _ in range(body_size))
    return Program(
        name=f"nop-kernel[core{core_id}]",
        body=body,
        iterations=iterations,
        base_pc=space.code_base,
    )


def rsk_request_count(program: Program) -> int:
    """Number of bus requests a finite rsk / rsk-nop generates per run.

    For the kernels built by this module every memory instruction misses in
    the DL1 (loads) or is written through (stores), so the request count
    equals the dynamic number of memory instructions.
    """
    count = program.count_memory_instructions()
    if count is None:
        raise ProgramError(f"program {program.name!r} is infinite; its request count is unbounded")
    return count
