"""Synthetic EEMBC-Autobench-like workload suite.

The paper's Figure 6(a) experiment runs randomly composed 4-task workloads of
EEMBC Autobench benchmarks (automotive kernels such as angle-to-time
conversion, CAN message handling, table lookups, FIR/IIR filters or matrix
arithmetic).  EEMBC is proprietary and cannot be redistributed, so this
module provides the closest synthetic equivalent: a suite of small kernels
whose *memory behaviour* spans the same range — from cache-resident
compute-bound loops that rarely touch the bus to table-walking kernels whose
working set exceeds the DL1 and therefore produces a steady trickle of L2
accesses.

What matters for the reproduced experiment is only that (a) real workloads
issue bus requests sparsely and at irregular intervals, unlike the rsk, and
(b) different workloads differ in intensity.  Both properties hold by
construction here, and every generator is deterministic given its seed.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..config import ArchConfig
from ..errors import ProgramError
from ..sim.isa import Alu, Instruction, Load, Nop, Program, Store
from .layout import core_address_space


@dataclass(frozen=True)
class SyntheticKernelSpec:
    """Static description of one synthetic kernel.

    Attributes:
        name: short identifier (EEMBC-Autobench flavoured).
        description: what the kernel imitates.
        body_length: number of instructions in the loop body.
        working_set_bytes: span of the data the kernel touches; footprints
            larger than the DL1 produce recurring bus traffic.
        load_fraction: fraction of body slots that are loads.
        store_fraction: fraction of body slots that are stores.
        pattern: ``"sequential"``, ``"strided"`` or ``"random"`` address
            generation within the working set.
        alu_latency: latency of the compute instructions filling the rest of
            the body.
        default_iterations: loop count used when the caller does not override.
    """

    name: str
    description: str
    body_length: int
    working_set_bytes: int
    load_fraction: float
    store_fraction: float
    pattern: str
    alu_latency: int = 1
    default_iterations: int = 40

    def __post_init__(self) -> None:
        if self.body_length < 4:
            raise ProgramError(f"kernel {self.name!r}: body too short")
        if not 0.0 <= self.load_fraction <= 1.0:
            raise ProgramError(f"kernel {self.name!r}: bad load fraction")
        if not 0.0 <= self.store_fraction <= 1.0:
            raise ProgramError(f"kernel {self.name!r}: bad store fraction")
        if self.load_fraction + self.store_fraction > 1.0:
            raise ProgramError(f"kernel {self.name!r}: memory fractions exceed 1")
        if self.pattern not in ("sequential", "strided", "random"):
            raise ProgramError(f"kernel {self.name!r}: unknown pattern {self.pattern!r}")
        if self.working_set_bytes < 64:
            raise ProgramError(f"kernel {self.name!r}: working set too small")


#: The synthetic suite.  Working sets are chosen relative to the reference
#: platform's 16KB DL1 and 64KB per-core L2 partition.
SYNTHETIC_KERNELS: Dict[str, SyntheticKernelSpec] = {
    spec.name: spec
    for spec in (
        SyntheticKernelSpec(
            name="a2time",
            description="angle-to-time conversion: compute bound, small lookup table",
            body_length=96,
            working_set_bytes=2 * 1024,
            load_fraction=0.10,
            store_fraction=0.02,
            pattern="random",
            alu_latency=2,
        ),
        SyntheticKernelSpec(
            name="aifirf",
            description="FIR filter: streaming loads over a coefficient window",
            body_length=128,
            working_set_bytes=6 * 1024,
            load_fraction=0.16,
            store_fraction=0.02,
            pattern="sequential",
            alu_latency=1,
        ),
        SyntheticKernelSpec(
            name="basefp",
            description="basic floating point: long-latency compute, little memory",
            body_length=80,
            working_set_bytes=1024,
            load_fraction=0.08,
            store_fraction=0.01,
            pattern="sequential",
            alu_latency=5,
        ),
        SyntheticKernelSpec(
            name="bitmnp",
            description="bit manipulation: ALU heavy with a tiny table",
            body_length=72,
            working_set_bytes=512,
            load_fraction=0.10,
            store_fraction=0.02,
            pattern="random",
            alu_latency=1,
        ),
        SyntheticKernelSpec(
            name="cacheb",
            description="cache buster: working set well beyond the DL1",
            body_length=96,
            working_set_bytes=32 * 1024,
            load_fraction=0.22,
            store_fraction=0.03,
            pattern="strided",
            alu_latency=1,
        ),
        SyntheticKernelSpec(
            name="canrdr",
            description="CAN remote data request: parse and copy small frames",
            body_length=88,
            working_set_bytes=4 * 1024,
            load_fraction=0.15,
            store_fraction=0.04,
            pattern="sequential",
            alu_latency=1,
        ),
        SyntheticKernelSpec(
            name="idctrn",
            description="inverse DCT: blocked matrix walk slightly above the DL1",
            body_length=112,
            working_set_bytes=20 * 1024,
            load_fraction=0.16,
            store_fraction=0.03,
            pattern="strided",
            alu_latency=2,
        ),
        SyntheticKernelSpec(
            name="iirflt",
            description="IIR filter: small recurrent state, compute bound",
            body_length=64,
            working_set_bytes=2 * 1024,
            load_fraction=0.14,
            store_fraction=0.03,
            pattern="sequential",
            alu_latency=3,
        ),
        SyntheticKernelSpec(
            name="matrix",
            description="matrix arithmetic: column walks exceeding the DL1",
            body_length=120,
            working_set_bytes=24 * 1024,
            load_fraction=0.18,
            store_fraction=0.03,
            pattern="strided",
            alu_latency=1,
        ),
        SyntheticKernelSpec(
            name="puwmod",
            description="pulse width modulation: periodic stores to output registers",
            body_length=72,
            working_set_bytes=3 * 1024,
            load_fraction=0.08,
            store_fraction=0.04,
            pattern="sequential",
            alu_latency=2,
        ),
        SyntheticKernelSpec(
            name="rspeed",
            description="road speed calculation: mixed compute and lookups",
            body_length=84,
            working_set_bytes=6 * 1024,
            load_fraction=0.12,
            store_fraction=0.03,
            pattern="random",
            alu_latency=2,
        ),
        SyntheticKernelSpec(
            name="tblook",
            description="table lookup: pseudo-random indexing over a large table",
            body_length=96,
            working_set_bytes=28 * 1024,
            load_fraction=0.20,
            store_fraction=0.02,
            pattern="random",
            alu_latency=1,
        ),
        SyntheticKernelSpec(
            name="ttsprk",
            description="tooth to spark: interleaved sensor reads and actuator writes",
            body_length=104,
            working_set_bytes=10 * 1024,
            load_fraction=0.14,
            store_fraction=0.04,
            pattern="random",
            alu_latency=1,
        ),
    )
}


def synthetic_kernel_names() -> Tuple[str, ...]:
    """Names of all kernels in the suite, in a stable order."""
    return tuple(sorted(SYNTHETIC_KERNELS))


def _addresses(
    spec: SyntheticKernelSpec,
    rng: random.Random,
    count: int,
    base: int,
    line_size: int,
) -> List[int]:
    """Generate ``count`` data addresses following the spec's pattern."""
    span = spec.working_set_bytes
    addresses: List[int] = []
    if spec.pattern == "sequential":
        step = line_size // 2
        cursor = 0
        for _ in range(count):
            addresses.append(base + cursor % span)
            cursor += step
    elif spec.pattern == "strided":
        stride = max(line_size, span // max(count, 1) // line_size * line_size or line_size)
        cursor = 0
        for _ in range(count):
            addresses.append(base + cursor % span)
            cursor += stride
    else:  # random
        for _ in range(count):
            offset = rng.randrange(0, span, 4)
            addresses.append(base + offset)
    return addresses


def build_synthetic_kernel(
    config: ArchConfig,
    name: str,
    core_id: int,
    iterations: Optional[int] = None,
    seed: int = 0,
) -> Program:
    """Instantiate the synthetic kernel ``name`` for ``core_id``.

    Args:
        config: target platform (provides the line size used for address
            generation).
        name: one of :func:`synthetic_kernel_names`.
        core_id: core the kernel will run on; selects its address region.
        iterations: loop iterations, or ``None`` to use the kernel default;
            pass ``0`` only through :meth:`Program.with_iterations` if an
            infinite contender is needed.
        seed: seed of the deterministic address generator; two kernels built
            with the same arguments are identical.
    """
    try:
        spec = SYNTHETIC_KERNELS[name]
    except KeyError as exc:
        raise ProgramError(
            f"unknown synthetic kernel {name!r}; available: {', '.join(synthetic_kernel_names())}"
        ) from exc
    space = core_address_space(core_id)
    # crc32, not hash(): string hashing is randomised per interpreter process
    # (PYTHONHASHSEED), which would make kernels differ between the serial
    # path and pool workers — and between any two invocations of the tools.
    rng = random.Random((seed * 1_000_003 + core_id) ^ zlib.crc32(name.encode("utf-8")))
    n_loads = int(round(spec.body_length * spec.load_fraction))
    n_stores = int(round(spec.body_length * spec.store_fraction))
    n_compute = spec.body_length - n_loads - n_stores

    load_addresses = _addresses(spec, rng, n_loads, space.data_base, config.line_size)
    store_addresses = _addresses(
        spec, rng, n_stores, space.data_base + spec.working_set_bytes, config.line_size
    )

    slots: List[Instruction] = []
    slots.extend(Load(addr) for addr in load_addresses)
    slots.extend(Store(addr) for addr in store_addresses)
    slots.extend(
        Alu(latency=spec.alu_latency) if index % 7 else Nop() for index in range(n_compute)
    )
    rng.shuffle(slots)
    return Program(
        name=f"{spec.name}[core{core_id}]",
        body=tuple(slots),
        iterations=spec.default_iterations if iterations is None else iterations,
        base_pc=space.code_base,
    )
