"""Kernel and workload generators.

* :mod:`repro.kernels.layout` — address-layout helpers (same-set strides,
  per-core address regions) used to construct kernels that systematically
  miss in the DL1 and hit in the L2, as Section 2 of the paper prescribes.
* :mod:`repro.kernels.rsk` — the resource-stressing kernels: ``rsk(t)``,
  ``rsk-nop(t, k)``, the nop-only kernel used to derive ``delta_nop``, the
  bank-conflict and response-channel stressors, and the rsk registry mapping
  every ``ubd_terms`` resource to its worst-case generator.
* :mod:`repro.kernels.synthetic` — the EEMBC-Autobench substitute: a suite of
  automotive-flavoured synthetic programs with realistic, irregular bus
  access patterns.
"""

from .layout import CoreAddressSpace, same_bank_same_set_addresses, same_set_addresses
from .rsk import (
    RSK_REGISTRY,
    RskEntry,
    build_bank_conflict_rsk,
    build_nop_kernel,
    build_response_conflict_rsk,
    build_rsk,
    build_rsk_nop,
    build_stress_contender_set,
    register_rsk,
    registered_rsks,
    rsk_for_resource,
    rsk_request_count,
)
from .synthetic import (
    SYNTHETIC_KERNELS,
    SyntheticKernelSpec,
    build_synthetic_kernel,
    synthetic_kernel_names,
)

__all__ = [
    "CoreAddressSpace",
    "RSK_REGISTRY",
    "RskEntry",
    "SYNTHETIC_KERNELS",
    "SyntheticKernelSpec",
    "build_bank_conflict_rsk",
    "build_nop_kernel",
    "build_response_conflict_rsk",
    "build_rsk",
    "build_rsk_nop",
    "build_stress_contender_set",
    "build_synthetic_kernel",
    "register_rsk",
    "registered_rsks",
    "rsk_for_resource",
    "rsk_request_count",
    "same_set_addresses",
    "same_bank_same_set_addresses",
    "synthetic_kernel_names",
]
