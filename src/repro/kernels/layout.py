"""Address-layout helpers for kernel construction.

The rsk construction of Section 2 needs loads "having a predefined stride
among them which makes them to be mapped into the same DL1 set and to exceed
its capacity, hence systematically missing in DL1", while all accessed lines
still fit in the core's L2 partition.  These helpers compute such strides and
carve a private address region per core so kernels on different cores never
share cache lines (no coherence is modelled, see DESIGN.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from ..config import ArchConfig, CacheConfig
from ..errors import ProgramError

#: Size of the private data region given to each core (1 MiB is far larger
#: than any kernel footprint while keeping addresses small).
CORE_REGION_BYTES = 1 << 20

#: Base of the data address space (code lives below this).
DATA_BASE_ADDRESS = 0x1000_0000

#: Base of the code address space; programs space their bodies inside it.
CODE_BASE_ADDRESS = 0x4000_0000

#: Bytes reserved for each program's code so bodies never overlap.
CODE_REGION_BYTES = 1 << 16


@dataclass(frozen=True)
class CoreAddressSpace:
    """Private code/data address region of one core.

    Attributes:
        core_id: the owning core.
        data_base: first byte of the core's private data region.
        code_base: program counter of the first instruction of the core's
            program.
    """

    core_id: int
    data_base: int
    code_base: int

    @property
    def data_limit(self) -> int:
        """First byte past the core's data region."""
        return self.data_base + CORE_REGION_BYTES


def core_address_space(core_id: int) -> CoreAddressSpace:
    """Return the private address region assigned to ``core_id``."""
    if core_id < 0:
        raise ProgramError(f"core id must be non-negative, got {core_id}")
    return CoreAddressSpace(
        core_id=core_id,
        data_base=DATA_BASE_ADDRESS + core_id * CORE_REGION_BYTES,
        code_base=CODE_BASE_ADDRESS + core_id * CODE_REGION_BYTES,
    )


def same_set_addresses(cache: CacheConfig, count: int, base: int = 0) -> List[int]:
    """Return ``count`` line-aligned addresses that map to the same set of ``cache``.

    Consecutive addresses differ by the cache's same-set stride
    (``num_sets * line_size``), which is exactly how the paper's rsk picks its
    load targets (Figure 1(a)).

    Args:
        cache: geometry of the cache whose sets must collide.
        count: number of addresses to generate; with ``count > cache.ways``
            the resulting access sequence misses on every access under LRU or
            FIFO replacement.
        base: starting address; it is rounded down to a line boundary.
    """
    if count < 1:
        raise ProgramError(f"need at least one address, got {count}")
    aligned = base - (base % cache.line_size)
    stride = cache.same_set_stride
    return [aligned + index * stride for index in range(count)]


def same_bank_same_set_addresses(
    config: ArchConfig, count: int, core_id: int = 0, target_bank: int = 0
) -> List[int]:
    """Return ``count`` line-aligned addresses in ``core_id``'s region that
    collide everywhere at once: one DL1 set, one L2 set, one DRAM bank.

    This is the bank-conflict layout: with ``count`` exceeding both the DL1
    associativity and the core's L2 partition ways, every access misses both
    cache levels, and because all lines live in a single DRAM bank the
    resulting memory traffic serialises on that bank — the worst case the
    ``bus_bank_queues`` and ``split_bus`` topologies bound with their
    ``memory`` term.  The stride is the least common multiple of the two
    same-set strides and the bank-interleaving span
    (``row_size_bytes * num_banks``), and the base address is rotated within
    its row group so *every* core's kernel lands on ``target_bank`` — all
    contenders hammer the same bank, not merely one bank each.

    Args:
        config: target platform (cache geometries and DRAM mapping).
        count: number of addresses; must exceed the DL1 ways and the core's
            L2 partition ways for the guaranteed-miss property.
        core_id: core whose private region hosts the addresses.
        target_bank: DRAM bank all addresses map to.
    """
    if count < 1:
        raise ProgramError(f"need at least one address, got {count}")
    dram = config.dram
    if not 0 <= target_bank < dram.num_banks:
        raise ProgramError(f"target bank {target_bank} out of range for {dram.num_banks} banks")
    space = core_address_space(core_id)
    stride = math.lcm(
        config.dl1.same_set_stride,
        config.l2.cache.same_set_stride,
        dram.row_size_bytes * dram.num_banks,
    )
    base = space.data_base - (space.data_base % config.dl1.line_size)
    # Rotate the base within its bank-interleaving span onto the target
    # bank; the rotation is a whole number of rows, so line alignment and
    # the same-set property of the strided addresses are preserved.
    row_shift = dram.row_size_bytes.bit_length() - 1
    base_bank = (base >> row_shift) % dram.num_banks
    base += ((target_bank - base_bank) % dram.num_banks) * dram.row_size_bytes
    addresses = [base + index * stride for index in range(count)]
    if addresses[-1] + config.dl1.line_size > space.data_limit:
        raise ProgramError(
            f"bank-conflict footprint ({count} lines at stride {stride}) "
            f"exceeds core {core_id}'s private region"
        )
    return addresses


def footprint_fits_l2_partition(config: ArchConfig, addresses: List[int]) -> bool:
    """Check that ``addresses`` fit in a single core's L2 partition.

    The rsk must hit in the L2 (Section 2), so its footprint has to fit in
    the one way the NGMP assigns to each core.  The check is conservative:
    it verifies both the total number of distinct lines and the number of
    lines that collide in any single L2 set.
    """
    l2 = config.l2.cache
    # Partitions can be uneven when the way count is not a multiple of the
    # core count; be conservative and size against the smallest partition.
    ways_per_core = min(len(config.l2_ways_for_core(core)) for core in range(config.num_cores))
    ways_per_core = max(1, ways_per_core)
    lines = {addr - (addr % l2.line_size) for addr in addresses}
    if len(lines) > ways_per_core * l2.num_sets:
        return False
    per_set: dict = {}
    for line in lines:
        index = (line // l2.line_size) % l2.num_sets
        per_set[index] = per_set.get(index, 0) + 1
    return all(count <= ways_per_core for count in per_set.values())
