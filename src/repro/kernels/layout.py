"""Address-layout helpers for kernel construction.

The rsk construction of Section 2 needs loads "having a predefined stride
among them which makes them to be mapped into the same DL1 set and to exceed
its capacity, hence systematically missing in DL1", while all accessed lines
still fit in the core's L2 partition.  These helpers compute such strides and
carve a private address region per core so kernels on different cores never
share cache lines (no coherence is modelled, see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..config import ArchConfig, CacheConfig
from ..errors import ProgramError

#: Size of the private data region given to each core (1 MiB is far larger
#: than any kernel footprint while keeping addresses small).
CORE_REGION_BYTES = 1 << 20

#: Base of the data address space (code lives below this).
DATA_BASE_ADDRESS = 0x1000_0000

#: Base of the code address space; programs space their bodies inside it.
CODE_BASE_ADDRESS = 0x4000_0000

#: Bytes reserved for each program's code so bodies never overlap.
CODE_REGION_BYTES = 1 << 16


@dataclass(frozen=True)
class CoreAddressSpace:
    """Private code/data address region of one core.

    Attributes:
        core_id: the owning core.
        data_base: first byte of the core's private data region.
        code_base: program counter of the first instruction of the core's
            program.
    """

    core_id: int
    data_base: int
    code_base: int

    @property
    def data_limit(self) -> int:
        """First byte past the core's data region."""
        return self.data_base + CORE_REGION_BYTES


def core_address_space(core_id: int) -> CoreAddressSpace:
    """Return the private address region assigned to ``core_id``."""
    if core_id < 0:
        raise ProgramError(f"core id must be non-negative, got {core_id}")
    return CoreAddressSpace(
        core_id=core_id,
        data_base=DATA_BASE_ADDRESS + core_id * CORE_REGION_BYTES,
        code_base=CODE_BASE_ADDRESS + core_id * CODE_REGION_BYTES,
    )


def same_set_addresses(cache: CacheConfig, count: int, base: int = 0) -> List[int]:
    """Return ``count`` line-aligned addresses that map to the same set of ``cache``.

    Consecutive addresses differ by the cache's same-set stride
    (``num_sets * line_size``), which is exactly how the paper's rsk picks its
    load targets (Figure 1(a)).

    Args:
        cache: geometry of the cache whose sets must collide.
        count: number of addresses to generate; with ``count > cache.ways``
            the resulting access sequence misses on every access under LRU or
            FIFO replacement.
        base: starting address; it is rounded down to a line boundary.
    """
    if count < 1:
        raise ProgramError(f"need at least one address, got {count}")
    aligned = base - (base % cache.line_size)
    stride = cache.same_set_stride
    return [aligned + index * stride for index in range(count)]


def footprint_fits_l2_partition(config: ArchConfig, addresses: List[int]) -> bool:
    """Check that ``addresses`` fit in a single core's L2 partition.

    The rsk must hit in the L2 (Section 2), so its footprint has to fit in
    the one way the NGMP assigns to each core.  The check is conservative:
    it verifies both the total number of distinct lines and the number of
    lines that collide in any single L2 set.
    """
    l2 = config.l2.cache
    # Partitions can be uneven when the way count is not a multiple of the
    # core count; be conservative and size against the smallest partition.
    ways_per_core = min(
        len(config.l2_ways_for_core(core)) for core in range(config.num_cores)
    )
    ways_per_core = max(1, ways_per_core)
    lines = {addr - (addr % l2.line_size) for addr in addresses}
    if len(lines) > ways_per_core * l2.num_sets:
        return False
    per_set: dict = {}
    for line in lines:
        index = (line // l2.line_size) % l2.num_sets
        per_set[index] = per_set.get(index, 0) + 1
    return all(count <= ways_per_core for count in per_set.values())
