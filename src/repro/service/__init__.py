"""Campaign-as-a-service: the `repro-bounds serve` daemon and its peers.

PR 8 built the throughput half of campaign-as-a-service — the durable
:class:`~repro.campaign.store.ResultStore` with cross-campaign dedup and
shard-dispatched execution.  This package is the service front-end that
turns that engine from a one-shot CLI into a long-lived daemon:

* :mod:`repro.service.protocol` — the versioned JSON-lines wire protocol
  (one JSON object per line over a Unix or TCP socket) shared by clients,
  workers and the daemon, plus the shard payload serialisation that ships
  :class:`~repro.campaign.runner.ShardTask` objects to remote executors.
* :mod:`repro.service.jobs` — the job model: a submitted
  :class:`~repro.campaign.spec.CampaignSpec` moving through
  ``queued -> running -> completed | failed``.
* :mod:`repro.service.daemon` — :class:`CampaignDaemon`: accepts specs
  from many clients, executes them FIFO against one shared store and
  worker pool (so overlapping campaigns simulate only their
  miss-frontier), hands shards to remote workers with leases/heartbeats/
  requeue, and drains gracefully on shutdown.
* :mod:`repro.service.worker` — :class:`RemoteWorker`: connects to a
  daemon, pulls shards, executes them in-process and streams heartbeats.
* :mod:`repro.service.client` — :class:`ServiceClient`: the
  ``submit``/``status``/``results``/``shutdown`` command surface.

The CLI front-ends are ``repro-bounds serve | submit | status | results |
shutdown | worker``; the protocol itself is documented in DESIGN.md §11.
"""

from .client import ServiceClient
from .daemon import CampaignDaemon, ShardBoard
from .jobs import JOB_STATES, Job
from .protocol import (
    PROTOCOL_VERSION,
    ServiceAddress,
    parse_address,
    shard_from_payload,
    shard_to_payload,
)
from .worker import RemoteWorker

__all__ = [
    "CampaignDaemon",
    "JOB_STATES",
    "Job",
    "PROTOCOL_VERSION",
    "RemoteWorker",
    "ServiceAddress",
    "ServiceClient",
    "ShardBoard",
    "parse_address",
    "shard_from_payload",
    "shard_to_payload",
]
