"""Versioned JSON-lines wire protocol for the campaign service.

Every frame is one JSON object on one line, UTF-8, terminated by ``\\n``:

    {"v": 1, "type": "submit", "spec": {...}}

``v`` is the protocol version (:data:`PROTOCOL_VERSION`); a peer that
receives a frame with a different ``v`` answers with an ``error`` frame
and closes — silent cross-version talk is how jobs get corrupted.  The
frame ``type`` selects the handler; unknown types are an error, never
ignored.

Frame vocabulary (full lifecycle semantics in DESIGN.md §11):

* Clients send ``submit`` / ``status`` / ``results`` / ``shutdown`` /
  ``ping``; the daemon answers each with exactly one response frame
  (``submitted``, ``status``, ``results``, ``ok``, ``pong``, or
  ``error``) and the client closes the connection.
* Workers speak a pull protocol on one long-lived connection:
  ``worker-hello`` then a ``task-request`` loop.  The daemon answers
  ``task`` (a leased shard), ``idle`` (nothing to do right now) or
  ``drain`` (shutting down — disconnect).  Completed shards come back as
  ``task-result``; ``heartbeat`` frames are one-way (no response) so
  they can interleave with an in-flight request/response exchange
  without frame ordering ambiguity.

Shard payloads serialise :class:`~repro.campaign.runner.ShardTask` with
the same config-deduplication the process-pool path uses: each distinct
:class:`~repro.config.ArchConfig` is encoded once (via ``to_dict``) and
runs reference it by index, so the wire cost is proportional to the
number of platforms in the shard, not the number of runs.

Addresses: ``unix:/path/to.sock`` (default when the string looks like a
path) or ``tcp:host:port``.  Unix sockets are the default transport —
same-host multiplexing with filesystem permissions; TCP is the opt-in
multi-host transport.
"""

from __future__ import annotations

import json
import os
import socket
from dataclasses import dataclass
from typing import IO, Dict, List, Optional, Tuple

from ..campaign.runner import ShardRun, ShardTask
from ..config import ArchConfig, config_from_dict
from ..errors import ServiceError

#: Version stamped into every frame; bump on any wire-visible change so
#: mixed-version daemon/client/worker pairs fail loudly at the first frame.
PROTOCOL_VERSION = 1

#: Read buffer for one frame; a campaign `results` frame can carry a whole
#: grid's records, so the cap is generous (64 MiB) but finite — a stream
#: that never newline-terminates must not consume unbounded memory.
MAX_FRAME_BYTES = 64 * 1024 * 1024


class ConnectionLost(ServiceError):
    """The peer went away mid-conversation (EOF, reset, broken pipe).

    Split from :class:`ServiceError` so peers can distinguish "the daemon
    exited" — which a draining worker treats as a normal end of service —
    from a real protocol violation, which should always surface loudly.
    """


@dataclass(frozen=True)
class ServiceAddress:
    """Where a daemon listens: a Unix socket path or a TCP endpoint."""

    kind: str  # "unix" | "tcp"
    path: str = ""
    host: str = ""
    port: int = 0

    def __str__(self) -> str:
        if self.kind == "unix":
            return f"unix:{self.path}"
        return f"tcp:{self.host}:{self.port}"

    def create_listener(self, backlog: int = 16) -> socket.socket:
        """Bind and listen; Unix sockets replace a stale socket file."""
        if self.kind == "unix":
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                if os.path.exists(self.path):
                    # A bound Unix socket path persists after the daemon
                    # dies; probe it before unlinking so we never steal a
                    # live daemon's address.
                    probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                    try:
                        probe.settimeout(0.5)
                        probe.connect(self.path)
                    except OSError:
                        os.unlink(self.path)
                    else:
                        probe.close()
                        listener.close()
                        raise ServiceError(
                            f"address {self} is in use by a live daemon"
                        )
                    finally:
                        probe.close()
                listener.bind(self.path)
            except OSError as exc:
                listener.close()
                raise ServiceError(f"cannot bind {self}: {exc}") from exc
        else:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            try:
                listener.bind((self.host, self.port))
            except OSError as exc:
                listener.close()
                raise ServiceError(f"cannot bind {self}: {exc}") from exc
        listener.listen(backlog)
        return listener

    def connect(self, timeout: Optional[float] = None) -> socket.socket:
        """Open a client connection to this address."""
        try:
            if self.kind == "unix":
                conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                conn.settimeout(timeout)
                conn.connect(self.path)
            else:
                conn = socket.create_connection((self.host, self.port), timeout=timeout)
        except OSError as exc:
            raise ServiceError(f"cannot connect to {self}: {exc}") from exc
        conn.settimeout(None)
        return conn


def parse_address(text: str) -> ServiceAddress:
    """Parse ``unix:/path``, ``tcp:host:port``, or a bare path (Unix).

    The bare-path form keeps the common case terse: ``repro-bounds serve
    --socket out/daemon.sock``.
    """
    if text.startswith("unix:"):
        path = text[len("unix:") :]
        if not path:
            raise ServiceError("unix address needs a socket path")
        return ServiceAddress(kind="unix", path=path)
    if text.startswith("tcp:"):
        rest = text[len("tcp:") :]
        host, sep, port_text = rest.rpartition(":")
        if not sep or not host:
            raise ServiceError(f"tcp address must be tcp:host:port, got {text!r}")
        try:
            port = int(port_text)
        except ValueError as exc:
            raise ServiceError(f"invalid tcp port {port_text!r}") from exc
        if not 0 <= port <= 65535:
            raise ServiceError(f"tcp port out of range: {port}")
        return ServiceAddress(kind="tcp", host=host, port=port)
    if not text:
        raise ServiceError("empty service address")
    return ServiceAddress(kind="unix", path=text)


# --------------------------------------------------------------------- #
# Frame I/O
# --------------------------------------------------------------------- #


def make_frame(frame_type: str, **fields: object) -> Dict[str, object]:
    """A protocol frame: version + type + payload fields."""
    frame: Dict[str, object] = {"v": PROTOCOL_VERSION, "type": frame_type}
    frame.update(fields)
    return frame


def error_frame(message: str) -> Dict[str, object]:
    return make_frame("error", message=message)


def send_frame(conn: socket.socket, frame: Dict[str, object]) -> None:
    """Serialise ``frame`` as one JSON line and send it whole."""
    data = json.dumps(frame, sort_keys=True, separators=(",", ":")).encode("utf-8")
    try:
        conn.sendall(data + b"\n")
    except OSError as exc:
        raise ConnectionLost(
            f"connection lost while sending {frame.get('type')}: {exc}"
        ) from exc


def recv_frame(reader: IO[bytes]) -> Optional[Dict[str, object]]:
    """Read one frame from a ``socket.makefile('rb')`` reader.

    Returns ``None`` on clean EOF (peer closed).  Raises
    :class:`ServiceError` on malformed JSON, a non-object frame, an
    over-long line, or a protocol version mismatch — all cases where
    continuing to parse the stream would desynchronise it.
    """
    try:
        line = reader.readline(MAX_FRAME_BYTES + 1)
    except OSError as exc:
        raise ConnectionLost(f"connection lost while receiving: {exc}") from exc
    if not line:
        return None
    if len(line) > MAX_FRAME_BYTES:
        raise ServiceError(f"frame exceeds {MAX_FRAME_BYTES} bytes")
    try:
        frame = json.loads(line)
    except ValueError as exc:
        raise ServiceError(f"malformed protocol frame: {exc}") from exc
    if not isinstance(frame, dict) or "type" not in frame:
        raise ServiceError("protocol frame must be a JSON object with a 'type'")
    version = frame.get("v")
    if version != PROTOCOL_VERSION:
        raise ServiceError(
            f"protocol version mismatch: peer speaks v{version!r}, "
            f"this build speaks v{PROTOCOL_VERSION}"
        )
    return frame


def request(
    conn: socket.socket, frame: Dict[str, object], reader: Optional[IO[bytes]] = None
) -> Dict[str, object]:
    """Send ``frame`` and read exactly one response frame.

    The one-shot client helper; raises on EOF because a request must be
    answered (``error`` frames come back as :class:`ServiceError`).
    """
    owns_reader = reader is None
    if reader is None:
        reader = conn.makefile("rb")
    try:
        send_frame(conn, frame)
        response = recv_frame(reader)
    finally:
        if owns_reader:
            reader.close()
    if response is None:
        raise ConnectionLost(
            f"daemon closed the connection without answering {frame.get('type')!r}"
        )
    if response.get("type") == "error":
        raise ServiceError(f"daemon error: {response.get('message', '(no message)')}")
    return response


# --------------------------------------------------------------------- #
# Shard payloads
# --------------------------------------------------------------------- #


def shard_to_payload(shard: ShardTask) -> Dict[str, object]:
    """JSON-encode a shard with the config table deduplicated (see module
    docstring); exact inverse of :func:`shard_from_payload`."""
    return {
        "index": shard.index,
        "configs": [config.to_dict() for config in shard.configs],
        "runs": [
            {
                "run_id": run.run_id,
                "preset": run.preset,
                "config_index": run.config_index,
                "kind": run.kind,
                "tasks": list(run.tasks),
                "observed_core": run.observed_core,
                "iterations": run.iterations,
                "seed": run.seed,
                "rsk_kind": run.rsk_kind,
                "digest": run.digest,
            }
            for run in shard.runs
        ],
    }


def shard_from_payload(payload: Dict[str, object]) -> ShardTask:
    """Rebuild a :class:`ShardTask` from :func:`shard_to_payload` output."""
    try:
        configs: Tuple[ArchConfig, ...] = tuple(
            config_from_dict(entry) for entry in payload["configs"]  # type: ignore[union-attr, index]
        )
        runs: List[ShardRun] = []
        for entry in payload["runs"]:  # type: ignore[union-attr, index]
            runs.append(
                ShardRun(
                    run_id=str(entry["run_id"]),
                    preset=str(entry["preset"]),
                    config_index=int(entry["config_index"]),
                    kind=str(entry["kind"]),
                    tasks=tuple(str(task) for task in entry["tasks"]),
                    observed_core=int(entry["observed_core"]),
                    iterations=int(entry["iterations"]),
                    seed=int(entry["seed"]),
                    rsk_kind=str(entry["rsk_kind"]),
                    digest=str(entry["digest"]),
                )
            )
        return ShardTask(index=int(payload["index"]), configs=configs, runs=tuple(runs))  # type: ignore[arg-type]
    except (KeyError, TypeError, ValueError) as exc:
        raise ServiceError(f"malformed shard payload: {exc}") from exc
