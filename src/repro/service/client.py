"""Client surface for the campaign daemon: submit, status, results, shutdown.

Each command opens a fresh connection, sends one request frame, reads
one response and disconnects — client state lives entirely in the
daemon, so ``repro-bounds submit`` from one terminal and ``repro-bounds
status`` from another always agree.  ``error`` frames surface as
:class:`~repro.errors.ServiceError`.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from ..campaign.spec import CampaignSpec
from ..errors import ServiceError
from .protocol import ServiceAddress, make_frame, request


class ServiceClient:
    """One-shot request/response commands against a daemon address."""

    def __init__(self, address: ServiceAddress, timeout: float = 10.0) -> None:
        self.address = address
        self.timeout = timeout

    def _request(self, frame: Dict[str, object]) -> Dict[str, object]:
        conn = self.address.connect(timeout=self.timeout)
        try:
            return request(conn, frame)
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def ping(self) -> Dict[str, object]:
        """Liveness probe; returns the daemon's ``pong`` frame."""
        return self._request(make_frame("ping"))

    def wait_for_daemon(self, timeout: float = 10.0, interval: float = 0.1) -> None:
        """Block until the daemon answers a ping (startup race helper)."""
        deadline = time.monotonic() + timeout
        last: Optional[ServiceError] = None
        while time.monotonic() < deadline:
            try:
                self.ping()
                return
            except ServiceError as exc:
                last = exc
                time.sleep(interval)
        raise ServiceError(
            f"daemon at {self.address} did not come up within {timeout:g}s: {last}"
        )

    def submit(self, spec: CampaignSpec, out: Optional[str] = None) -> Dict[str, object]:
        """Submit a campaign spec; returns the ``submitted`` frame
        (``job_id``, ``total_runs``, ``out_dir``)."""
        frame = make_frame("submit", spec=spec.to_dict())
        if out is not None:
            frame["out"] = out
        return self._request(frame)

    def status(self, job_id: Optional[str] = None) -> Dict[str, object]:
        """One job's status, or the whole job table when ``job_id`` is
        ``None``."""
        frame = make_frame("status")
        if job_id is not None:
            frame["job_id"] = job_id
        return self._request(frame)

    def results(self, job_id: str) -> Dict[str, object]:
        """A completed job's records and summary (raises until it is)."""
        return self._request(make_frame("results", job_id=job_id))

    def shutdown(self) -> Dict[str, object]:
        """Ask the daemon to drain and exit; returns the ``ok`` frame
        with the number of jobs still pending."""
        return self._request(make_frame("shutdown"))

    def wait(
        self, job_id: str, timeout: Optional[float] = None, interval: float = 0.2
    ) -> Dict[str, object]:
        """Poll ``status`` until the job reaches a terminal state.

        Returns the final job payload; raises :class:`ServiceError` on
        timeout or when the job failed.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            job = self.status(job_id)["job"]
            assert isinstance(job, dict)
            state = job.get("state")
            if state == "completed":
                return job
            if state == "failed":
                raise ServiceError(
                    f"job {job_id} failed: {job.get('error', '(no error recorded)')}"
                )
            if deadline is not None and time.monotonic() > deadline:
                raise ServiceError(f"timed out waiting for job {job_id} (state {state})")
            time.sleep(interval)

    def wait_all(
        self, job_ids: List[str], timeout: Optional[float] = None
    ) -> List[Dict[str, object]]:
        """Wait for several jobs; returns their final payloads in order."""
        deadline = None if timeout is None else time.monotonic() + timeout
        payloads = []
        for job_id in job_ids:
            remaining = None if deadline is None else max(0.1, deadline - time.monotonic())
            payloads.append(self.wait(job_id, timeout=remaining))
        return payloads
