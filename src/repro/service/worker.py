"""Remote shard executor: ``repro-bounds worker --connect <address>``.

A worker is the multi-host half of campaign-as-a-service: it connects to
a daemon (typically over TCP), announces itself, then pulls leased
shards in a request/response loop and executes them in-process with the
exact :func:`~repro.campaign.runner.execute_shard` the local pool uses —
so a record computed remotely is byte-identical to one computed locally.

While a shard runs, a heartbeat thread keeps the daemon's lease alive;
heartbeats are one-way frames (the daemon never replies) so they can
interleave with the main thread's request/response exchange.  A worker
that dies mid-shard simply stops heartbeating and drops its connection —
the daemon requeues the shard and the campaign completes without it.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from typing import IO, Dict, Optional, TextIO

from ..campaign.runner import execute_shard
from ..errors import ServiceError
from .protocol import (
    ConnectionLost,
    ServiceAddress,
    make_frame,
    recv_frame,
    send_frame,
    shard_from_payload,
)

#: Seconds between heartbeats while a shard executes; well under the
#: daemon's default lease (120 s) so one dropped frame never expires it.
DEFAULT_HEARTBEAT_INTERVAL = 2.0


class RemoteWorker:
    """Pull-execute-report loop against one daemon.

    Args:
        address: the daemon's service address.
        worker_id: name reported to the daemon (defaults to
            ``host:pid``); appears in the daemon log and lease owner ids.
        poll_interval: sleep between polls while the daemon is idle.
        heartbeat_interval: seconds between lease heartbeats.
        max_shards: stop after this many shards (``None`` = run until
            the daemon drains); the failure-injection tests use it to
            build workers with a bounded life.
        log: where operational lines go (default: silent).
    """

    def __init__(
        self,
        address: ServiceAddress,
        worker_id: Optional[str] = None,
        poll_interval: float = 0.2,
        heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
        max_shards: Optional[int] = None,
        log: Optional[TextIO] = None,
    ) -> None:
        if worker_id is None:
            worker_id = f"{socket.gethostname()}:{os.getpid()}"
        self.address = address
        self.worker_id = worker_id
        self.poll_interval = poll_interval
        self.heartbeat_interval = heartbeat_interval
        self.max_shards = max_shards
        self._log_file = log
        self._write_lock = threading.Lock()

    def _log(self, message: str) -> None:
        if self._log_file is not None:
            print(f"[worker {self.worker_id}] {message}", file=self._log_file, flush=True)

    def _send(self, conn: socket.socket, frame: Dict[str, object]) -> None:
        # The heartbeat thread and the main loop share the socket; frame
        # writes are atomic under this lock so lines never interleave.
        with self._write_lock:
            send_frame(conn, frame)

    def _request(
        self, conn: socket.socket, reader: IO[bytes], frame: Dict[str, object]
    ) -> Dict[str, object]:
        self._send(conn, frame)
        response = recv_frame(reader)
        if response is None:
            raise ConnectionLost("daemon closed the connection")
        if response.get("type") == "error":
            raise ServiceError(f"daemon error: {response.get('message', '(no message)')}")
        return response

    def run(self) -> int:
        """Serve the daemon until it drains (or ``max_shards`` is hit).

        Returns the number of shards completed.
        """
        conn = self.address.connect(timeout=10.0)
        reader = conn.makefile("rb")
        completed = 0
        try:
            self._request(conn, reader, make_frame("worker-hello", worker_id=self.worker_id))
            self._log(f"connected to {self.address}")
            while self.max_shards is None or completed < self.max_shards:
                try:
                    response = self._request(conn, reader, make_frame("task-request"))
                except ConnectionLost:
                    # The daemon exited (drained or died) between polls;
                    # for a worker that is a normal end of service, and any
                    # shard it still held has been requeued on disconnect.
                    self._log("daemon went away; exiting")
                    break
                response_type = response.get("type")
                if response_type == "drain":
                    self._log("daemon draining; exiting")
                    break
                if response_type == "idle":
                    time.sleep(float(response.get("retry_after", self.poll_interval)))
                    continue
                if response_type != "task":
                    raise ServiceError(f"unexpected frame {response_type!r} for task-request")
                job_id = str(response.get("job_id"))
                shard = shard_from_payload(response["shard"])  # type: ignore[arg-type]
                self._log(f"executing shard {shard.index} of {job_id} ({len(shard.runs)} runs)")
                stop = threading.Event()
                heartbeats = threading.Thread(
                    target=self._heartbeat_loop,
                    args=(conn, job_id, shard.index, stop),
                    daemon=True,
                )
                heartbeats.start()
                try:
                    index, results = execute_shard(shard)
                finally:
                    stop.set()
                    heartbeats.join()
                try:
                    self._request(
                        conn,
                        reader,
                        make_frame(
                            "task-result",
                            job_id=job_id,
                            shard_index=index,
                            results=[[digest, record] for digest, record in results],
                        ),
                    )
                except ConnectionLost:
                    self._log("daemon went away before accepting the result; exiting")
                    break
                completed += 1
        finally:
            reader.close()
            try:
                conn.close()
            except OSError:
                pass
        self._log(f"done; completed {completed} shard(s)")
        return completed

    def _heartbeat_loop(
        self, conn: socket.socket, job_id: str, shard_index: int, stop: threading.Event
    ) -> None:
        while not stop.wait(self.heartbeat_interval):
            try:
                self._send(
                    conn,
                    make_frame("heartbeat", job_id=job_id, shard_index=shard_index),
                )
            except ServiceError:
                return  # connection gone; the main loop will notice
