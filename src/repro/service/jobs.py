"""The daemon's job model: a submitted campaign spec with a lifecycle.

A job is born ``queued`` at submission, becomes ``running`` when the
scheduler picks it up (FIFO — see :mod:`repro.service.daemon` for why
that ordering is what guarantees exact union-frontier dedup), and ends
``completed`` (artifacts finalised) or ``failed`` (error recorded, the
in-flight manifest left with ``completed: false`` so the audit sees a
resumable directory, not a fake success).

Jobs are in-memory objects owned by one daemon; ``status``/``results``
answers are built from :meth:`Job.to_payload`.  The artifacts themselves
are on disk under the daemon's data directory and survive the daemon.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Tuple

from ..campaign.spec import CampaignSpec

#: Lifecycle states, in order of progression.
JOB_STATES: Tuple[str, ...] = ("queued", "running", "completed", "failed")


@dataclass
class Job:
    """One submitted campaign moving through the daemon.

    Attributes:
        job_id: daemon-unique id (``job-<seq>-<digest prefix>``); the
            store's per-row ``campaign_id`` attribution for this job.
        spec: the submitted grid.
        out_dir: where this job's artifacts stream
            (``<data_dir>/jobs/<job_id>``).
        state: one of :data:`JOB_STATES`.
        total_runs: grid size, known at submission (the spec expands
            deterministically).
        stats: execution statistics, populated at completion — the same
            shape :class:`~repro.campaign.runner.ParallelRunner` reports
            (``simulated``/``cached``/``store`` counters and friends).
        error: failure message when ``state == "failed"``.
        done: set once the job reaches a terminal state; clients block on
            it via the daemon's wait path instead of polling in-process.
    """

    job_id: str
    spec: CampaignSpec
    out_dir: Path
    state: str = "queued"
    total_runs: int = 0
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    stats: Dict[str, object] = field(default_factory=dict)
    error: Optional[str] = None
    done: threading.Event = field(default_factory=threading.Event, repr=False)

    def mark_running(self) -> None:
        self.state = "running"
        self.started_at = time.time()

    def mark_completed(self, stats: Dict[str, object]) -> None:
        self.stats = stats
        self.state = "completed"
        self.finished_at = time.time()
        self.done.set()

    def mark_failed(self, error: str) -> None:
        self.error = error
        self.state = "failed"
        self.finished_at = time.time()
        self.done.set()

    def to_payload(self) -> Dict[str, object]:
        """The ``status`` frame's job object (JSON-ready)."""
        payload: Dict[str, object] = {
            "job_id": self.job_id,
            "state": self.state,
            "out_dir": str(self.out_dir),
            "total_runs": self.total_runs,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "spec": self.spec.to_dict(),
        }
        if self.stats:
            payload["stats"] = self.stats
        if self.error is not None:
            payload["error"] = self.error
        return payload
