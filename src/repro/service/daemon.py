"""The ``repro-bounds serve`` daemon: many clients, one store, one pool.

Architecture (the full protocol is in DESIGN.md §11):

* An **accept loop** takes connections on the service address and hands
  each to a handler thread.  Client connections are one-shot
  request/response; worker connections are long-lived pull loops.
* A single **scheduler thread** executes submitted jobs strictly FIFO.
  That ordering is the dedup guarantee: when job B starts, every record
  job A produced is already in the shared
  :class:`~repro.campaign.store.ResultStore`, so B's frontier query sees
  A's rows and two overlapping campaigns together simulate exactly the
  union of their miss-frontiers — never a row twice.
* Per job, the scheduler builds the same miss-frontier / shard plan as
  :class:`~repro.campaign.runner.ParallelRunner` and posts the shards on
  a :class:`ShardBoard`.  Local pool threads and connected remote
  workers race to pull shards; the scheduler absorbs completed shards
  in shard-index order, which keeps the streamed artifacts byte-identical
  to a one-shot ``repro-bounds campaign`` run of the same spec.
* Remote shards carry a **lease**: a deadline extended by worker
  heartbeats.  A worker that disconnects or goes silent past its lease
  gets its shards silently requeued — a dead worker degrades throughput,
  it never fails the campaign.  Late results for an already-absorbed
  shard are dropped by index, so a worker that was merely slow cannot
  double-emit.
* **Graceful drain**: a ``shutdown`` request (or SIGTERM via the CLI)
  stops new submissions, lets every queued job finish, tells workers to
  drain, and only then closes the listener.  A job interrupted by a
  daemon crash leaves its ``campaign.json`` stamped ``completed: false``
  with an ``owner`` field — the audit reports that directory as
  resumable (WARN), not corrupt (FAIL).
"""

from __future__ import annotations

import os
import socket
import sys
import threading
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from queue import Queue
from typing import Dict, List, Optional, Sequence, TextIO, Tuple

from ..campaign.artifacts import CampaignStreamWriter
from ..campaign.runner import (
    RecordEmitter,
    ShardTask,
    compact_shard,
    default_shard_size,
    execute_shard,
    summarize_records,
)
from ..campaign.spec import SCHEMA_VERSION, CampaignSpec, RunDescriptor, campaign_digest
from ..campaign.store import ResultStore
from ..errors import ReproError, ServiceError
from .jobs import Job
from .protocol import (
    ServiceAddress,
    error_frame,
    make_frame,
    recv_frame,
    send_frame,
    shard_to_payload,
)

#: Default seconds a remote shard lease lives without a heartbeat.
DEFAULT_SHARD_TIMEOUT = 120.0

#: How long an idle worker should wait before polling again.
IDLE_RETRY_SECONDS = 0.2

_FreshResults = List[Tuple[str, Dict[str, object]]]


class ShardBoard:
    """Shard dispatch for one running job: leases, requeue, ordered absorb.

    The board hands each pending shard to exactly one puller at a time.
    Local pullers (daemon pool threads) hold a shard until their process
    finishes it — a lost local shard means the pool broke, which fails
    the job loudly.  Remote pullers hold a *lease* with a heartbeat
    deadline; an expired lease or a dropped connection requeues the
    shard.  Results are recorded at most once per shard index
    (first-complete wins), which is what makes requeue + a slow-but-alive
    worker safe: the duplicate result is discarded, never double-absorbed.
    """

    def __init__(self, job_id: str, shards: Sequence[ShardTask], lease_seconds: float) -> None:
        self.job_id = job_id
        self.lease_seconds = lease_seconds
        self._shards = {shard.index: shard for shard in shards}
        self._pending = deque(sorted(self._shards))
        self._leases: Dict[int, Tuple[str, Optional[float]]] = {}
        self._results: Dict[int, _FreshResults] = {}
        self._error: Optional[str] = None
        self._cond = threading.Condition()

    @property
    def total(self) -> int:
        return len(self._shards)

    @property
    def error(self) -> Optional[str]:
        with self._cond:
            return self._error

    def fail(self, message: str) -> None:
        """Abort the board: wakes every waiter, pullers stop taking."""
        with self._cond:
            if self._error is None:
                self._error = message
            self._cond.notify_all()

    def take_local(self) -> Optional[ShardTask]:
        """Blocking take for a local pool thread.

        Returns ``None`` when the board is finished or failed.  Blocks
        while other pullers hold every remaining shard — if a remote
        lease expires, the requeued shard wakes a local taker.
        """
        with self._cond:
            while True:
                if self._error is not None:
                    return None
                if self._pending:
                    index = self._pending.popleft()
                    self._leases[index] = ("local", None)
                    return self._shards[index]
                if len(self._results) == len(self._shards):
                    return None
                self._cond.wait(IDLE_RETRY_SECONDS)

    def take_remote(self, owner: str) -> Optional[ShardTask]:
        """Non-blocking take for a worker connection (``None`` = idle)."""
        with self._cond:
            if self._error is not None or not self._pending:
                return None
            index = self._pending.popleft()
            self._leases[index] = (owner, time.monotonic() + self.lease_seconds)
            return self._shards[index]

    def heartbeat(self, index: int, owner: str) -> None:
        """Extend ``owner``'s lease on shard ``index`` (stale = ignored)."""
        with self._cond:
            lease = self._leases.get(index)
            if lease is not None and lease[0] == owner:
                self._leases[index] = (owner, time.monotonic() + self.lease_seconds)

    def complete(self, index: int, results: _FreshResults) -> bool:
        """Record a finished shard; ``False`` for late duplicates."""
        with self._cond:
            if index not in self._shards or index in self._results:
                return False
            self._results[index] = list(results)
            self._leases.pop(index, None)
            try:
                self._pending.remove(index)
            except ValueError:
                pass
            self._cond.notify_all()
            return True

    def release_owner(self, owner: str) -> int:
        """Requeue every shard ``owner`` holds (worker connection died)."""
        with self._cond:
            victims = [index for index, (holder, _) in self._leases.items() if holder == owner]
            for index in victims:
                del self._leases[index]
                self._pending.appendleft(index)
            if victims:
                self._cond.notify_all()
            return len(victims)

    def expire_stale(self) -> List[int]:
        """Requeue shards whose remote lease deadline passed."""
        now = time.monotonic()
        with self._cond:
            victims = [
                index
                for index, (_, deadline) in self._leases.items()
                if deadline is not None and deadline < now
            ]
            for index in victims:
                del self._leases[index]
                self._pending.appendleft(index)
            if victims:
                self._cond.notify_all()
            return victims

    def wait_result(self, index: int, timeout: float) -> Optional[_FreshResults]:
        """Wait up to ``timeout`` for shard ``index``'s results."""
        with self._cond:
            if index not in self._results and self._error is None:
                self._cond.wait(timeout)
            return self._results.get(index)


class CampaignDaemon:
    """Long-lived campaign service multiplexing clients onto one store.

    Args:
        store_dir: the shared :class:`ResultStore` directory — the dedup
            substrate every job reads and writes.
        data_dir: daemon working directory; job artifacts stream to
            ``<data_dir>/jobs/<job_id>/``.
        jobs: local worker processes (one shared pool across all jobs);
            ``0`` runs no local execution — shards only flow to remote
            workers (multi-host mode, and what the failure-injection
            tests use to force remote execution).
        shard_size: runs per shard; ``None`` auto-sizes per job.
        shard_timeout: remote lease seconds without a heartbeat before a
            shard is requeued.
        log: where operational lines go (default ``stderr``).
    """

    def __init__(
        self,
        store_dir: "os.PathLike[str] | str",
        data_dir: "os.PathLike[str] | str",
        jobs: int = 1,
        shard_size: Optional[int] = None,
        shard_timeout: float = DEFAULT_SHARD_TIMEOUT,
        log: Optional[TextIO] = None,
    ) -> None:
        if jobs < 0:
            raise ServiceError(f"jobs must be >= 0, got {jobs}")
        if shard_timeout <= 0:
            raise ServiceError(f"shard_timeout must be positive, got {shard_timeout}")
        self.jobs = jobs
        self.shard_size = shard_size
        self.shard_timeout = shard_timeout
        self.data_dir = Path(data_dir)
        self.jobs_dir = self.data_dir / "jobs"
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        self._log_file = log
        self._store = ResultStore(store_dir, campaign_id="serve")
        self._queue: "Queue[Optional[Job]]" = Queue()
        self._jobs: Dict[str, Job] = {}
        self._jobs_lock = threading.Lock()
        self._job_seq = self._initial_job_seq()
        self._board: Optional[ShardBoard] = None
        self._board_lock = threading.Lock()
        self._workers: Dict[str, float] = {}
        self._draining = threading.Event()
        self._listener: Optional[socket.socket] = None
        self._address: Optional[ServiceAddress] = None
        self._pool: Optional[ProcessPoolExecutor] = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def serve(self, address: ServiceAddress) -> None:
        """Listen on ``address`` and run until a shutdown drains the queue.

        Blocking; the CLI wires SIGTERM/SIGINT to
        :meth:`request_shutdown` so a signal and a ``shutdown`` frame
        take the same graceful path.
        """
        self._address = address
        self._listener = address.create_listener()
        if self.jobs > 0:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        self._log(
            f"serving on {address} (store={self._store.directory}, "
            f"jobs={self.jobs}, shard_timeout={self.shard_timeout:g}s)"
        )
        scheduler = threading.Thread(
            target=self._scheduler_loop, name="repro-serve-scheduler", daemon=True
        )
        scheduler.start()
        try:
            while True:
                try:
                    conn, _ = self._listener.accept()
                except OSError:
                    break  # listener closed by the drain path
                handler = threading.Thread(
                    target=self._handle_connection, args=(conn,), daemon=True
                )
                handler.start()
        finally:
            scheduler.join()
            self._cleanup()
        self._log("drained; bye")

    def request_shutdown(self) -> int:
        """Begin the graceful drain; returns the number of jobs left.

        Idempotent: repeated shutdown requests queue one sentinel each,
        and the scheduler stops at the first one *after* the already
        queued jobs — FIFO order means everything submitted before the
        shutdown still runs.
        """
        first = not self._draining.is_set()
        self._draining.set()
        if first:
            self._queue.put(None)
        with self._jobs_lock:
            return sum(
                1 for job in self._jobs.values() if job.state in ("queued", "running")
            )

    def _cleanup(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._store.close()
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        if self._address is not None and self._address.kind == "unix":
            try:
                os.unlink(self._address.path)
            except OSError:
                pass

    def _log(self, message: str) -> None:
        stamp = time.strftime("%H:%M:%S")
        target = self._log_file if self._log_file is not None else sys.stderr
        print(f"[serve {stamp}] {message}", file=target, flush=True)

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #

    def submit(self, spec: CampaignSpec, out_dir: Optional[Path] = None) -> Job:
        """Queue a campaign; returns the job (state ``queued``).

        The spec is expanded here — submission validates the whole grid
        up front and stamps ``total_runs``, so a bad spec fails the
        submitting client, never the daemon's scheduler.
        """
        if self._draining.is_set():
            raise ServiceError("daemon is draining; submissions are closed")
        descriptors = spec.expand()
        identity = campaign_digest([descriptor.digest() for descriptor in descriptors])
        with self._jobs_lock:
            self._job_seq += 1
            job_id = f"job-{self._job_seq:04d}-{identity[:8]}"
            job = Job(
                job_id=job_id,
                spec=spec,
                out_dir=out_dir if out_dir is not None else self.jobs_dir / job_id,
                total_runs=len(descriptors),
            )
            self._jobs[job_id] = job
        self._queue.put(job)
        self._log(f"queued {job_id}: {len(descriptors)} runs -> {job.out_dir}")
        return job

    def get_job(self, job_id: str) -> Job:
        with self._jobs_lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ServiceError(f"unknown job id {job_id!r}")
        return job

    def list_jobs(self) -> List[Job]:
        with self._jobs_lock:
            return sorted(self._jobs.values(), key=lambda job: job.submitted_at)

    def _initial_job_seq(self) -> int:
        """Continue the job-id sequence across daemon restarts on one
        data dir, so restarted daemons never reuse a job directory."""
        highest = 0
        for entry in self.jobs_dir.glob("job-*"):
            parts = entry.name.split("-")
            if len(parts) >= 2 and parts[1].isdigit():
                highest = max(highest, int(parts[1]))
        return highest

    # ------------------------------------------------------------------ #
    # Scheduler: FIFO job execution
    # ------------------------------------------------------------------ #

    def _scheduler_loop(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                break
            try:
                self._execute_job(job)
            except Exception as exc:  # belt and braces: a job never kills the daemon
                if not job.done.is_set():
                    job.mark_failed(str(exc))
                self._log(f"{job.job_id} failed: {exc}")
        # Drain point: close the listener so the accept loop unblocks.
        if self._listener is not None:
            try:
                self._listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            self._listener.close()

    def _execute_job(self, job: Job) -> None:
        """Run one job with the ParallelRunner recipe over the shared store.

        Mirrors :meth:`ParallelRunner.run` stage by stage (frontier,
        store probe, shard plan, ordered absorb) — the artifact bytes
        must match a one-shot run exactly — but dispatches shards through
        the :class:`ShardBoard` so local pool threads and remote workers
        can serve the same campaign.
        """
        job.mark_running()
        started = time.perf_counter()
        store = self._store
        store.campaign_id = job.job_id
        store.claim(job.job_id)
        stream: Optional[CampaignStreamWriter] = None
        board: Optional[ShardBoard] = None
        try:
            descriptors: Sequence[RunDescriptor] = job.spec.expand()
            digests = [descriptor.digest() for descriptor in descriptors]
            frontier: Dict[str, RunDescriptor] = {}
            for digest, descriptor in zip(digests, descriptors):
                if digest not in frontier:
                    frontier[digest] = descriptor
            by_digest: Dict[str, Dict[str, object]] = {}
            for digest, record in store.get_many(list(frontier)).items():
                if record.get("schema") == SCHEMA_VERSION:
                    by_digest[digest] = record
            cached_hits = len(by_digest)
            pending = [
                (digest, descriptor)
                for digest, descriptor in frontier.items()
                if digest not in by_digest
            ]
            slots = max(1, self.jobs + len(self._workers))
            shard_size = self.shard_size or default_shard_size(len(pending), slots)
            shards = [
                compact_shard(index, pending[start : start + shard_size])
                for index, start in enumerate(range(0, len(pending), shard_size))
            ]
            self._log(
                f"running {job.job_id}: {len(pending)} to simulate "
                f"({cached_hits} cached), {len(shards)} shards"
            )
            stream = CampaignStreamWriter(job.out_dir, owner=f"serve:{os.getpid()}")
            stream.begin(campaign_digest(digests), len(descriptors))
            emitter = RecordEmitter(descriptors, digests, by_digest, stream)
            emitter.drain()

            board = ShardBoard(job.job_id, shards, self.shard_timeout)
            with self._board_lock:
                self._board = board
            pullers = [
                threading.Thread(
                    target=self._local_puller, args=(board,), daemon=True
                )
                for _ in range(min(self.jobs, len(shards)))
            ]
            for puller in pullers:
                puller.start()
            next_shard = 0
            while next_shard < len(shards):
                fresh = board.wait_result(next_shard, timeout=0.5)
                if fresh is None:
                    error = board.error
                    if error is not None:
                        raise ServiceError(error)
                    expired = board.expire_stale()
                    for index in expired:
                        self._log(
                            f"{job.job_id}: shard {index} lease expired, requeued"
                        )
                    continue
                by_digest.update(fresh)
                store.put_many(fresh)
                emitter.drain()
                next_shard += 1
            for puller in pullers:
                puller.join()

            stats: Dict[str, object] = {
                "runs": len(descriptors),
                "unique_runs": len(frontier),
                "simulated": len(pending),
                "cached": cached_hits,
                "jobs": self.jobs,
                "shards": len(shards),
                "shard_size": shard_size,
                "elapsed_seconds": time.perf_counter() - started,
            }
            stats["store"] = store.counters.as_dict()
            summary = summarize_records(emitter.records)
            summary["timing"] = dict(stats)
            stream.finalize(summary)
            job.mark_completed(stats)
            self._log(
                f"finished {job.job_id}: {stats['simulated']} simulated, "
                f"{stats['cached']} cached, {stats['elapsed_seconds']:.2f}s"
            )
        except Exception as exc:
            if board is not None:
                board.fail(str(exc))
            if stream is not None:
                stream.abandon()
            job.mark_failed(str(exc))
            self._log(f"{job.job_id} failed: {exc}")
        finally:
            with self._board_lock:
                self._board = None
            store.release_claim(job.job_id)

    def _local_puller(self, board: ShardBoard) -> None:
        """One local slot: pull shards, run them on the shared pool."""
        pool = self._pool
        assert pool is not None, "local puller without a pool"
        while True:
            shard = board.take_local()
            if shard is None:
                return
            try:
                index, fresh = pool.submit(execute_shard, shard).result()
            except Exception as exc:
                board.fail(f"shard {shard.index} failed locally: {exc}")
                return
            board.complete(index, fresh)

    def _current_board(self) -> Optional[ShardBoard]:
        with self._board_lock:
            return self._board

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #

    def _handle_connection(self, conn: socket.socket) -> None:
        reader = conn.makefile("rb")
        owner: Optional[str] = None
        try:
            while True:
                frame = recv_frame(reader)
                if frame is None:
                    break
                frame_type = frame.get("type")
                if frame_type == "worker-hello":
                    worker_id = str(frame.get("worker_id", "anonymous"))
                    owner = f"worker:{worker_id}:{id(conn)}"
                    self._workers[owner] = time.time()
                    self._log(f"worker connected: {worker_id}")
                    send_frame(conn, make_frame("ok"))
                elif frame_type == "heartbeat":
                    # One-way by design: a reply here could interleave
                    # with the worker's in-flight request/response pair.
                    self._on_heartbeat(frame, owner)
                else:
                    send_frame(conn, self._dispatch(frame, owner))
        except ServiceError as exc:
            try:
                send_frame(conn, error_frame(str(exc)))
            except ServiceError:
                pass
        finally:
            if owner is not None:
                self._workers.pop(owner, None)
                board = self._current_board()
                if board is not None:
                    requeued = board.release_owner(owner)
                    if requeued:
                        self._log(
                            f"worker {owner} disconnected; requeued {requeued} shard(s)"
                        )
            reader.close()
            try:
                conn.close()
            except OSError:
                pass

    def _dispatch(self, frame: Dict[str, object], owner: Optional[str]) -> Dict[str, object]:
        """One request frame in, one response frame out."""
        frame_type = frame.get("type")
        try:
            if frame_type == "ping":
                return make_frame("pong", pid=os.getpid(), draining=self._draining.is_set())
            if frame_type == "submit":
                return self._on_submit(frame)
            if frame_type == "status":
                return self._on_status(frame)
            if frame_type == "results":
                return self._on_results(frame)
            if frame_type == "shutdown":
                pending = self.request_shutdown()
                self._log("shutdown requested; draining")
                return make_frame("ok", pending_jobs=pending)
            if frame_type == "task-request":
                return self._on_task_request(owner)
            if frame_type == "task-result":
                return self._on_task_result(frame)
        except ServiceError as exc:
            return error_frame(str(exc))
        except ReproError as exc:
            return error_frame(f"{type(exc).__name__}: {exc}")
        return error_frame(f"unknown frame type {frame_type!r}")

    def _on_submit(self, frame: Dict[str, object]) -> Dict[str, object]:
        spec_payload = frame.get("spec")
        if not isinstance(spec_payload, dict):
            raise ServiceError("submit frame needs a 'spec' object")
        spec = CampaignSpec.from_dict(spec_payload)
        out = frame.get("out")
        out_dir = Path(str(out)) if isinstance(out, str) and out else None
        job = self.submit(spec, out_dir=out_dir)
        return make_frame(
            "submitted", job_id=job.job_id, total_runs=job.total_runs, out_dir=str(job.out_dir)
        )

    def _on_status(self, frame: Dict[str, object]) -> Dict[str, object]:
        job_id = frame.get("job_id")
        if job_id is None:
            return make_frame(
                "status",
                jobs=[job.to_payload() for job in self.list_jobs()],
                draining=self._draining.is_set(),
                workers=len(self._workers),
            )
        return make_frame("status", job=self.get_job(str(job_id)).to_payload())

    def _on_results(self, frame: Dict[str, object]) -> Dict[str, object]:
        from ..campaign.artifacts import load_campaign

        job = self.get_job(str(frame.get("job_id")))
        if job.state == "failed":
            raise ServiceError(f"job {job.job_id} failed: {job.error}")
        if job.state != "completed":
            raise ServiceError(f"job {job.job_id} is {job.state}; results not ready")
        records, summary = load_campaign(job.out_dir)
        return make_frame(
            "results", job=job.to_payload(), records=records, summary=summary
        )

    # ------------------------------------------------------------------ #
    # Worker protocol
    # ------------------------------------------------------------------ #

    def _on_task_request(self, owner: Optional[str]) -> Dict[str, object]:
        if owner is None:
            raise ServiceError("task-request before worker-hello")
        board = self._current_board()
        if board is not None:
            shard = board.take_remote(owner)
            if shard is not None:
                return make_frame(
                    "task",
                    job_id=board.job_id,
                    shard=shard_to_payload(shard),
                    lease_seconds=self.shard_timeout,
                )
        if self._draining.is_set() and board is None and self._queue.empty():
            return make_frame("drain")
        return make_frame("idle", retry_after=IDLE_RETRY_SECONDS)

    def _on_task_result(self, frame: Dict[str, object]) -> Dict[str, object]:
        board = self._current_board()
        job_id = frame.get("job_id")
        if board is None or board.job_id != job_id:
            # Stale result for a finished/aborted job: acknowledge and drop
            # (the shard was requeued and completed by someone else).
            return make_frame("ok", accepted=False)
        try:
            shard_index = int(frame["shard_index"])  # type: ignore[arg-type]
            raw = frame["results"]
            fresh: _FreshResults = [
                (str(digest), dict(record))
                for digest, record in raw  # type: ignore[union-attr]
            ]
        except (KeyError, TypeError, ValueError) as exc:
            raise ServiceError(f"malformed task-result frame: {exc}") from exc
        accepted = board.complete(shard_index, fresh)
        return make_frame("ok", accepted=accepted)

    def _on_heartbeat(self, frame: Dict[str, object], owner: Optional[str]) -> None:
        if owner is None:
            return
        board = self._current_board()
        if board is None or board.job_id != frame.get("job_id"):
            return
        try:
            board.heartbeat(int(frame["shard_index"]), owner)  # type: ignore[arg-type]
        except (KeyError, TypeError, ValueError):
            pass


__all__ = ["CampaignDaemon", "DEFAULT_SHARD_TIMEOUT", "ShardBoard"]
