"""One generic registry for every pluggable simulator component.

The simulator grows by *registration*, not by editing factories: arbitration
policies (:mod:`repro.sim.arbiter`), simulation engines
(:mod:`repro.sim.scheduler`) and shared-resource topologies
(:mod:`repro.sim.topology`) each keep a name -> entry mapping populated by a
decorator and read by every consumer — ``System`` construction, ``ArchConfig``
validation, the CLI's ``list`` subcommand and the campaign sweep axes.

Those three mappings are structurally identical, so the behaviour that must
never drift between them lives here exactly once:

* **duplicate rejection** — registering a taken name raises
  :class:`~repro.errors.ConfigurationError`; silently replacing an entry
  would let two runs with identical configurations simulate different
  platforms;
* **listing** — :meth:`Registry.names` returns registration order, which is
  what the CLI prints and the tier-1 tests pin against the built-in tuples
  declared in :mod:`repro.config`;
* **lookup errors** — :meth:`Registry.require` names the component kind and
  the registered alternatives, so a typo in a configuration fails with an
  actionable message;
* **the lazy configuration fallback** — :func:`registry_backed_names` gives
  ``repro.config`` (the bottom layer) a callable view of a registry that
  degrades to the built-in tuple while the registry module is still
  importing, without ``repro.config`` ever importing the simulator at module
  scope.
"""

from __future__ import annotations

import importlib
from typing import Callable, Dict, Generic, Iterator, Optional, Tuple, TypeVar

from .errors import ConfigurationError

T = TypeVar("T")


class Registry(Generic[T]):
    """A name -> entry mapping with duplicate rejection and rich lookups.

    Args:
        kind: human-readable component kind (``"arbitration policy"``,
            ``"simulation engine"``, ``"topology"``) used in error messages.
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: Dict[str, T] = {}

    def register(self, name: str, entry: T) -> T:
        """Add ``entry`` under ``name``; empty or taken names are errors."""
        if not name:
            raise ConfigurationError(f"a registered {self.kind} needs a non-empty name")
        if name in self._entries:
            raise ConfigurationError(f"{self.kind} {name!r} already registered")
        self._entries[name] = entry
        return entry

    def get(self, name: str, default: Optional[T] = None) -> Optional[T]:
        """The entry registered under ``name``, or ``default``."""
        return self._entries.get(name, default)

    def require(self, name: str) -> T:
        """The entry registered under ``name``; unknown names raise
        :class:`~repro.errors.ConfigurationError` listing the alternatives."""
        entry = self._entries.get(name)
        if entry is None:
            raise ConfigurationError(
                f"unknown {self.kind} {name!r}; registered: {list(self._entries)}"
            )
        return entry

    def names(self) -> Tuple[str, ...]:
        """Every registered name, in registration order."""
        return tuple(self._entries)

    def values(self) -> Tuple[T, ...]:
        """Every registered entry, in registration order."""
        return tuple(self._entries.values())

    def items(self) -> Tuple[Tuple[str, T], ...]:
        """``(name, entry)`` pairs, in registration order."""
        return tuple(self._entries.items())

    def pop(self, name: str) -> T:
        """Remove and return the entry under ``name`` (tests deregister with
        this after exercising runtime registration)."""
        return self._entries.pop(name)

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Registry({self.kind!r}, names={list(self._entries)})"


def registry_backed_names(
    module_name: str, accessor: str, fallback: Tuple[str, ...]
) -> Callable[[], Tuple[str, ...]]:
    """A callable returning the names a registry currently holds.

    ``repro.config`` validates configuration fields against the registries so
    a policy registered at runtime is immediately constructible, but it must
    stay the bottom layer of the package — so the registry module is imported
    lazily, and ``fallback`` (the built-in tuple) is returned while that
    module is still initialising.

    Args:
        module_name: absolute module holding the registry accessor.
        accessor: name of the zero-argument callable returning the names.
        fallback: built-in names returned during partial initialisation.
    """

    def names() -> Tuple[str, ...]:
        try:
            module = importlib.import_module(module_name)
            return getattr(module, accessor)()
        except ImportError:  # pragma: no cover - partial-initialisation fallback
            return fallback

    return names
