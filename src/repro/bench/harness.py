"""Benchmark workloads and the measurement loop.

A :class:`BenchWorkload` describes one contended rsk run — the hot path
every campaign, methodology sweep and figure regeneration spends its time
in — on one platform preset and arbiter.  :func:`run_benchmarks` executes
each workload once per registered engine (``stepped``, ``event``,
``codegen`` and ``replay``), checks that every engine simulated the exact
same number of cycles as the stepped oracle (a cheap standing equivalence
guard on top of the property tests) and reports wall-clock, cycles/sec
and each fast engine's speedup over the oracle.  The replay engine gets
one untimed priming run per workload (the capture run), so its numbers
quote the trace-warm steady state a sweep actually spends its time in.

``python -m repro.bench run --profile`` additionally captures a cProfile
hotspot table per scenario (:func:`profile_workload`), written next to
the BENCH json under ``profile/``.
"""

from __future__ import annotations

import platform
import time
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from ..config import ENGINES, get_preset

if TYPE_CHECKING:  # pragma: no cover - avoids a load-time module cycle
    from .campaign_bench import CampaignBench
    from .service_bench import ServiceBench
from ..errors import SimulationError
from ..kernels.rsk import build_rsk, build_stress_contender_set, rsk_for_resource
from ..methodology.experiment import build_contender_set
from ..sim.system import System

#: Version stamp embedded in BENCH_*.json; bump when the payload layout or
#: the meaning of a metric changes, so the compare gate never misreads a
#: stale baseline.  v2: entries gain a per-engine ``speedups`` mapping and
#: the summary a per-engine ``engines`` section (the codegen engine).
#: v3: payloads gain a ``campaigns`` section (campaign throughput through
#: the result store: cold/warm runs-per-sec, ``warm_speedup``, parallel
#: efficiency) and the summary a ``campaign_geomean_warm_speedup``.
#: v4: payloads gain a ``services`` section (campaigns through the serve
#: daemon: cold submit+wait vs concurrent warm clients,
#: ``multi_client_warm_speedup``, warm submissions/sec) and the summary a
#: ``service_geomean_multi_client_speedup``.
#: v5: entries gain a ``replay`` speedup (the trace-warm replay engine),
#: campaign entries may carry a ``replay`` phase (codegen-engine campaign
#: vs trace-warm replay-engine campaign, ``campaign_replay_speedup``) and
#: the summary a ``campaign_replay_speedup`` geomean.
BENCH_SCHEMA_VERSION = 5


@dataclass(frozen=True)
class BenchWorkload:
    """One timed workload: a contended rsk run on a preset platform.

    Attributes:
        name: stable identifier used to match workloads across payloads.
        preset: platform preset (``ref``, ``var``, ``small``).
        arbiter: bus arbitration policy.
        topology: shared-resource topology name overriding the preset's own
            (``bus_only`` or ``bus_bank_queues``); ``None`` keeps the
            preset's topology untouched, including its memory-side
            arbitration parameters.
        kind: rsk flavour (``"load"`` or ``"store"``).
        stress: when set, build the kernels from the rsk registry entry for
            this resource (``"bus"``, ``"memory"``, ``"bus_response"``)
            instead of the plain rsk — the hot path of ``derive-ubd
            --per-resource``, whose stress runs drive exactly these kernels.
        preload_l2: warm the L2 first (True gives the paper's L2-hit hot
            path; False sends every miss to the DRAM model).
        iterations: observed-rsk loop iterations in full mode.
        quick_iterations: reduced size for ``--quick`` (CI) runs.
    """

    name: str
    preset: str
    arbiter: str
    topology: Optional[str] = None
    kind: str = "load"
    stress: Optional[str] = None
    preload_l2: bool = True
    iterations: int = 2500
    quick_iterations: int = 700


def _grid() -> Tuple[BenchWorkload, ...]:
    workloads: List[BenchWorkload] = []
    for preset in ("ref", "var"):
        for arbiter in ("round_robin", "fifo", "fixed_priority", "tdma"):
            workloads.append(
                BenchWorkload(
                    name=f"{preset}/{arbiter}/load",
                    preset=preset,
                    arbiter=arbiter,
                )
            )
    workloads.append(
        BenchWorkload(
            name="ref/round_robin/load-dram",
            preset="ref",
            arbiter="round_robin",
            preload_l2=False,
            iterations=1500,
            quick_iterations=450,
        )
    )
    workloads.append(
        BenchWorkload(
            name="ref/round_robin/store",
            preset="ref",
            arbiter="round_robin",
            kind="store",
        )
    )
    workloads.append(
        # Bank contention: every miss crosses the bus *and* arbitrates for
        # its DRAM bank queue (the multi_resource topology's hot path).
        BenchWorkload(
            name="ref/round_robin/load-bank-queues",
            preset="ref",
            arbiter="round_robin",
            topology="bus_bank_queues",
            preload_l2=False,
            iterations=1500,
            quick_iterations=450,
        )
    )
    workloads.append(
        # Split-transaction bus: the three-resource chain (request channel,
        # bank queues, response channel) — the generic event loop drives one
        # more horizon than any other scenario, so this guards the perf of
        # topologies the engine was never specialised for.
        BenchWorkload(
            name="ref/round_robin/load-split-bus",
            preset="ref",
            arbiter="round_robin",
            topology="split_bus",
            preload_l2=False,
            iterations=1500,
            quick_iterations=450,
        )
    )
    workloads.append(
        # The derive-ubd --per-resource hot path: the response-channel
        # stressor from the rsk registry (row-hit jitter, per-core period
        # skew) on the full split_bus preset — the workload each measured
        # bus_response term is derived from.
        BenchWorkload(
            name="split_bus/round_robin/derive-ubd-stress",
            preset="split_bus",
            arbiter="round_robin",
            stress="bus_response",
            preload_l2=False,
            iterations=1500,
            quick_iterations=450,
        )
    )
    return tuple(workloads)


#: The representative workload grid (per arbiter x preset, plus the DRAM
#: and store-buffer variants of the paper's default platform).
WORKLOADS: Tuple[BenchWorkload, ...] = _grid()

#: The workload the headline speedup is quoted on: the paper's default
#: platform (``ref``) with its round-robin bus running the load rsk.
DEFAULT_WORKLOAD = "ref/round_robin/load"


def _effective_topology(workload: BenchWorkload) -> str:
    """The topology a workload actually runs on (preset's own unless overridden)."""
    if workload.topology is not None:
        return workload.topology
    return get_preset(workload.preset).topology.name


def _build_system(workload: BenchWorkload, quick: bool) -> Tuple[System, int]:
    config = get_preset(workload.preset)
    config = config.with_overrides(bus=replace(config.bus, arbitration=workload.arbiter))
    if workload.topology is not None:
        config = config.with_topology_name(workload.topology)
    iterations = workload.quick_iterations if quick else workload.iterations
    if workload.stress is not None:
        entry = rsk_for_resource(workload.stress)
        scua = entry.build(config, 0, kind=workload.kind, iterations=iterations)
        contenders = build_stress_contender_set(config, workload.stress, 0, kind=workload.kind)
    else:
        scua = build_rsk(config, 0, kind=workload.kind, iterations=iterations)
        contenders = build_contender_set(config, 0, kind=workload.kind)
    programs: List[Optional[object]] = [None] * config.num_cores
    programs[0] = scua
    for core, program in contenders.items():
        programs[core] = program
    system = System(
        config,
        programs,
        preload_l2=workload.preload_l2,
        preload_il1=True,
    )
    return system, iterations


def _time_engine(
    workload: BenchWorkload, engine: str, quick: bool, repeats: int
) -> Dict[str, float]:
    best_seconds = None
    cycles = None
    captures_after_priming = 0
    if engine == "replay":
        # One untimed priming run captures the core traces (and proves any
        # trace-unsafe program unsafe), so the timed repeats measure the
        # trace-warm steady state — the number a sweep's 2nd..Nth runs see.
        from ..sim.trace import clear_trace_cache, global_trace_cache

        clear_trace_cache()
        system, _ = _build_system(workload, quick)
        system.run(observed_cores=[0], engine="replay")
        captures_after_priming = global_trace_cache().counters["captures"]
    for _ in range(max(1, repeats)):
        system, _ = _build_system(workload, quick)
        started = time.perf_counter()
        result = system.run(observed_cores=[0], engine=engine)
        elapsed = time.perf_counter() - started
        if cycles is None:
            cycles = result.cycles
        elif cycles != result.cycles:
            raise SimulationError(
                f"{workload.name}: {engine} engine is nondeterministic "
                f"({cycles} vs {result.cycles} cycles)"
            )
        if best_seconds is None or elapsed < best_seconds:
            best_seconds = elapsed
    if engine == "replay":
        # The memoisation guarantee: once primed, the timed runs must not
        # have re-simulated any core's cache hierarchy (trace-unsafe cores
        # fall back without capturing, so this holds for every workload).
        from ..sim.trace import global_trace_cache

        captures = global_trace_cache().counters["captures"]
        if captures != captures_after_priming:
            raise SimulationError(
                f"{workload.name}: replay engine re-captured core traces "
                f"after the priming run ({captures - captures_after_priming} "
                "extra captures); the trace cache failed to memoise the "
                "core side"
            )
    return {
        "cycles": cycles,
        "seconds": best_seconds,
        "cycles_per_sec": cycles / best_seconds if best_seconds else 0.0,
    }


def run_benchmarks(
    workloads: Sequence[BenchWorkload] = WORKLOADS,
    quick: bool = False,
    repeats: int = 2,
    rev: str = "local",
    campaigns: Optional[Sequence["CampaignBench"]] = None,
    services: Optional[Sequence["ServiceBench"]] = None,
) -> Dict[str, object]:
    """Time ``workloads`` on every registered engine and return the payload.

    Each engine is run ``repeats`` times per workload and the best wall
    time is kept (first-run noise on shared CI machines would otherwise
    dominate).  Every engine must simulate the same cycle count as the
    stepped oracle for every workload — a mismatch means a fast engine
    broke cycle-exactness and is reported as an error rather than a slow
    result.

    ``campaigns`` selects the campaign-throughput family
    (:mod:`repro.bench.campaign_bench`) and ``services`` the
    serve-daemon family (:mod:`repro.bench.service_bench`); for each,
    ``None`` runs the family's default grid and ``()`` skips the family
    entirely.
    """
    from .campaign_bench import CAMPAIGN_WORKLOADS, run_campaign_benchmarks
    from .service_bench import SERVICE_WORKLOADS, run_service_benchmarks

    if campaigns is None:
        campaigns = CAMPAIGN_WORKLOADS
    if services is None:
        services = SERVICE_WORKLOADS
    entries: List[Dict[str, object]] = []
    for workload in workloads:
        engines: Dict[str, Dict[str, float]] = {}
        for engine in ENGINES:
            engines[engine] = _time_engine(workload, engine, quick, repeats)
        oracle = engines["stepped"]
        for engine, timing in engines.items():
            if timing["cycles"] != oracle["cycles"]:
                raise SimulationError(
                    f"{workload.name}: engines disagree on the cycle count "
                    f"(stepped {oracle['cycles']}, {engine} "
                    f"{timing['cycles']}); the {engine} engine is no longer "
                    "cycle-exact"
                )
        speedups = {
            engine: (
                timing["cycles_per_sec"] / oracle["cycles_per_sec"]
                if oracle["cycles_per_sec"]
                else 0.0
            )
            for engine, timing in engines.items()
            if engine != "stepped"
        }
        entries.append(
            {
                "name": workload.name,
                "preset": workload.preset,
                "arbiter": workload.arbiter,
                "topology": _effective_topology(workload),
                "kind": workload.kind,
                "stress": workload.stress,
                "preload_l2": workload.preload_l2,
                "iterations": workload.quick_iterations if quick else workload.iterations,
                "cycles": engines["event"]["cycles"],
                "engines": engines,
                # Legacy scalar kept for continuity of the default gate
                # (event vs stepped); per-engine ratios live in "speedups".
                "speedup": speedups["event"],
                "speedups": speedups,
            }
        )
    campaign_entries = run_campaign_benchmarks(campaigns, quick=quick, repeats=repeats)
    service_entries = run_service_benchmarks(services, quick=quick, repeats=repeats)
    return {
        "schema": BENCH_SCHEMA_VERSION,
        "rev": rev,
        "quick": quick,
        "repeats": repeats,
        "python": platform.python_version(),
        "workloads": entries,
        "campaigns": campaign_entries,
        "services": service_entries,
        "summary": _summarize(entries, campaign_entries, service_entries),
    }


def _geomean(values: Sequence[float]) -> float:
    if not values:
        return 1.0
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


def _summarize(
    entries: Sequence[Dict[str, object]],
    campaign_entries: Sequence[Dict[str, object]] = (),
    service_entries: Sequence[Dict[str, object]] = (),
) -> Dict[str, object]:
    default = next((entry for entry in entries if entry["name"] == DEFAULT_WORKLOAD), None)
    per_engine: Dict[str, Dict[str, object]] = {}
    engine_names = entries[0]["speedups"].keys() if entries else ()
    for engine in engine_names:
        values = [entry["speedups"][engine] for entry in entries if entry["speedups"][engine] > 0]
        per_engine[engine] = {
            "geomean_speedup": _geomean(values),
            "min_speedup": min(values) if values else 0.0,
            "max_speedup": max(values) if values else 0.0,
            "default_speedup": default["speedups"][engine] if default else None,
        }
    event = per_engine.get("event", {})
    warm_speedups = [
        entry["warm_speedup"] for entry in campaign_entries if entry["warm_speedup"] > 0
    ]
    replay_speedups = [
        entry["campaign_replay_speedup"]
        for entry in campaign_entries
        if entry.get("campaign_replay_speedup", 0) > 0
    ]
    service_speedups = [
        entry["multi_client_warm_speedup"]
        for entry in service_entries
        if entry["multi_client_warm_speedup"] > 0
    ]
    return {
        # Legacy top-level keys mirror the event engine (the original
        # schema-v1 meaning); per-engine numbers live under "engines".
        "geomean_speedup": event.get("geomean_speedup", 1.0),
        "min_speedup": event.get("min_speedup", 0.0),
        "max_speedup": event.get("max_speedup", 0.0),
        "default_workload": DEFAULT_WORKLOAD,
        "default_speedup": event.get("default_speedup"),
        "engines": per_engine,
        "campaign_geomean_warm_speedup": (
            _geomean(warm_speedups) if warm_speedups else None
        ),
        "campaign_replay_speedup": (
            _geomean(replay_speedups) if replay_speedups else None
        ),
        "service_geomean_multi_client_speedup": (
            _geomean(service_speedups) if service_speedups else None
        ),
    }


def render_report(payload: Dict[str, object]) -> str:
    """Render a BENCH payload as an aligned plain-text table."""
    lines = [
        f"rev {payload['rev']}  (quick={payload['quick']}, repeats={payload['repeats']}, "
        f"python {payload['python']})",
        f"{'workload':28s} {'cycles':>10s} {'stepped kc/s':>13s} "
        f"{'event kc/s':>11s} {'codegen kc/s':>13s} {'replay kc/s':>12s} "
        f"{'event x':>8s} {'codegen x':>10s} {'replay x':>9s}",
    ]
    for entry in payload["workloads"]:
        stepped = entry["engines"]["stepped"]["cycles_per_sec"] / 1e3
        event = entry["engines"]["event"]["cycles_per_sec"] / 1e3
        codegen = entry["engines"]["codegen"]["cycles_per_sec"] / 1e3
        replay = entry["engines"]["replay"]["cycles_per_sec"] / 1e3
        lines.append(
            f"{entry['name']:28s} {entry['cycles']:>10d} {stepped:>13.0f} "
            f"{event:>11.0f} {codegen:>13.0f} {replay:>12.0f} "
            f"{entry['speedups']['event']:>7.2f}x "
            f"{entry['speedups']['codegen']:>9.2f}x "
            f"{entry['speedups']['replay']:>8.2f}x"
        )
    summary = payload["summary"]
    for engine, stats in summary["engines"].items():
        line = (
            f"{engine} speedup: geomean {stats['geomean_speedup']:.2f}x, "
            f"min {stats['min_speedup']:.2f}x, max {stats['max_speedup']:.2f}x"
        )
        if stats["default_speedup"] is not None:
            line += (
                f"; default ({summary['default_workload']}) "
                f"{stats['default_speedup']:.2f}x"
            )
        lines.append(line)
    campaigns = payload.get("campaigns") or []
    if campaigns:
        lines.append("")
        lines.append(
            f"{'campaign':24s} {'runs':>5s} {'cold r/s':>9s} {'warm r/s':>9s} "
            f"{'warm x':>7s}  parallel"
        )
        for entry in campaigns:
            parallel = ", ".join(
                f"jobs={jobs}: {stats['runs_per_sec']:.0f} r/s "
                f"(eff {stats['efficiency']:.2f})"
                for jobs, stats in sorted(entry["parallel"].items())
            )
            lines.append(
                f"{entry['name']:24s} {entry['runs']:>5d} "
                f"{entry['cold']['runs_per_sec']:>9.0f} "
                f"{entry['warm']['runs_per_sec']:>9.0f} "
                f"{entry['warm_speedup']:>6.1f}x  {parallel}"
            )
        geomean = summary.get("campaign_geomean_warm_speedup")
        if geomean is not None:
            lines.append(f"campaign warm speedup: geomean {geomean:.1f}x")
        for entry in campaigns:
            replay = entry.get("replay")
            if replay:
                lines.append(
                    f"{entry['name']}: codegen-engine campaign "
                    f"{replay['codegen']['runs_per_sec']:.0f} r/s, trace-warm "
                    f"replay-engine campaign {replay['warm']['runs_per_sec']:.0f} r/s "
                    f"-> {entry['campaign_replay_speedup']:.2f}x"
                )
        geomean = summary.get("campaign_replay_speedup")
        if geomean is not None:
            lines.append(f"campaign replay speedup: geomean {geomean:.2f}x")
    services = payload.get("services") or []
    if services:
        lines.append("")
        lines.append(
            f"{'service':24s} {'runs':>5s} {'cold r/s':>9s} {'clients':>8s} "
            f"{'warm r/s':>9s} {'warm x':>7s} {'subs/s':>7s}"
        )
        for entry in services:
            lines.append(
                f"{entry['name']:24s} {entry['runs']:>5d} "
                f"{entry['cold']['runs_per_sec']:>9.0f} "
                f"{entry['clients']:>8d} "
                f"{entry['warm_multi']['runs_per_sec']:>9.0f} "
                f"{entry['multi_client_warm_speedup']:>6.1f}x "
                f"{entry['submissions']['per_sec']:>7.1f}"
            )
        geomean = summary.get("service_geomean_multi_client_speedup")
        if geomean is not None:
            lines.append(f"service multi-client warm speedup: geomean {geomean:.1f}x")
    return "\n".join(lines)


def profile_workload(
    workload: BenchWorkload,
    quick: bool = False,
    engines: Sequence[str] = ("event", "codegen", "replay"),
    top: int = 30,
) -> str:
    """cProfile one run per fast engine and return the hotspot tables.

    The ``--profile`` flag of ``python -m repro.bench run`` writes this
    text to ``profile/<scenario>.txt`` next to the BENCH json — the map of
    where each engine's wall time actually goes, sorted by cumulative
    time.  The replay engine is primed first (capture run outside the
    profile), so its table shows the trace-warm steady state being gated.
    """
    import cProfile
    import io
    import pstats

    from ..sim.trace import clear_trace_cache

    sections: List[str] = [f"profile: {workload.name} (quick={quick})"]
    for engine in engines:
        if engine == "replay":
            clear_trace_cache()
            system, _ = _build_system(workload, quick)
            system.run(observed_cores=[0], engine="replay")
        system, _ = _build_system(workload, quick)
        profiler = cProfile.Profile()
        profiler.enable()
        system.run(observed_cores=[0], engine=engine)
        profiler.disable()
        buffer = io.StringIO()
        stats = pstats.Stats(profiler, stream=buffer)
        stats.sort_stats("cumulative").print_stats(top)
        sections.append(f"--- engine: {engine} ---\n{buffer.getvalue().rstrip()}")
    return "\n\n".join(sections) + "\n"
