"""Command-line entry point: ``python -m repro.bench``.

Subcommands::

    run      time the workload grid on both engines, write BENCH_<rev>.json
    compare  gate a new payload against a baseline payload

See :mod:`repro.bench` for the artifact schema and gating semantics.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path
from typing import List, Optional

from .campaign_bench import CAMPAIGN_WORKLOADS
from .compare import METRICS, compare_files
from .harness import WORKLOADS, profile_workload, render_report, run_benchmarks
from .service_bench import SERVICE_WORKLOADS


def _detect_rev() -> str:
    """Short git revision of the working tree, or ``local`` outside a repo."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        )
        return out.stdout.strip() or "local"
    except (OSError, subprocess.SubprocessError):
        return "local"


def build_parser() -> argparse.ArgumentParser:
    """Create the argument parser for ``python -m repro.bench``."""
    parser = argparse.ArgumentParser(
        prog="repro.bench",
        description="Perf harness: time the simulation engines and gate regressions",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run = subparsers.add_parser("run", help="time the workload grid, emit BENCH_<rev>.json")
    run.add_argument("--quick", action="store_true", help="reduced workload sizes (CI smoke mode)")
    run.add_argument(
        "--out",
        metavar="DIR",
        default="benchmarks/perf/out",
        help="directory for the BENCH_<rev>.json artifact (default: benchmarks/perf/out)",
    )
    run.add_argument(
        "--rev",
        default=None,
        help="revision label for the artifact name (default: git short hash)",
    )
    run.add_argument(
        "--repeats",
        type=int,
        default=2,
        help="runs per engine per workload; best wall time is kept (default: 2)",
    )
    run.add_argument(
        "--profile",
        action="store_true",
        help="also cProfile each scenario per fast engine and write "
        "profile/<scenario>.txt hotspot tables next to the BENCH json",
    )
    run.add_argument(
        "--workload",
        action="append",
        choices=[workload.name for workload in WORKLOADS],
        help="restrict to specific engine workloads (repeatable; default: "
        "all; restricting skips the other families unless their own "
        "filters are also given)",
    )
    run.add_argument(
        "--campaign",
        action="append",
        choices=[bench.name for bench in CAMPAIGN_WORKLOADS],
        help="restrict to specific campaign benches (repeatable; default: "
        "all; restricting skips the other families unless their own "
        "filters are also given)",
    )
    run.add_argument(
        "--service",
        action="append",
        choices=[bench.name for bench in SERVICE_WORKLOADS],
        help="restrict to specific serve-daemon benches (repeatable; "
        "default: all; restricting skips the other families unless their "
        "own filters are also given)",
    )

    compare = subparsers.add_parser("compare", help="gate new BENCH payload(s) against a baseline")
    compare.add_argument("old", help="baseline BENCH_*.json")
    compare.add_argument("new", nargs="+", help="candidate BENCH_*.json file(s)")
    compare.add_argument(
        "--max-regression",
        type=float,
        default=0.15,
        help="allowed fractional drop of the gated metric (default: 0.15)",
    )
    compare.add_argument(
        "--metric",
        choices=METRICS,
        default="speedup",
        help="gated metric; speedup is host-independent (default: speedup)",
    )
    return parser


def _run(args: argparse.Namespace) -> int:
    rev = args.rev if args.rev is not None else _detect_rev()
    workloads = WORKLOADS
    campaigns = CAMPAIGN_WORKLOADS
    services = SERVICE_WORKLOADS
    if args.workload or args.campaign or args.service:
        # Any explicit filter narrows the run to exactly the named
        # benches; families without a filter of their own are skipped.
        workloads = (
            tuple(w for w in WORKLOADS if w.name in set(args.workload))
            if args.workload
            else ()
        )
        campaigns = (
            tuple(c for c in CAMPAIGN_WORKLOADS if c.name in set(args.campaign))
            if args.campaign
            else ()
        )
        services = (
            tuple(s for s in SERVICE_WORKLOADS if s.name in set(args.service))
            if args.service
            else ()
        )
    payload = run_benchmarks(
        workloads=workloads,
        quick=args.quick,
        repeats=args.repeats,
        rev=rev,
        campaigns=campaigns,
        services=services,
    )
    print(render_report(payload))
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{rev}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    print(f"\nWrote {path}")
    if args.profile:
        profile_dir = out_dir / "profile"
        profile_dir.mkdir(parents=True, exist_ok=True)
        for workload in workloads:
            text = profile_workload(workload, quick=args.quick)
            target = profile_dir / f"{workload.name.replace('/', '-')}.txt"
            target.write_text(text, encoding="utf-8")
            print(f"Wrote {target}")
    return 0


def _compare(args: argparse.Namespace) -> int:
    result = compare_files(
        args.old, args.new, max_regression=args.max_regression, metric=args.metric
    )
    print(result.render())
    return 0 if result.ok else 2


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro.bench``."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "run":
        return _run(args)
    return _compare(args)


if __name__ == "__main__":
    sys.exit(main())
