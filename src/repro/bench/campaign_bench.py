"""Campaign-throughput benchmarks: runs/sec through the result store.

While :mod:`repro.bench.harness` times single simulations, this family
times whole *campaigns* through the durable
:class:`~repro.campaign.store.ResultStore`, capturing the three numbers
the campaign engine is optimised for:

* **cold** runs/sec — miss-frontier execution through shard dispatch;
* **warm** runs/sec — a re-run of an unchanged campaign, which must
  simulate nothing and resolve the whole grid from the store's SQLite
  index (a handful of batched queries, zero artifact reads);
* **parallel efficiency** — cold speedup per worker versus ``--jobs``.

The gated metric is ``warm_speedup`` (warm / cold runs per second): like
the engine ``speedup`` metrics it is a same-process ratio, so a committed
baseline stays meaningful on any CI host.  Raw runs/sec and the store's
operation counters are recorded for trend plots and the ≥10x-fewer-ops
acceptance check.

Each measurement also re-asserts the engine's core guarantees — a warm
re-run performs zero simulations and reads zero artifact files, and
parallel records equal serial records — so a broken guarantee surfaces as
a bench *error*, never as a silently fast number.
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..campaign import CampaignSpec, ParallelRunner, ResultStore
from ..errors import SimulationError


@dataclass(frozen=True)
class CampaignBench:
    """One timed campaign: a spec grid pushed through the result store.

    Attributes:
        name: stable identifier used to match entries across payloads.
        preset: platform preset the campaign sweeps.
        arbiters: bus arbitration policies of the grid.
        seeds: base seeds (each draws an independent workload set).
        quick_seeds: reduced seed axis for ``--quick`` (CI) runs.
        workloads / quick_workloads: random workloads per grid point.
        iterations / quick_iterations: observed-task loop iterations.
        rsk_iterations / quick_rsk_iterations: observed-rsk iterations.
        jobs_axis: worker counts measured for the parallel-efficiency
            series (cold, fresh store per point).
    """

    name: str
    preset: str
    arbiters: Tuple[str, ...] = ("round_robin",)
    seeds: Tuple[int, ...] = (2015,)
    quick_seeds: Tuple[int, ...] = (2015,)
    workloads: int = 4
    quick_workloads: int = 2
    iterations: int = 10
    quick_iterations: int = 5
    rsk_iterations: int = 20
    quick_rsk_iterations: int = 10
    jobs_axis: Tuple[int, ...] = (2,)

    def spec(self, quick: bool) -> CampaignSpec:
        """The campaign grid at full or quick size."""
        return CampaignSpec(
            presets=(self.preset,),
            arbiters=self.arbiters,
            seeds=self.quick_seeds if quick else self.seeds,
            num_workloads=self.quick_workloads if quick else self.workloads,
            iterations=self.quick_iterations if quick else self.iterations,
            rsk_iterations=self.quick_rsk_iterations if quick else self.rsk_iterations,
        )


def _grid() -> Tuple[CampaignBench, ...]:
    return (
        # Seed sweep on the 2-core platform: many runs per config object,
        # which is exactly the shape shard-level config dedup amortises.
        CampaignBench(
            name="small/seed-sweep",
            preset="small",
            seeds=(2015, 2016, 2017, 2018),
            quick_seeds=(2015, 2016),
        ),
        # Arbiter sweep on the paper's default 4-core platform: heavier
        # individual runs, two distinct configs in the frontier.
        CampaignBench(
            name="ref/arbiter-sweep",
            preset="ref",
            arbiters=("round_robin", "fifo"),
            workloads=4,
            quick_workloads=2,
            iterations=8,
            quick_iterations=4,
            rsk_iterations=16,
            quick_rsk_iterations=8,
        ),
    )


#: The campaign-throughput workload grid.
CAMPAIGN_WORKLOADS: Tuple[CampaignBench, ...] = _grid()


def _timed_run(
    runner: ParallelRunner, descriptors: Sequence[object]
) -> Tuple[float, object]:
    started = time.perf_counter()
    outcome = runner.run(descriptors)  # type: ignore[arg-type]
    return time.perf_counter() - started, outcome


def time_campaign(
    bench: CampaignBench, quick: bool, repeats: int
) -> Dict[str, object]:
    """Measure one campaign bench: cold, warm and parallel phases.

    Every phase keeps the best wall time of ``repeats`` attempts (cold and
    parallel attempts each get a fresh store; warm attempts share the store
    the last cold attempt populated).
    """
    descriptors = bench.spec(quick).expand()
    runs = len(descriptors)
    entry: Dict[str, object] = {
        "name": bench.name,
        "preset": bench.preset,
        "runs": runs,
    }
    with tempfile.TemporaryDirectory(prefix="repro-bench-campaign-") as tmp:
        base = Path(tmp)
        cold_seconds: Optional[float] = None
        reference: Optional[Tuple[Dict[str, object], ...]] = None
        warm_dir: Optional[Path] = None
        for attempt in range(max(1, repeats)):
            directory = base / f"cold-{attempt}"
            with ResultStore(directory, campaign_id=bench.name) as store:
                elapsed, outcome = _timed_run(ParallelRunner(jobs=1, cache=store), descriptors)
            if outcome.stats["simulated"] != outcome.stats["unique_runs"]:
                raise SimulationError(
                    f"{bench.name}: cold campaign hit a fresh store "
                    f"({outcome.stats['simulated']} simulated of "
                    f"{outcome.stats['unique_runs']} unique runs)"
                )
            if reference is None:
                reference = outcome.records
                entry["unique_runs"] = outcome.stats["unique_runs"]
            if cold_seconds is None or elapsed < cold_seconds:
                cold_seconds = elapsed
            warm_dir = directory
        assert cold_seconds is not None and warm_dir is not None and reference is not None

        warm_seconds: Optional[float] = None
        warm_counters: Dict[str, int] = {}
        with ResultStore(warm_dir, campaign_id=bench.name) as store:
            for _ in range(max(1, repeats)):
                store.counters.reset()
                elapsed, outcome = _timed_run(ParallelRunner(jobs=1, cache=store), descriptors)
                if outcome.stats["simulated"] != 0:
                    raise SimulationError(
                        f"{bench.name}: warm re-run simulated "
                        f"{outcome.stats['simulated']} run(s); the store "
                        "failed to dedupe an unchanged campaign"
                    )
                if store.counters.artifact_reads != 0:
                    raise SimulationError(
                        f"{bench.name}: warm re-run read "
                        f"{store.counters.artifact_reads} artifact file(s); "
                        "the index should have answered from its inline records"
                    )
                if outcome.records != reference:
                    raise SimulationError(
                        f"{bench.name}: warm records differ from cold records"
                    )
                if warm_seconds is None or elapsed < warm_seconds:
                    warm_seconds = elapsed
                    warm_counters = store.counters.as_dict()
        assert warm_seconds is not None

        parallel: Dict[str, Dict[str, float]] = {}
        for jobs in bench.jobs_axis:
            best: Optional[float] = None
            for attempt in range(max(1, repeats)):
                directory = base / f"par{jobs}-{attempt}"
                with ResultStore(directory, campaign_id=bench.name) as store:
                    elapsed, outcome = _timed_run(
                        ParallelRunner(jobs=jobs, cache=store), descriptors
                    )
                if outcome.records != reference:
                    raise SimulationError(
                        f"{bench.name}: parallel (jobs={jobs}) records differ "
                        "from serial records"
                    )
                if best is None or elapsed < best:
                    best = elapsed
            assert best is not None
            speedup = cold_seconds / best if best else 0.0
            parallel[str(jobs)] = {
                "seconds": best,
                "runs_per_sec": runs / best if best else 0.0,
                "speedup": speedup,
                "efficiency": speedup / jobs,
            }

    cold_rps = runs / cold_seconds if cold_seconds else 0.0
    warm_rps = runs / warm_seconds if warm_seconds else 0.0
    entry["cold"] = {"seconds": cold_seconds, "runs_per_sec": cold_rps}
    entry["warm"] = {
        "seconds": warm_seconds,
        "runs_per_sec": warm_rps,
        "counters": warm_counters,
    }
    entry["warm_speedup"] = warm_rps / cold_rps if cold_rps else 0.0
    entry["parallel"] = parallel
    return entry


def run_campaign_benchmarks(
    campaigns: Sequence[CampaignBench] = CAMPAIGN_WORKLOADS,
    quick: bool = False,
    repeats: int = 2,
) -> List[Dict[str, object]]:
    """Time every campaign bench and return the ``campaigns`` payload section."""
    return [time_campaign(bench, quick, repeats) for bench in campaigns]
