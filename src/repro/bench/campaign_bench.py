"""Campaign-throughput benchmarks: runs/sec through the result store.

While :mod:`repro.bench.harness` times single simulations, this family
times whole *campaigns* through the durable
:class:`~repro.campaign.store.ResultStore`, capturing the three numbers
the campaign engine is optimised for:

* **cold** runs/sec — miss-frontier execution through shard dispatch;
* **warm** runs/sec — a re-run of an unchanged campaign, which must
  simulate nothing and resolve the whole grid from the store's SQLite
  index (a handful of batched queries, zero artifact reads);
* **parallel efficiency** — cold speedup per worker versus ``--jobs``.

The gated metric is ``warm_speedup`` (warm / cold runs per second): like
the engine ``speedup`` metrics it is a same-process ratio, so a committed
baseline stays meaningful on any CI host.  Raw runs/sec and the store's
operation counters are recorded for trend plots and the ≥10x-fewer-ops
acceptance check.

Each measurement also re-asserts the engine's core guarantees — a warm
re-run performs zero simulations and reads zero artifact files, and
parallel records equal serial records — so a broken guarantee surfaces as
a bench *error*, never as a silently fast number.
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import dataclass, replace as dataclass_replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..campaign import CampaignSpec, ParallelRunner, ResultStore
from ..errors import SimulationError
from ..sim.trace import clear_trace_cache, global_trace_cache


@dataclass(frozen=True)
class CampaignBench:
    """One timed campaign: a spec grid pushed through the result store.

    Attributes:
        name: stable identifier used to match entries across payloads.
        preset: platform preset the campaign sweeps.
        arbiters: bus arbitration policies of the grid.
        seeds: base seeds (each draws an independent workload set).
        quick_seeds: reduced seed axis for ``--quick`` (CI) runs.
        workloads / quick_workloads: random workloads per grid point.
        iterations / quick_iterations: observed-task loop iterations.
        rsk_iterations / quick_rsk_iterations: observed-rsk iterations.
        jobs_axis: worker counts measured for the parallel-efficiency
            series (cold, fresh store per point).
        replay_compare: also measure the replay-engine phase — a dedicated
            trace-safe arbiter sweep (see :meth:`replay_spec`) run through
            the ``codegen`` engine versus the ``replay`` engine with a warm
            trace cache (fresh result store each time, so every run still
            simulates the *interconnect*).  Produces
            ``campaign_replay_speedup``, the gated metric of the trace
            fast path.
        replay_rsk_iterations / quick_replay_rsk_iterations: observed-rsk
            iterations of the replay phase's sweep.  Deliberately much
            heavier than ``rsk_iterations``: the phase gates a *simulation*
            speedup, so simulated cycles must dominate the campaign's
            fixed per-run overhead (workload build, analysis, store I/O).
    """

    name: str
    preset: str
    arbiters: Tuple[str, ...] = ("round_robin",)
    seeds: Tuple[int, ...] = (2015,)
    quick_seeds: Tuple[int, ...] = (2015,)
    workloads: int = 4
    quick_workloads: int = 2
    iterations: int = 10
    quick_iterations: int = 5
    rsk_iterations: int = 20
    quick_rsk_iterations: int = 10
    jobs_axis: Tuple[int, ...] = (2,)
    replay_compare: bool = False
    replay_rsk_iterations: int = 600
    quick_replay_rsk_iterations: int = 300

    def spec(self, quick: bool) -> CampaignSpec:
        """The campaign grid at full or quick size."""
        return CampaignSpec(
            presets=(self.preset,),
            arbiters=self.arbiters,
            seeds=self.quick_seeds if quick else self.seeds,
            num_workloads=self.quick_workloads if quick else self.workloads,
            iterations=self.quick_iterations if quick else self.iterations,
            rsk_iterations=self.quick_rsk_iterations if quick else self.rsk_iterations,
        )

    def replay_spec(self, quick: bool) -> CampaignSpec:
        """The replay phase's grid: the reference rsk swept over every
        arbiter of the bench.

        Synthetic workloads contain stores, which are never trace-safe, so
        they fall back to execution-driven cores and would measure the
        fallback, not the fast path.  The load-kind reference rsk is the
        paper's own arbiter-sweep shape — the exact scenario the trace
        cache accelerates: one core-side capture per kernel, replayed
        across every arbiter of the sweep.
        """
        return CampaignSpec(
            presets=(self.preset,),
            arbiters=self.arbiters,
            seeds=(self.quick_seeds if quick else self.seeds)[:1],
            num_workloads=0,
            include_rsk_reference=True,
            rsk_iterations=(
                self.quick_replay_rsk_iterations if quick else self.replay_rsk_iterations
            ),
        )


def _grid() -> Tuple[CampaignBench, ...]:
    return (
        # Seed sweep on the 2-core platform: many runs per config object,
        # which is exactly the shape shard-level config dedup amortises.
        CampaignBench(
            name="small/seed-sweep",
            preset="small",
            seeds=(2015, 2016, 2017, 2018),
            quick_seeds=(2015, 2016),
        ),
        # Arbiter sweep on the paper's default 4-core platform: heavier
        # individual runs, four distinct configs in the frontier.  This is
        # the replay engine's home turf — the core side is identical
        # across the arbiter axis, so it also carries the replay phase.
        CampaignBench(
            name="ref/arbiter-sweep",
            preset="ref",
            arbiters=("round_robin", "fifo", "fixed_priority", "tdma"),
            workloads=4,
            quick_workloads=2,
            iterations=8,
            quick_iterations=4,
            rsk_iterations=16,
            quick_rsk_iterations=8,
            replay_compare=True,
        ),
    )


#: The campaign-throughput workload grid.
CAMPAIGN_WORKLOADS: Tuple[CampaignBench, ...] = _grid()


def _timed_run(
    runner: ParallelRunner, descriptors: Sequence[object]
) -> Tuple[float, object]:
    started = time.perf_counter()
    outcome = runner.run(descriptors)  # type: ignore[arg-type]
    return time.perf_counter() - started, outcome


def time_campaign(
    bench: CampaignBench, quick: bool, repeats: int
) -> Dict[str, object]:
    """Measure one campaign bench: cold, warm and parallel phases.

    Every phase keeps the best wall time of ``repeats`` attempts (cold and
    parallel attempts each get a fresh store; warm attempts share the store
    the last cold attempt populated).
    """
    descriptors = bench.spec(quick).expand()
    runs = len(descriptors)
    entry: Dict[str, object] = {
        "name": bench.name,
        "preset": bench.preset,
        "runs": runs,
    }
    with tempfile.TemporaryDirectory(prefix="repro-bench-campaign-") as tmp:
        base = Path(tmp)
        cold_seconds: Optional[float] = None
        reference: Optional[Tuple[Dict[str, object], ...]] = None
        warm_dir: Optional[Path] = None
        for attempt in range(max(1, repeats)):
            directory = base / f"cold-{attempt}"
            with ResultStore(directory, campaign_id=bench.name) as store:
                elapsed, outcome = _timed_run(ParallelRunner(jobs=1, cache=store), descriptors)
            if outcome.stats["simulated"] != outcome.stats["unique_runs"]:
                raise SimulationError(
                    f"{bench.name}: cold campaign hit a fresh store "
                    f"({outcome.stats['simulated']} simulated of "
                    f"{outcome.stats['unique_runs']} unique runs)"
                )
            if reference is None:
                reference = outcome.records
                entry["unique_runs"] = outcome.stats["unique_runs"]
            if cold_seconds is None or elapsed < cold_seconds:
                cold_seconds = elapsed
            warm_dir = directory
        assert cold_seconds is not None and warm_dir is not None and reference is not None

        warm_seconds: Optional[float] = None
        warm_counters: Dict[str, int] = {}
        with ResultStore(warm_dir, campaign_id=bench.name) as store:
            for _ in range(max(1, repeats)):
                store.counters.reset()
                elapsed, outcome = _timed_run(ParallelRunner(jobs=1, cache=store), descriptors)
                if outcome.stats["simulated"] != 0:
                    raise SimulationError(
                        f"{bench.name}: warm re-run simulated "
                        f"{outcome.stats['simulated']} run(s); the store "
                        "failed to dedupe an unchanged campaign"
                    )
                if store.counters.artifact_reads != 0:
                    raise SimulationError(
                        f"{bench.name}: warm re-run read "
                        f"{store.counters.artifact_reads} artifact file(s); "
                        "the index should have answered from its inline records"
                    )
                if outcome.records != reference:
                    raise SimulationError(
                        f"{bench.name}: warm records differ from cold records"
                    )
                if warm_seconds is None or elapsed < warm_seconds:
                    warm_seconds = elapsed
                    warm_counters = store.counters.as_dict()
        assert warm_seconds is not None

        parallel: Dict[str, Dict[str, float]] = {}
        for jobs in bench.jobs_axis:
            best: Optional[float] = None
            for attempt in range(max(1, repeats)):
                directory = base / f"par{jobs}-{attempt}"
                with ResultStore(directory, campaign_id=bench.name) as store:
                    elapsed, outcome = _timed_run(
                        ParallelRunner(jobs=jobs, cache=store), descriptors
                    )
                if outcome.records != reference:
                    raise SimulationError(
                        f"{bench.name}: parallel (jobs={jobs}) records differ "
                        "from serial records"
                    )
                if best is None or elapsed < best:
                    best = elapsed
            assert best is not None
            speedup = cold_seconds / best if best else 0.0
            parallel[str(jobs)] = {
                "seconds": best,
                "runs_per_sec": runs / best if best else 0.0,
                "speedup": speedup,
                "efficiency": speedup / jobs,
            }

        if bench.replay_compare:
            entry["replay"] = _time_replay_phase(bench, quick, repeats, base)
            codegen_rps = entry["replay"]["codegen"]["runs_per_sec"]
            warm_rps_replay = entry["replay"]["warm"]["runs_per_sec"]
            entry["campaign_replay_speedup"] = (
                warm_rps_replay / codegen_rps if codegen_rps else 0.0
            )

    cold_rps = runs / cold_seconds if cold_seconds else 0.0
    warm_rps = runs / warm_seconds if warm_seconds else 0.0
    entry["cold"] = {"seconds": cold_seconds, "runs_per_sec": cold_rps}
    entry["warm"] = {
        "seconds": warm_seconds,
        "runs_per_sec": warm_rps,
        "counters": warm_counters,
    }
    entry["warm_speedup"] = warm_rps / cold_rps if cold_rps else 0.0
    entry["parallel"] = parallel
    return entry


def _strip_engine(records: Sequence[Dict[str, object]]) -> Tuple[Dict[str, object], ...]:
    """Records with the config's ``engine`` field removed.

    The engine never changes results (every engine is cycle-exact); the
    replay phase asserts that by comparing codegen-campaign records with
    replay-campaign records modulo this one config field.
    """
    stripped: List[Dict[str, object]] = []
    for record in records:
        clone = dict(record)
        config = clone.get("config")
        if isinstance(config, dict):
            config = dict(config)
            config.pop("engine", None)
            clone["config"] = config
        stripped.append(clone)
    return tuple(stripped)


def _time_replay_phase(
    bench: CampaignBench, quick: bool, repeats: int, base: Path
) -> Dict[str, object]:
    """The trace fast path's gated measurement.

    Times the bench's trace-safe arbiter sweep (:meth:`CampaignBench.replay_spec`)
    twice through fresh result stores (so every run simulates the
    interconnect):

    * through the ``codegen`` engine — the fastest execution-driven
      baseline, re-simulating every core's cache hierarchy per run;
    * through the ``replay`` engine with a warm trace cache — one priming
      campaign captures each kernel's core side once, then the timed
      campaigns stream the memoised traces.

    The memoisation guarantee is asserted on the trace-cache counters: the
    timed replay campaigns must capture *zero* traces — every core side of
    the sweep (observed rsk and contenders alike) replays from the cache,
    so no cache-hierarchy simulation happens after the first capture.
    """
    spec = bench.replay_spec(quick)
    codegen_descriptors = dataclass_replace(spec, engine="codegen").expand()
    replay_descriptors = dataclass_replace(spec, engine="replay").expand()
    runs = len(codegen_descriptors)

    codegen_seconds: Optional[float] = None
    reference: Optional[Tuple[Dict[str, object], ...]] = None
    for attempt in range(max(1, repeats)):
        directory = base / f"replaycmp-codegen-{attempt}"
        with ResultStore(directory, campaign_id=bench.name) as store:
            elapsed, outcome = _timed_run(
                ParallelRunner(jobs=1, cache=store), codegen_descriptors
            )
        if reference is None:
            reference = _strip_engine(outcome.records)
        if codegen_seconds is None or elapsed < codegen_seconds:
            codegen_seconds = elapsed
    assert codegen_seconds is not None and reference is not None

    cache = global_trace_cache()
    clear_trace_cache()
    # Priming campaign: the only execution-driven core simulations of the
    # whole phase.  Its store is discarded so the timed attempts resolve
    # nothing from the result store — only from the trace cache.
    with ResultStore(base / "replaycmp-prime", campaign_id=bench.name) as store:
        _timed_run(ParallelRunner(jobs=1, cache=store), replay_descriptors)

    replay_seconds: Optional[float] = None
    warm_counters: Dict[str, int] = {}
    for attempt in range(max(1, repeats)):
        cache.reset_counters()
        directory = base / f"replaycmp-replay-{attempt}"
        with ResultStore(directory, campaign_id=bench.name) as store:
            elapsed, outcome = _timed_run(
                ParallelRunner(jobs=1, cache=store), replay_descriptors
            )
        if cache.counters["captures"] != 0:
            raise SimulationError(
                f"{bench.name}: trace-warm replay campaign captured "
                f"{cache.counters['captures']} core trace(s); the core side "
                "should have been memoised by the priming campaign"
            )
        if cache.counters["hits"] == 0:
            raise SimulationError(
                f"{bench.name}: trace-warm replay campaign hit zero cached "
                "traces; the grid is not exercising the fast path"
            )
        if _strip_engine(outcome.records) != reference:
            raise SimulationError(
                f"{bench.name}: replay-engine campaign records differ from "
                "codegen-engine records"
            )
        if replay_seconds is None or elapsed < replay_seconds:
            replay_seconds = elapsed
            warm_counters = dict(cache.stats())
    assert replay_seconds is not None
    clear_trace_cache()

    return {
        "runs": runs,
        "codegen": {
            "seconds": codegen_seconds,
            "runs_per_sec": runs / codegen_seconds if codegen_seconds else 0.0,
        },
        "warm": {
            "seconds": replay_seconds,
            "runs_per_sec": runs / replay_seconds if replay_seconds else 0.0,
            "trace_cache": warm_counters,
        },
    }


def run_campaign_benchmarks(
    campaigns: Sequence[CampaignBench] = CAMPAIGN_WORKLOADS,
    quick: bool = False,
    repeats: int = 2,
) -> List[Dict[str, object]]:
    """Time every campaign bench and return the ``campaigns`` payload section."""
    return [time_campaign(bench, quick, repeats) for bench in campaigns]
