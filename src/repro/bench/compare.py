"""The perf-regression compare gate.

Compares two BENCH payloads workload by workload and fails when the gated
metric of any workload dropped by more than the allowed fraction.  The
default metric is ``speedup`` (event vs stepped, measured in the same
process), which is a same-machine ratio and therefore meaningful even when
the two payloads were produced on different hosts — e.g. a committed
baseline compared against a CI runner.  ``cycles_per_sec`` can be gated
instead when both payloads come from the same machine.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence

from .harness import BENCH_SCHEMA_VERSION

#: Metrics the gate can check.  ``speedup`` is the event engine vs the
#: stepped oracle; ``codegen_speedup`` gates the generated-loop engine the
#: same host-independent way; ``campaign_warm_speedup`` gates the result
#: store's warm-hit path (warm vs cold runs/sec of the ``campaigns``
#: section — also a same-process ratio); ``service_warm_speedup`` gates
#: the serve daemon's multi-client warm path (aggregate warm runs/sec of
#: concurrent clients vs cold, from the ``services`` section);
#: ``cycles_per_sec`` (event engine) is only meaningful when both
#: payloads come from the same machine.
#: ``replay_speedup`` gates the trace-warm replay engine per workload and
#: ``campaign_replay_speedup`` the replay-engine campaign phase (trace-warm
#: replay campaign vs codegen-engine campaign runs/sec).
METRICS = (
    "speedup",
    "codegen_speedup",
    "replay_speedup",
    "campaign_warm_speedup",
    "campaign_replay_speedup",
    "service_warm_speedup",
    "cycles_per_sec",
)


@dataclass
class CompareResult:
    """Outcome of one payload comparison.

    Attributes:
        ok: True when no workload regressed beyond the tolerance.
        lines: human-readable report (one row per compared workload).
        regressions: names of the workloads that failed the gate.
    """

    ok: bool
    lines: List[str] = field(default_factory=list)
    regressions: List[str] = field(default_factory=list)

    def render(self) -> str:
        """The report as a single printable string."""
        return "\n".join(self.lines)


def load_payload(path) -> Dict[str, object]:
    """Read a BENCH_*.json payload, validating its schema stamp.

    Payloads written by *older* schemas load fine — the section layout is
    append-only, and :func:`compare_payloads` warns (instead of crashing)
    when the gated metric predates the baseline.  A *newer* stamp than the
    tool's is still refused: its metrics may have changed meaning.
    """
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    schema = data.get("schema")
    if not isinstance(schema, int) or schema > BENCH_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: BENCH schema {schema!r} is newer than "
            f"this tool's schema {BENCH_SCHEMA_VERSION}"
        )
    return data


def _metric_of(entry: Dict[str, object], metric: str) -> float:
    """The gated metric's value in ``entry``.

    Raises :class:`KeyError` when the entry predates the metric (an
    older-schema baseline); callers turn that into a warning, not a crash.
    """
    if metric == "speedup":
        return float(entry["speedup"])
    if metric == "codegen_speedup":
        return float(entry["speedups"]["codegen"])
    if metric == "replay_speedup":
        return float(entry["speedups"]["replay"])
    if metric == "campaign_warm_speedup":
        return float(entry["warm_speedup"])
    if metric == "campaign_replay_speedup":
        return float(entry["campaign_replay_speedup"])
    if metric == "service_warm_speedup":
        return float(entry["multi_client_warm_speedup"])
    if metric == "cycles_per_sec":
        return float(entry["engines"]["event"]["cycles_per_sec"])
    raise ValueError(f"unknown metric {metric!r}; available: {list(METRICS)}")


def _section_of(metric: str) -> str:
    """The payload section a metric gates: engine metrics live under
    ``workloads``, campaign metrics under ``campaigns``, service metrics
    under ``services``."""
    if metric.startswith("campaign_"):
        return "campaigns"
    if metric.startswith("service_"):
        return "services"
    return "workloads"


def compare_payloads(
    old: Dict[str, object],
    new: Dict[str, object],
    max_regression: float = 0.15,
    metric: str = "speedup",
) -> CompareResult:
    """Gate ``new`` against ``old``: every old workload must still exist and
    must not have lost more than ``max_regression`` of its metric.

    Workloads only present in ``new`` — scenarios the baseline predates —
    are *additions*: they are reported with a warning asking for a baseline
    refresh, but never gated, so adding bench coverage cannot fail the
    build.  (Workloads that *disappear* from ``new`` still fail: losing
    coverage silently is a regression.)
    """
    if not 0 <= max_regression < 1:
        raise ValueError(f"max_regression must be in [0, 1), got {max_regression}")
    section = _section_of(metric)
    old_entries = {entry["name"]: entry for entry in old.get(section, [])}
    new_entries = {entry["name"]: entry for entry in new.get(section, [])}
    result = CompareResult(ok=True)
    result.lines.append(
        f"comparing {metric} (old rev {old.get('rev')}, new rev {new.get('rev')}, "
        f"max regression {max_regression:.0%})"
    )
    if old.get("quick") != new.get("quick"):
        result.lines.append(
            f"warning: payloads were measured at different sizes "
            f"(old quick={old.get('quick')}, new quick={new.get('quick')}); "
            "speedups are not directly comparable — regenerate the baseline "
            "at the same size"
        )
    result.lines.append(f"{'workload':28s} {'old':>9s} {'new':>9s} {'ratio':>7s}  verdict")
    unmeasured: List[str] = []
    for name, old_entry in old_entries.items():
        new_entry = new_entries.get(name)
        if new_entry is None:
            result.ok = False
            result.regressions.append(name)
            result.lines.append(f"{name:28s} {'-':>9s} {'-':>9s} {'-':>7s}  MISSING")
            continue
        try:
            old_value = _metric_of(old_entry, metric)
        except KeyError:
            # The baseline predates this metric (older BENCH schema, or an
            # entry that never carried it): warn, never gate — exactly like
            # a workload missing from the baseline.
            unmeasured.append(name)
            try:
                new_value = _metric_of(new_entry, metric)
            except KeyError:
                result.lines.append(
                    f"{name:28s} {'-':>9s} {'-':>9s} {'-':>7s}  NO METRIC"
                )
            else:
                result.lines.append(
                    f"{name:28s} {'-':>9s} {new_value:>9.2f} {'-':>7s}  NO BASELINE"
                )
            continue
        try:
            new_value = _metric_of(new_entry, metric)
        except KeyError:
            # The candidate dropped a metric the baseline gates: that is a
            # coverage loss, like a disappearing workload.
            result.ok = False
            result.regressions.append(name)
            result.lines.append(
                f"{name:28s} {old_value:>9.2f} {'-':>9s} {'-':>7s}  METRIC LOST"
            )
            continue
        ratio = new_value / old_value if old_value else 0.0
        regressed = ratio < 1.0 - max_regression
        if regressed:
            result.ok = False
            result.regressions.append(name)
        result.lines.append(
            f"{name:28s} {old_value:>9.2f} {new_value:>9.2f} {ratio:>7.2f}  "
            f"{'REGRESSED' if regressed else 'ok'}"
        )
    additions = [name for name in new_entries if name not in old_entries]
    for name in additions:
        try:
            added_value = f"{_metric_of(new_entries[name], metric):>9.2f}"
        except KeyError:
            added_value = f"{'-':>9s}"
        result.lines.append(
            f"{name:28s} {'-':>9s} {added_value} {'-':>7s}  ADDED"
        )
    if additions:
        result.lines.append(
            f"warning: {len(additions)} workload(s) missing from the baseline "
            f"treated as additions (not gated): {', '.join(additions)}; "
            "refresh the baseline to start gating them"
        )
    if unmeasured:
        result.lines.append(
            f"warning: metric {metric!r} is absent from {len(unmeasured)} "
            f"baseline entr{'y' if len(unmeasured) == 1 else 'ies'} "
            f"(older BENCH schema?): {', '.join(unmeasured)}; not gated — "
            "regenerate the baseline to start gating them"
        )
    verdict = "PASS" if result.ok else "FAIL"
    result.lines.append(
        f"{verdict}: {len(result.regressions)} regression(s) out of "
        f"{len(old_entries)} gated workload(s)"
    )
    return result


def compare_files(
    old_path,
    new_paths: Sequence,
    max_regression: float = 0.15,
    metric: str = "speedup",
) -> CompareResult:
    """File-level wrapper: gate every payload in ``new_paths`` against ``old_path``."""
    old = load_payload(old_path)
    merged = CompareResult(ok=True)
    for new_path in new_paths:
        result = compare_payloads(
            old, load_payload(new_path), max_regression=max_regression, metric=metric
        )
        merged.ok = merged.ok and result.ok
        merged.lines.extend(result.lines)
        merged.regressions.extend(result.regressions)
    return merged
