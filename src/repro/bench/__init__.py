"""Performance harness for the simulation engines.

This package times representative workloads (rsk contention runs per
arbiter x preset, the campaign hot path) on both simulation engines, emits
``BENCH_<rev>.json`` artifacts with cycles/sec and the event engine's
speedup over the stepped oracle, and provides the comparison gate CI uses
to fail pull requests that slow the hot path::

    python -m repro.bench run --quick --out out/perf
    python -m repro.bench compare benchmarks/perf/baseline.json \
        out/perf/BENCH_*.json --max-regression 0.15

The gated metric defaults to ``speedup`` (event vs stepped measured in the
same process), which is a same-machine ratio and therefore comparable
across hosts; raw ``cycles_per_sec`` is recorded for trend plots but is
hardware-dependent.
"""

from .campaign_bench import (
    CAMPAIGN_WORKLOADS,
    CampaignBench,
    run_campaign_benchmarks,
    time_campaign,
)
from .compare import CompareResult, compare_payloads, load_payload
from .harness import (
    BENCH_SCHEMA_VERSION,
    BenchWorkload,
    DEFAULT_WORKLOAD,
    WORKLOADS,
    render_report,
    run_benchmarks,
)
from .service_bench import (
    SERVICE_WORKLOADS,
    ServiceBench,
    run_service_benchmarks,
    time_service,
)

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BenchWorkload",
    "CAMPAIGN_WORKLOADS",
    "CampaignBench",
    "CompareResult",
    "DEFAULT_WORKLOAD",
    "SERVICE_WORKLOADS",
    "ServiceBench",
    "WORKLOADS",
    "compare_payloads",
    "load_payload",
    "render_report",
    "run_benchmarks",
    "run_campaign_benchmarks",
    "run_service_benchmarks",
    "time_campaign",
    "time_service",
]
