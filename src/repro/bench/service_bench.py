"""Service-throughput benchmarks: campaigns through the serve daemon.

While :mod:`repro.bench.campaign_bench` times campaigns through an
in-process :class:`~repro.campaign.runner.ParallelRunner`, this family
times them through the full campaign-as-a-service stack — a
:class:`~repro.service.CampaignDaemon` on a Unix socket, talked to by
:class:`~repro.service.ServiceClient` instances over the JSON-lines
protocol — capturing the two numbers the daemon is optimised for:

* **multi-client warm speedup** — ``clients`` concurrent clients each
  submit the same already-simulated campaign; aggregate warm runs/sec
  over cold runs/sec.  This is the daemon's whole point: overlapping
  submissions share one store, so extra clients cost protocol overhead
  and index queries, never simulations.
* **submissions/sec** — sequential warm submit+wait round trips, the
  per-job fixed cost of the socket, scheduler and store claim.

The gated metric is ``multi_client_warm_speedup``: like ``warm_speedup``
in the campaign family it is a same-process ratio, so a committed
baseline stays meaningful on any CI host.

Each measurement re-asserts the service's core guarantees — every warm
job performs zero simulations and resolves its whole grid from the
shared store, and warm records equal the cold reference — so a broken
guarantee surfaces as a bench *error*, never as a silently fast number.
"""

from __future__ import annotations

import io
import tempfile
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..campaign import CampaignSpec
from ..errors import SimulationError
from ..service import CampaignDaemon, ServiceAddress, ServiceClient

#: Generous per-job ceiling: a wedged daemon should fail the bench with a
#: timeout error, not hang the whole harness.
_WAIT_TIMEOUT = 600.0


@dataclass(frozen=True)
class ServiceBench:
    """One timed service scenario: a spec grid submitted through a daemon.

    Attributes:
        name: stable identifier used to match entries across payloads.
        preset: platform preset the campaign sweeps.
        arbiters: bus arbitration policies of the grid.
        seeds: base seeds (each draws an independent workload set).
        quick_seeds: reduced seed axis for ``--quick`` (CI) runs.
        workloads / quick_workloads: random workloads per grid point.
        iterations / quick_iterations: observed-task loop iterations.
        rsk_iterations / quick_rsk_iterations: observed-rsk iterations.
        clients: concurrent clients in the warm multi-client phase.
        submissions / quick_submissions: sequential warm submit+wait
            round trips timed for the submissions/sec series.
    """

    name: str
    preset: str
    arbiters: Tuple[str, ...] = ("round_robin",)
    seeds: Tuple[int, ...] = (2015,)
    quick_seeds: Tuple[int, ...] = (2015,)
    workloads: int = 3
    quick_workloads: int = 2
    iterations: int = 8
    quick_iterations: int = 5
    rsk_iterations: int = 16
    quick_rsk_iterations: int = 10
    clients: int = 3
    submissions: int = 6
    quick_submissions: int = 4

    def spec(self, quick: bool) -> CampaignSpec:
        """The campaign grid at full or quick size."""
        return CampaignSpec(
            presets=(self.preset,),
            arbiters=self.arbiters,
            seeds=self.quick_seeds if quick else self.seeds,
            num_workloads=self.quick_workloads if quick else self.workloads,
            iterations=self.quick_iterations if quick else self.iterations,
            rsk_iterations=self.quick_rsk_iterations if quick else self.rsk_iterations,
        )


def _grid() -> Tuple[ServiceBench, ...]:
    return (
        # Seed sweep on the 2-core platform: one config object, many runs —
        # the cheapest grid that still exercises shard dispatch, so the
        # protocol/scheduler overhead dominates and is what gets measured.
        ServiceBench(
            name="small/serve-seed-sweep",
            preset="small",
            seeds=(2015, 2016, 2017),
            quick_seeds=(2015, 2016),
        ),
        # Arbiter pair on the paper's default platform: two distinct
        # configs in the frontier, heavier per-run cost, fewer clients.
        ServiceBench(
            name="ref/serve-arbiter-pair",
            preset="ref",
            arbiters=("round_robin", "fifo"),
            workloads=2,
            quick_workloads=2,
            iterations=6,
            quick_iterations=4,
            rsk_iterations=12,
            quick_rsk_iterations=8,
            clients=2,
            submissions=4,
            quick_submissions=3,
        ),
    )


#: The service-throughput workload grid.
SERVICE_WORKLOADS: Tuple[ServiceBench, ...] = _grid()


class _DaemonHandle:
    """An in-process daemon on a private Unix socket, started/stopped
    around one measurement phase."""

    def __init__(self, store_dir: Path, data_dir: Path, socket_path: Path) -> None:
        self.address = ServiceAddress(kind="unix", path=str(socket_path))
        # Keep the daemon's operational log out of the bench report; it is
        # still in memory should a phase raise.
        self.log = io.StringIO()
        self.daemon = CampaignDaemon(
            store_dir=store_dir, data_dir=data_dir, jobs=1, log=self.log
        )
        self._thread = threading.Thread(
            target=self.daemon.serve, args=(self.address,), daemon=True
        )

    def start(self) -> ServiceClient:
        self._thread.start()
        client = ServiceClient(self.address)
        client.wait_for_daemon()
        return client

    def stop(self) -> None:
        ServiceClient(self.address).shutdown()
        self._thread.join(timeout=_WAIT_TIMEOUT)
        if self._thread.is_alive():
            raise SimulationError("serve daemon failed to drain within the bench timeout")


def _submit_and_wait(client: ServiceClient, spec: CampaignSpec) -> Dict[str, object]:
    submitted = client.submit(spec)
    # A tight poll keeps the measured wall time about the daemon, not the
    # client's status-poll quantum (warm jobs finish in milliseconds).
    return client.wait(str(submitted["job_id"]), timeout=_WAIT_TIMEOUT, interval=0.01)


def _check_warm(name: str, job: Dict[str, object], unique_runs: int) -> None:
    stats = job.get("stats")
    assert isinstance(stats, dict)
    if stats["simulated"] != 0:
        raise SimulationError(
            f"{name}: warm submission {job.get('job_id')} simulated "
            f"{stats['simulated']} run(s); the daemon failed to resolve an "
            "already-simulated campaign from the shared store"
        )
    if stats["cached"] != unique_runs:
        raise SimulationError(
            f"{name}: warm submission {job.get('job_id')} resolved "
            f"{stats['cached']} of {unique_runs} unique runs from the store"
        )


def time_service(bench: ServiceBench, quick: bool, repeats: int) -> Dict[str, object]:
    """Measure one service bench: cold, warm multi-client and submission phases.

    Cold attempts each get a fresh daemon over a fresh store (best wall
    time kept); the warm phases share one daemon over the store the last
    cold attempt populated.
    """
    spec = bench.spec(quick)
    runs = len(spec.expand())
    submissions = bench.quick_submissions if quick else bench.submissions
    entry: Dict[str, object] = {
        "name": bench.name,
        "preset": bench.preset,
        "runs": runs,
        "clients": bench.clients,
    }
    with tempfile.TemporaryDirectory(prefix="repro-bench-serve-") as tmp:
        base = Path(tmp)
        cold_seconds: Optional[float] = None
        unique_runs: Optional[int] = None
        reference: Optional[List[object]] = None
        warm_store: Optional[Path] = None
        for attempt in range(max(1, repeats)):
            store_dir = base / f"cold-{attempt}" / "store"
            handle = _DaemonHandle(
                store_dir, base / f"cold-{attempt}" / "data", base / f"cold-{attempt}.sock"
            )
            client = handle.start()
            try:
                started = time.perf_counter()
                job = _submit_and_wait(client, spec)
                elapsed = time.perf_counter() - started
                stats = job.get("stats")
                assert isinstance(stats, dict)
                if stats["simulated"] != stats["unique_runs"]:
                    raise SimulationError(
                        f"{bench.name}: cold submission hit a fresh store "
                        f"({stats['simulated']} simulated of "
                        f"{stats['unique_runs']} unique runs)"
                    )
                if reference is None:
                    unique_runs = int(stats["unique_runs"])
                    results = client.results(str(job["job_id"]))
                    records = results["records"]
                    assert isinstance(records, list)
                    reference = records
            finally:
                handle.stop()
            if cold_seconds is None or elapsed < cold_seconds:
                cold_seconds = elapsed
            warm_store = store_dir
        assert cold_seconds is not None and unique_runs is not None
        assert reference is not None and warm_store is not None
        entry["unique_runs"] = unique_runs

        handle = _DaemonHandle(warm_store, base / "warm-data", base / "warm.sock")
        warm_client = handle.start()
        try:
            multi_seconds: Optional[float] = None
            for attempt in range(max(1, repeats)):
                jobs: List[Optional[Dict[str, object]]] = [None] * bench.clients
                errors: List[BaseException] = []

                def _one_client(slot: int) -> None:
                    try:
                        # Each thread gets its own client — fresh connection
                        # per command, exactly like separate terminals.
                        jobs[slot] = _submit_and_wait(ServiceClient(handle.address), spec)
                    except BaseException as exc:  # noqa: BLE001 - re-raised below
                        errors.append(exc)

                threads = [
                    threading.Thread(target=_one_client, args=(slot,))
                    for slot in range(bench.clients)
                ]
                started = time.perf_counter()
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                elapsed = time.perf_counter() - started
                if errors:
                    raise errors[0]
                for warm_job in jobs:
                    assert warm_job is not None
                    _check_warm(bench.name, warm_job, unique_runs)
                if attempt == 0:
                    first = jobs[0]
                    assert first is not None
                    results = warm_client.results(str(first["job_id"]))
                    if results["records"] != reference:
                        raise SimulationError(
                            f"{bench.name}: warm records differ from the cold reference"
                        )
                if multi_seconds is None or elapsed < multi_seconds:
                    multi_seconds = elapsed
            assert multi_seconds is not None

            best_submit: Optional[float] = None
            for _ in range(max(1, repeats)):
                started = time.perf_counter()
                for _ in range(submissions):
                    job = _submit_and_wait(warm_client, spec)
                    _check_warm(bench.name, job, unique_runs)
                elapsed = time.perf_counter() - started
                if best_submit is None or elapsed < best_submit:
                    best_submit = elapsed
            assert best_submit is not None
        finally:
            handle.stop()

    cold_rps = runs / cold_seconds if cold_seconds else 0.0
    warm_rps = (bench.clients * runs) / multi_seconds if multi_seconds else 0.0
    entry["cold"] = {"seconds": cold_seconds, "runs_per_sec": cold_rps}
    entry["warm_multi"] = {"seconds": multi_seconds, "runs_per_sec": warm_rps}
    entry["multi_client_warm_speedup"] = warm_rps / cold_rps if cold_rps else 0.0
    entry["submissions"] = {
        "count": submissions,
        "seconds": best_submit,
        "per_sec": submissions / best_submit if best_submit else 0.0,
    }
    return entry


def run_service_benchmarks(
    services: Sequence[ServiceBench] = SERVICE_WORKLOADS,
    quick: bool = False,
    repeats: int = 2,
) -> List[Dict[str, object]]:
    """Time every service bench and return the ``services`` payload section."""
    return [time_service(bench, quick, repeats) for bench in services]
