"""Architecture configuration objects and the paper's reference presets.

The paper evaluates two setups of an NGMP-like (Cobham Gaisler LEON4) 4-core
multicore (Section 5.1):

* ``ref`` — IL1/DL1 latency of 1 cycle, 16KB 4-way 32B-line L1 caches,
  a shared round-robin bus to a 256KB 4-way L2 partitioned one way per core,
  a 9-cycle bus occupancy per L2 load hit (6-cycle L2 hit latency plus
  3 cycles of transfer and arbitration handover), and a DDR2-667-like memory
  behind a memory controller.  With four cores this gives
  ``ubd = (4 - 1) * 9 = 27`` cycles.
* ``var`` — identical except the L1 latency is 4 cycles, which raises the
  injection time of every bus-accessing instruction from 1 to 4 cycles.

Configurations are plain frozen dataclasses validated at construction time so
that an invalid geometry fails loudly instead of producing silently wrong
timing numbers.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, replace
from typing import Dict, Mapping, Tuple

from .errors import ConfigurationError
from .registry import registry_backed_names


def _require(condition: bool, message: str) -> None:
    """Raise :class:`ConfigurationError` with ``message`` unless ``condition``."""
    if not condition:
        raise ConfigurationError(message)


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


#: Arbitration policies whose worst case fair-round reasoning bounds: every
#: competitor is served at most once before the victim.  Fixed priority can
#: starve a port unboundedly and TDMA waits on the slot schedule rather than
#: the competitor count, so Equation 1 (and the per-resource terms built on
#: the same argument) cover only these two.
FAIR_ARBITRATION_POLICIES = ("round_robin", "fifo")

#: Arbitration policies shipped with the simulator.  The authoritative set
#: is the registry in :mod:`repro.sim.arbiter` (policies self-register with
#: the ``@register_arbiter`` decorator); this tuple lists the built-ins for
#: CLI choices and documentation, and a tier-1 test pins the two in sync.
ARBITRATION_POLICIES = ("round_robin", "fifo", "fixed_priority", "tdma")


#: Names accepted by ``BusConfig.arbitration``/``TopologyConfig``.  Delegates
#: to the arbiter registry (lazily, through
#: :func:`repro.registry.registry_backed_names`, to keep ``repro.config`` the
#: bottom layer) so a policy registered at runtime is immediately
#: constructible through a configuration; falls back to the built-in tuple
#: while :mod:`repro.sim.arbiter` is still initialising.
_known_arbitrations = registry_backed_names(
    "repro.sim.arbiter", "registered_arbiters", ARBITRATION_POLICIES
)


#: Simulation engines shipped with the simulator.  The authoritative set is
#: the registry in :mod:`repro.sim.scheduler` (engines self-register with
#: the ``@register_engine`` decorator); this tuple lists the built-ins for
#: documentation, and a tier-1 test pins the two in sync.  ``"stepped"`` is
#: the cycle-by-cycle oracle loop; ``"event"`` is the event-driven fast
#: path that skips the clock to the next component horizon.  Both are
#: cycle-exact: they produce identical traces, PMC counts and delay
#: histograms, so the engine choice is a pure speed knob and never
#: participates in result digests.  ``"codegen"`` compiles a loop
#: specialised to the configured topology chain and arbiter set
#: (:mod:`repro.sim.codegen`) and falls back to ``"event"`` for registered
#: entries the generator does not know.  ``"replay"`` captures each core's
#: demand-request trace once and streams it through the live interconnect
#: on every later run (:mod:`repro.sim.trace`), falling back per core on
#: trace-unsafe programs (stores, timeouts, aperiodic contenders).
ENGINES = ("stepped", "event", "codegen", "replay")


#: Names accepted by ``ArchConfig.engine`` (see :data:`_known_arbitrations`).
_known_engines = registry_backed_names("repro.sim.scheduler", "registered_engines", ENGINES)


#: Shared-resource topologies shipped with the simulator.  Like
#: :data:`ARBITRATION_POLICIES`, the authoritative set is the registry in
#: :mod:`repro.sim.topology`; this tuple lists the built-ins and a tier-1
#: test pins the two in sync.  ``bus_only`` is the paper's platform — one
#: arbitrated bus in front of a FIFO memory controller; ``bus_bank_queues``
#: chains the bus into per-DRAM-bank arbitrated memory-controller queues;
#: ``split_bus`` splits the bus NGMP-style into an arbitrated request
#: channel (feeding the bank queues) and a separate arbitrated response
#: channel returning the data.
TOPOLOGIES = ("bus_only", "bus_bank_queues", "split_bus")

#: Names accepted by ``TopologyConfig.name`` (see :data:`_known_arbitrations`).
_known_topologies = registry_backed_names("repro.sim.topology", "registered_topologies", TOPOLOGIES)


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and policy of one cache level.

    Attributes:
        size_bytes: total capacity in bytes.
        ways: associativity (1 means direct mapped).
        line_size: cache line size in bytes.
        replacement: ``"lru"`` or ``"fifo"`` (the paper assumes LRU; FIFO is
            supported because the rsk construction explicitly covers both).
        write_policy: ``"write_through"`` or ``"write_back"``; the paper's
            DL1 is write-through.
        write_allocate: whether a store miss allocates a line.
        hit_latency: access latency in cycles (1 for ``ref``, 4 for ``var``).
    """

    size_bytes: int
    ways: int
    line_size: int = 32
    replacement: str = "lru"
    write_policy: str = "write_through"
    write_allocate: bool = False
    hit_latency: int = 1

    def __post_init__(self) -> None:
        _require(self.size_bytes > 0, "cache size must be positive")
        _require(self.ways > 0, "cache associativity must be positive")
        _require(_is_power_of_two(self.line_size), "line size must be a power of two")
        _require(
            self.size_bytes % (self.ways * self.line_size) == 0,
            "cache size must be a multiple of ways * line_size",
        )
        _require(
            _is_power_of_two(self.num_sets),
            "number of sets must be a power of two for simple index extraction",
        )
        _require(
            self.replacement in ("lru", "fifo"),
            f"unsupported replacement policy: {self.replacement!r}",
        )
        _require(
            self.write_policy in ("write_through", "write_back"),
            f"unsupported write policy: {self.write_policy!r}",
        )
        _require(self.hit_latency >= 1, "hit latency must be at least one cycle")

    @property
    def num_sets(self) -> int:
        """Number of sets in the cache."""
        return self.size_bytes // (self.ways * self.line_size)

    @property
    def way_size_bytes(self) -> int:
        """Capacity of a single way in bytes."""
        return self.size_bytes // self.ways

    @property
    def same_set_stride(self) -> int:
        """Address stride (bytes) that maps consecutive lines to the same set."""
        return self.num_sets * self.line_size


@dataclass(frozen=True)
class BusConfig:
    """Timing and arbitration of the shared processor-to-L2 bus.

    Attributes:
        arbitration: ``"round_robin"`` (the paper's policy), ``"fifo"``,
            ``"fixed_priority"`` or ``"tdma"``.
        transfer_latency: cycles of bus transfer plus arbitration handover
            charged to every granted transaction (3 in the paper's setup).
        tdma_slot: slot length in cycles, only used by the TDMA arbiter.
    """

    arbitration: str = "round_robin"
    transfer_latency: int = 3
    tdma_slot: int = 9

    def __post_init__(self) -> None:
        _require(
            self.arbitration in _known_arbitrations(),
            f"unsupported arbitration policy: {self.arbitration!r}",
        )
        _require(self.transfer_latency >= 1, "bus transfer latency must be >= 1")
        _require(self.tdma_slot >= 1, "TDMA slot must be >= 1 cycle")


@dataclass(frozen=True)
class TopologyConfig:
    """How the platform's shared resources are chained (the contention topology).

    The paper's platform is a single contention point: every request
    arbitrates once, for the bus (``bus_only``).  ``bus_bank_queues`` chains
    a second arbitrated stage behind it — per-DRAM-bank memory-controller
    queues, each with its *own* arbitration policy — so a request can
    contend twice: once for the bus, once for its bank.  ``split_bus``
    additionally splits the bus into its two transaction phases, NGMP
    split-transaction style: an arbitrated *request channel* in front of the
    bank queues and a separate arbitrated *response channel* carrying the
    data back, so an L2 miss can contend three times.  Topology builders are
    registered in :mod:`repro.sim.topology`; this configuration only names
    one and parameterises its memory-side and response-side arbitration.

    Attributes:
        name: registered topology name (``bus_only``, ``bus_bank_queues`` or
            ``split_bus``).
        mem_arbitration: arbitration policy of each per-bank memory queue
            (any registered arbiter; the classic stack is a round-robin bus
            over FIFO bank queues).  Ignored by ``bus_only``.
        mem_tdma_slot: slot length in cycles when ``mem_arbitration`` is
            ``tdma`` (one slot per core, like the bus TDMA arbiter).
        response_arbitration: arbitration policy of the response channel
            (one port per core).  Only used by ``split_bus``; the default
            FIFO serves responses in data-ready order, which is how a
            single shared return path behaves.
        response_tdma_slot: slot length in cycles when
            ``response_arbitration`` is ``tdma``.
    """

    name: str = "bus_only"
    mem_arbitration: str = "fifo"
    mem_tdma_slot: int = 40
    response_arbitration: str = "fifo"
    response_tdma_slot: int = 9

    def __post_init__(self) -> None:
        _require(
            self.name in _known_topologies(),
            f"unsupported topology: {self.name!r}",
        )
        _require(
            self.mem_arbitration in _known_arbitrations(),
            f"unsupported memory-queue arbitration policy: {self.mem_arbitration!r}",
        )
        _require(self.mem_tdma_slot >= 1, "memory TDMA slot must be >= 1 cycle")
        _require(
            self.response_arbitration in _known_arbitrations(),
            f"unsupported response-channel arbitration policy: "
            f"{self.response_arbitration!r}",
        )
        _require(self.response_tdma_slot >= 1, "response TDMA slot must be >= 1 cycle")

    @property
    def has_memory_queues(self) -> bool:
        """True when the memory controller is an arbitrated contention point."""
        return self.name != "bus_only"

    @property
    def has_response_channel(self) -> bool:
        """True when responses return on their own arbitrated channel."""
        return self.name == "split_bus"


@dataclass(frozen=True)
class L2Config:
    """Shared L2 cache configuration (way-partitioned among cores)."""

    cache: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=256 * 1024, ways=4, line_size=32, hit_latency=6
        )
    )
    partitioned: bool = True

    def __post_init__(self) -> None:
        _require(self.cache.ways >= 1, "L2 must have at least one way")

    @property
    def hit_latency(self) -> int:
        """L2 hit latency in cycles (6 in the paper's setup)."""
        return self.cache.hit_latency


@dataclass(frozen=True)
class DramConfig:
    """Simplified DDR2-667-style DRAM timing, expressed in core cycles.

    This is the substitute for DRAMsim2: a banked open-page model with
    activate / CAS / precharge latencies and a burst transfer time.  The
    defaults approximate a 2GB one-rank DDR2-667 with 4 banks and a 64-bit
    data bus delivering one 32-byte line per access, seen from a 200MHz core.
    """

    num_banks: int = 4
    row_size_bytes: int = 4096
    t_rcd: int = 9
    t_cas: int = 9
    t_rp: int = 9
    t_burst: int = 4
    controller_overhead: int = 2

    def __post_init__(self) -> None:
        _require(_is_power_of_two(self.num_banks), "number of banks must be a power of two")
        _require(_is_power_of_two(self.row_size_bytes), "row size must be a power of two")
        for name in ("t_rcd", "t_cas", "t_rp", "t_burst"):
            _require(getattr(self, name) >= 1, f"{name} must be >= 1")
        _require(self.controller_overhead >= 0, "controller overhead must be >= 0")

    @property
    def row_hit_latency(self) -> int:
        """Latency of an access that hits the open row."""
        return self.t_cas + self.t_burst + self.controller_overhead

    @property
    def row_miss_latency(self) -> int:
        """Latency of an access that must precharge and activate a new row."""
        return self.t_rp + self.t_rcd + self.t_cas + self.t_burst + self.controller_overhead


@dataclass(frozen=True)
class StoreBufferConfig:
    """Per-core store buffer configuration."""

    entries: int = 8

    def __post_init__(self) -> None:
        _require(self.entries >= 1, "store buffer needs at least one entry")


@dataclass(frozen=True)
class ArchConfig:
    """Complete description of one simulated multicore platform.

    The two presets used throughout the paper are available through
    :func:`reference_config` (``ref``) and :func:`variant_config` (``var``).
    """

    name: str = "ref"
    num_cores: int = 4
    freq_mhz: int = 200
    il1: CacheConfig = field(
        default_factory=lambda: CacheConfig(size_bytes=16 * 1024, ways=4, hit_latency=1)
    )
    dl1: CacheConfig = field(
        default_factory=lambda: CacheConfig(size_bytes=16 * 1024, ways=4, hit_latency=1)
    )
    l2: L2Config = field(default_factory=L2Config)
    bus: BusConfig = field(default_factory=BusConfig)
    dram: DramConfig = field(default_factory=DramConfig)
    store_buffer: StoreBufferConfig = field(default_factory=StoreBufferConfig)
    topology: TopologyConfig = field(default_factory=TopologyConfig)
    nop_latency: int = 1
    alu_latency: int = 1
    engine: str = "event"

    def __post_init__(self) -> None:
        _require(
            self.engine in _known_engines(),
            f"unsupported simulation engine: {self.engine!r}",
        )
        _require(self.num_cores >= 1, "need at least one core")
        _require(self.freq_mhz > 0, "frequency must be positive")
        _require(self.nop_latency >= 1, "nop latency must be >= 1")
        _require(self.alu_latency >= 1, "ALU latency must be >= 1")
        _require(
            self.il1.line_size == self.dl1.line_size == self.l2.cache.line_size,
            "all cache levels must share the same line size",
        )
        if self.l2.partitioned:
            _require(
                self.l2.cache.ways >= self.num_cores,
                "way-partitioned L2 needs at least one way per core",
            )

    # ------------------------------------------------------------------ #
    # Derived timing quantities used across the library.
    # ------------------------------------------------------------------ #
    @property
    def line_size(self) -> int:
        """Cache line size shared by all levels."""
        return self.dl1.line_size

    @property
    def bus_service_l2_hit(self) -> int:
        """Bus occupancy of one L2 load hit (``lbus`` in the paper)."""
        return self.bus.transfer_latency + self.l2.hit_latency

    @property
    def bus_service_store(self) -> int:
        """Bus occupancy of one write-through store reaching the L2."""
        return self.bus.transfer_latency + self.l2.hit_latency

    @property
    def bus_service_miss_request(self) -> int:
        """Bus occupancy of the request phase of an L2 load miss."""
        return self.bus.transfer_latency + self.l2.hit_latency

    @property
    def bus_service_response(self) -> int:
        """Bus occupancy of the response transfer of an L2 load miss."""
        return self.bus.transfer_latency

    @property
    def ubd(self) -> int:
        """Analytical upper-bound delay ``(Nc - 1) * lbus`` (Equation 1).

        This is the paper's *single-resource* bound: the bus term alone,
        valid for the preloaded-L2 experiments where no request travels past
        the L2.  Multi-resource topologies decompose into per-resource terms
        via :attr:`ubd_terms` / :attr:`end_to_end_ubd`.
        """
        return (self.num_cores - 1) * self.bus_service_l2_hit

    @property
    def has_composable_bounds(self) -> bool:
        """True when :attr:`ubd_terms` constitutes a valid end-to-end bound.

        Every term relies on fair-round reasoning — each competitor is
        served at most once before the victim — so *every* arbitrated stage
        of the topology must run a policy in
        :data:`FAIR_ARBITRATION_POLICIES`: the bus (exactly Equation 1's
        applicability condition), the bank queues on chained topologies, and
        the response channel on ``split_bus``.  A fixed-priority stage can
        starve a port unboundedly and a TDMA stage waits on its slot
        schedule, so for those the decomposition is undefined and consumers
        must report "no bound" instead (mirroring ``analytical_ubd: null``
        in campaign summaries).
        """
        if self.bus.arbitration not in FAIR_ARBITRATION_POLICIES:
            return False
        if (
            self.topology.has_memory_queues
            and self.topology.mem_arbitration not in FAIR_ARBITRATION_POLICIES
        ):
            return False
        if (
            self.topology.has_response_channel
            and self.topology.response_arbitration not in FAIR_ARBITRATION_POLICIES
        ):
            return False
        return True

    @property
    def ubd_terms(self) -> Dict[str, int]:
        """Per-resource worst-case delay terms of one end-to-end request.

        Each entry bounds the contention delay a single request can pick up
        at one shared resource of the configured topology; the terms sum to
        :attr:`end_to_end_ubd`.  For ``bus_only`` the dictionary is just the
        paper's Equation 1 bus term.  With arbitrated per-bank memory queues
        three more effects appear, each bounded separately (assuming at most
        one outstanding demand request per core, which holds for the
        load/ifetch traffic the methodology measures).  Only defined when
        :attr:`has_composable_bounds` holds; raises
        :class:`~repro.errors.ConfigurationError` otherwise, because
        returning a number that contention can exceed would defeat the
        whole bounding exercise:

        * ``bus`` — the request-phase bus wait: one transaction per other
          port per round-robin round, i.e. ``(Nc - 1) * lbus`` for the other
          cores plus — on ``bus_bank_queues``, whose single bus also carries
          the data returns — one response occupancy for the response port.
        * ``memory`` — the bank-queue wait: up to ``Nc - 1`` competing
          accesses each occupying the bank for at most a row-miss service,
          plus the victim's own row hit turning into a row conflict.
        * ``bus_response`` — the response-phase wait.  On ``bus_bank_queues``
          the response shares the request bus, so the term is an *analytical
          envelope*: behind ``Nc - 1`` other responses, each paying its own
          occupancy plus a full round of request-port grants.  On
          ``split_bus`` the response channel is its own arbitrated resource
          with one port per core and at most one outstanding response per
          port, so the same fair-round argument that gives Equation 1 yields
          the per-resource quantity ``(Nc - 1) * bus_service_response`` —
          much tighter, and directly measurable from the channel's own
          grant-wait trace.
        """
        _require(
            self.has_composable_bounds,
            f"per-resource bounds are undefined for a {self.bus.arbitration!r} "
            f"bus over {self.topology.mem_arbitration!r} bank queues "
            f"(response channel {self.topology.response_arbitration!r}); "
            f"fair-round reasoning covers {list(FAIR_ARBITRATION_POLICIES)} "
            f"on every stage",
        )
        terms = {"bus": (self.num_cores - 1) * self.bus_service_l2_hit}
        if self.topology.has_memory_queues:
            others = self.num_cores - 1
            row_hit = self.dram.row_hit_latency
            row_miss = self.dram.row_miss_latency
            terms["memory"] = others * row_miss + (row_miss - row_hit)
            if self.topology.has_response_channel:
                terms["bus_response"] = others * self.bus_service_response
            else:
                terms["bus"] += self.bus_service_response
                terms["bus_response"] = others * (
                    self.bus_service_response + others * self.bus_service_l2_hit
                )
        return terms

    @property
    def end_to_end_ubd(self) -> int:
        """Sum of :attr:`ubd_terms`: the end-to-end per-request delay bound."""
        return sum(self.ubd_terms.values())

    @property
    def expected_rsk_injection_time(self) -> int:
        """Injection time of back-to-back rsk loads (``delta_rsk``)."""
        return self.dl1.hit_latency

    def l2_ways_for_core(self, core_id: int) -> Tuple[int, ...]:
        """Return the L2 way indices usable by ``core_id``.

        With partitioning enabled (the NGMP configuration), core ``i`` owns
        way ``i``; extra ways beyond ``num_cores`` are distributed round
        robin.  Without partitioning every core may use every way.
        """
        _require(0 <= core_id < self.num_cores, f"invalid core id {core_id}")
        total_ways = self.l2.cache.ways
        if not self.l2.partitioned:
            return tuple(range(total_ways))
        return tuple(w for w in range(total_ways) if w % self.num_cores == core_id)

    def with_overrides(self, **kwargs) -> "ArchConfig":
        """Return a copy of this configuration with selected fields replaced."""
        return replace(self, **kwargs)

    def with_topology_name(self, name: str) -> "ArchConfig":
        """Return a copy running topology ``name`` with this platform's
        memory-side arbitration parameters intact.

        The single override path shared by the CLI ``--topology`` flags, the
        campaign topology axis and the bench harness: swapping only the
        *name* means a preset's non-default bank-queue arbitration is never
        silently reset to the ``TopologyConfig`` defaults.
        """
        return replace(self, topology=replace(self.topology, name=name))

    def to_dict(self) -> Dict[str, object]:
        """Return a JSON-serialisable dictionary of every configuration field.

        The inverse of :func:`config_from_dict`; used by the campaign engine
        to ship configurations across process boundaries, embed them in JSON
        artifacts and hash them for the content-addressed result cache.
        """
        return asdict(self)

    def digest(self) -> str:
        """Stable SHA-256 content hash of this configuration."""
        return canonical_digest(self.to_dict())

    def describe(self) -> Dict[str, object]:
        """Return a flat dictionary summarising the platform (for reports)."""
        return {
            "name": self.name,
            "cores": self.num_cores,
            "freq_mhz": self.freq_mhz,
            "il1": f"{self.il1.size_bytes // 1024}KB/{self.il1.ways}w/{self.il1.line_size}B",
            "dl1": f"{self.dl1.size_bytes // 1024}KB/{self.dl1.ways}w/{self.dl1.line_size}B",
            "dl1_latency": self.dl1.hit_latency,
            "l2": f"{self.l2.cache.size_bytes // 1024}KB/{self.l2.cache.ways}w",
            "l2_latency": self.l2.hit_latency,
            "engine": self.engine,
            "topology": self.topology.name,
            "mem_arbitration": (
                self.topology.mem_arbitration
                if self.topology.has_memory_queues
                else None
            ),
            "response_arbitration": (
                self.topology.response_arbitration
                if self.topology.has_response_channel
                else None
            ),
            "bus_arbitration": self.bus.arbitration,
            "bus_transfer": self.bus.transfer_latency,
            "lbus": self.bus_service_l2_hit,
            "ubd": self.ubd,
            # Per-resource analytical decomposition, None where the
            # fair-round reasoning does not apply (mirrors the campaign
            # summaries' analytical_ubd: null convention).
            "ubd_terms": dict(self.ubd_terms) if self.has_composable_bounds else None,
            "end_to_end_ubd": (self.end_to_end_ubd if self.has_composable_bounds else None),
            "store_buffer_entries": self.store_buffer.entries,
        }


def reference_config(**overrides) -> ArchConfig:
    """The paper's ``ref`` architecture: 4-core NGMP-like, L1 latency 1.

    Keyword overrides are applied on top of the preset, e.g.
    ``reference_config(num_cores=8)``.
    """
    cfg = ArchConfig(name="ref")
    return cfg.with_overrides(**overrides) if overrides else cfg


def variant_config(**overrides) -> ArchConfig:
    """The paper's ``var`` architecture: identical to ``ref`` but L1 latency 4."""
    cfg = ArchConfig(
        name="var",
        il1=CacheConfig(size_bytes=16 * 1024, ways=4, hit_latency=4),
        dl1=CacheConfig(size_bytes=16 * 1024, ways=4, hit_latency=4),
    )
    return cfg.with_overrides(**overrides) if overrides else cfg


def small_config(**overrides) -> ArchConfig:
    """A deliberately tiny platform used by fast unit tests.

    Three cores, small caches and a short bus occupancy keep individual test
    simulations in the microsecond range while exercising every code path.
    Three cores (not two) are used so that ``Nc - 1`` rsk contenders can
    saturate the bus, which the methodology requires (Section 4.3): with a
    single contender whose injection time is non-zero the bus necessarily
    idles between its requests.
    """
    cfg = ArchConfig(
        name="small",
        num_cores=3,
        il1=CacheConfig(size_bytes=1024, ways=2, hit_latency=1),
        dl1=CacheConfig(size_bytes=1024, ways=2, hit_latency=1),
        l2=L2Config(cache=CacheConfig(size_bytes=8 * 1024, ways=4, line_size=32, hit_latency=2)),
        bus=BusConfig(transfer_latency=1),
    )
    return cfg.with_overrides(**overrides) if overrides else cfg


def multi_resource_config(**overrides) -> ArchConfig:
    """The ``ref`` platform with a chained contention topology.

    Identical timing parameters to :func:`reference_config`, but the memory
    controller becomes a second first-class contention point: the
    round-robin bus feeds per-DRAM-bank FIFO queues (topology
    ``bus_bank_queues``), so an L2 miss arbitrates twice — once for the bus
    and once for its bank.  The end-to-end request bound decomposes into
    per-resource terms (:attr:`ArchConfig.ubd_terms`).
    """
    cfg = ArchConfig(
        name="multi_resource",
        topology=TopologyConfig(name="bus_bank_queues", mem_arbitration="fifo"),
    )
    return cfg.with_overrides(**overrides) if overrides else cfg


def split_bus_config(**overrides) -> ArchConfig:
    """The ``ref`` platform with an NGMP-style split-transaction bus.

    Identical timing parameters to :func:`reference_config`, but the bus is
    modelled as its two transaction phases (topology ``split_bus``): a
    round-robin *request channel* feeding per-DRAM-bank FIFO queues and a
    FIFO *response channel* returning the data.  An L2 miss contends three
    times — request channel, bank queue, response channel — and the
    ``bus_response`` entry of :attr:`ArchConfig.ubd_terms` becomes a
    measured per-resource quantity instead of the shared-bus envelope.
    """
    cfg = ArchConfig(
        name="split_bus",
        topology=TopologyConfig(
            name="split_bus", mem_arbitration="fifo", response_arbitration="fifo"
        ),
    )
    return cfg.with_overrides(**overrides) if overrides else cfg


PRESETS = {
    "ref": reference_config,
    "var": variant_config,
    "small": small_config,
    "multi_resource": multi_resource_config,
    "split_bus": split_bus_config,
}


def get_preset(name: str, **overrides) -> ArchConfig:
    """Look up a preset configuration by name (see :data:`PRESETS`)."""
    try:
        factory = PRESETS[name]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown preset {name!r}; available: {sorted(PRESETS)}"
        ) from exc
    return factory(**overrides)


# ---------------------------------------------------------------------------- #
# Serialisation and content hashing (campaign engine support).
# ---------------------------------------------------------------------------- #
def canonical_digest(payload: object) -> str:
    """SHA-256 hex digest of ``payload`` rendered as canonical JSON.

    Canonical means sorted keys and no insignificant whitespace, so two
    logically equal payloads always hash identically regardless of dict
    construction order or the process that produced them.
    """
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


def config_from_dict(data: Mapping[str, object]) -> ArchConfig:
    """Rebuild an :class:`ArchConfig` from :meth:`ArchConfig.to_dict` output.

    Validation runs again on construction, so a tampered or stale dictionary
    fails loudly instead of producing silently wrong timing numbers.
    """
    try:
        fields = dict(data)
        l2_data = dict(fields["l2"])
        fields["il1"] = CacheConfig(**fields["il1"])
        fields["dl1"] = CacheConfig(**fields["dl1"])
        fields["l2"] = L2Config(
            cache=CacheConfig(**l2_data["cache"]), partitioned=l2_data["partitioned"]
        )
        fields["bus"] = BusConfig(**fields["bus"])
        fields["dram"] = DramConfig(**fields["dram"])
        fields["store_buffer"] = StoreBufferConfig(**fields["store_buffer"])
        # Dictionaries predating the topology field describe the paper's
        # single-bus platform; default rather than reject them.
        if "topology" in fields:
            fields["topology"] = TopologyConfig(**fields["topology"])
        return ArchConfig(**fields)
    except (KeyError, TypeError) as exc:
        raise ConfigurationError(f"malformed configuration dictionary: {exc}") from exc
