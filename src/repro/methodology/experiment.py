"""Isolation and contended experiment running.

The measurement primitives every estimator in this package is built from:

* run the software component under analysis (scua) *alone* on the platform
  and record its execution time and bus request count;
* run the same scua against a set of contender kernels pinned to the other
  cores and record its execution time, the bus utilisation and (optionally)
  the request-level trace.

The difference of the two execution times is the contention penalty
``det``/``dbus`` that both the naive estimator and the rsk-nop methodology
work with.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..config import ArchConfig
from ..errors import MethodologyError
from ..kernels.rsk import build_rsk
from ..sim.isa import Program
from ..sim.system import System, SystemResult
from ..sim.trace import TraceRecorder


@dataclass(frozen=True)
class IsolationMeasurement:
    """Outcome of running the scua alone on the platform."""

    execution_time: int
    bus_requests: int
    instructions: int
    result: SystemResult

    @property
    def requests(self) -> int:
        """Bus requests issued by the scua (``nr`` in the paper)."""
        return self.bus_requests

    @property
    def memory_requests(self) -> int:
        """Requests that missed the L2 and reached the memory stage
        (``nr_mem``: the subset paying the memory-stage terms when a
        per-resource bound is composed)."""
        return self.result.pmc.dram_accesses

    def as_record(self) -> Dict[str, int]:
        """JSON-serialisable summary (the shape campaign artifacts embed)."""
        return {
            "execution_time": self.execution_time,
            "bus_requests": self.bus_requests,
            "memory_requests": self.memory_requests,
            "instructions": self.instructions,
        }


@dataclass(frozen=True)
class ContendedMeasurement:
    """Outcome of running the scua against contender kernels."""

    execution_time: int
    bus_requests: int
    bus_utilisation: float
    result: SystemResult
    trace: Optional[TraceRecorder] = None

    def slowdown_versus(self, isolation: IsolationMeasurement) -> int:
        """Execution-time increase over the isolation run (``det``/``dbus``)."""
        return self.execution_time - isolation.execution_time

    def as_record(self) -> Dict[str, object]:
        """JSON-serialisable summary (the shape campaign artifacts embed)."""
        return {
            "execution_time": self.execution_time,
            "bus_requests": self.bus_requests,
            "bus_utilisation": self.bus_utilisation,
        }


def build_contender_set(
    config: ArchConfig,
    scua_core: int,
    kind: str = "load",
    loop_control_overhead: int = 0,
) -> Dict[int, Program]:
    """Build one infinite rsk per core other than ``scua_core``.

    These are the paper's contender kernels: they put the highest possible
    load on the bus and never terminate before the scua.
    """
    if not 0 <= scua_core < config.num_cores:
        raise MethodologyError(f"scua core {scua_core} does not exist")
    return {
        core: build_rsk(
            config,
            core,
            kind=kind,
            iterations=None,
            loop_control_overhead=loop_control_overhead,
        )
        for core in range(config.num_cores)
        if core != scua_core
    }


class ExperimentRunner:
    """Runs isolation / contended measurements on one platform configuration.

    Args:
        config: the platform to measure.
        preload_l2: warm the L2 with each program's footprint before running
            (the default; removes cold-miss noise, mirroring the warmed-up
            steady state the paper measures).
        preload_il1: warm the instruction caches likewise.
        max_cycles: safety bound passed to every simulation.
    """

    def __init__(
        self,
        config: ArchConfig,
        preload_l2: bool = True,
        preload_il1: bool = True,
        max_cycles: int = 200_000_000,
    ) -> None:
        self.config = config
        self.preload_l2 = preload_l2
        self.preload_il1 = preload_il1
        self.max_cycles = max_cycles

    # ------------------------------------------------------------------ #
    # Individual runs.
    # ------------------------------------------------------------------ #
    def run_isolation(self, scua: Program, scua_core: int = 0) -> IsolationMeasurement:
        """Run ``scua`` alone and measure its execution time and request count."""
        self._check_scua(scua, scua_core)
        programs: List[Optional[Program]] = [None] * self.config.num_cores
        programs[scua_core] = scua
        system = System(
            self.config,
            programs,
            preload_l2=self.preload_l2,
            preload_il1=self.preload_il1,
        )
        result = system.run(observed_cores=[scua_core], max_cycles=self.max_cycles)
        self._check_finished(result, scua_core, "isolation")
        return IsolationMeasurement(
            execution_time=result.execution_time(scua_core),
            bus_requests=result.pmc.core[scua_core].bus_requests,
            instructions=result.instructions[scua_core],
            result=result,
        )

    def run_contended(
        self,
        scua: Program,
        contenders: Dict[int, Program],
        scua_core: int = 0,
        trace: bool = False,
    ) -> ContendedMeasurement:
        """Run ``scua`` against ``contenders`` (a mapping core -> program)."""
        self._check_scua(scua, scua_core)
        if scua_core in contenders:
            raise MethodologyError(f"core {scua_core} cannot host both the scua and a contender")
        for core in contenders:
            if not 0 <= core < self.config.num_cores:
                raise MethodologyError(f"contender core {core} does not exist")
        programs: List[Optional[Program]] = [None] * self.config.num_cores
        programs[scua_core] = scua
        for core, program in contenders.items():
            programs[core] = program
        system = System(
            self.config,
            programs,
            trace=trace,
            preload_l2=self.preload_l2,
            preload_il1=self.preload_il1,
        )
        result = system.run(observed_cores=[scua_core], max_cycles=self.max_cycles)
        self._check_finished(result, scua_core, "contended")
        return ContendedMeasurement(
            execution_time=result.execution_time(scua_core),
            bus_requests=result.pmc.core[scua_core].bus_requests,
            bus_utilisation=result.pmc.bus_utilisation(),
            result=result,
            trace=result.trace,
        )

    def run_against_rsk(
        self,
        scua: Program,
        scua_core: int = 0,
        kind: str = "load",
        trace: bool = False,
    ) -> ContendedMeasurement:
        """Run ``scua`` against ``Nc - 1`` infinite rsk contenders of type ``kind``."""
        contenders = build_contender_set(self.config, scua_core, kind=kind)
        return self.run_contended(scua, contenders, scua_core=scua_core, trace=trace)

    def run_pair(
        self,
        scua: Program,
        contenders: Dict[int, Program],
        scua_core: int = 0,
        trace: bool = False,
    ) -> Tuple[IsolationMeasurement, ContendedMeasurement]:
        """Measure ``scua`` in isolation and against ``contenders``.

        The pair is the paper's basic experiment: the difference of the two
        execution times is the contention penalty ``det``.  The campaign
        engine uses this for every rsk-style run descriptor.
        """
        isolation = self.run_isolation(scua, scua_core=scua_core)
        contended = self.run_contended(scua, contenders, scua_core=scua_core, trace=trace)
        return isolation, contended

    # ------------------------------------------------------------------ #
    # Internal validation.
    # ------------------------------------------------------------------ #
    def _check_scua(self, scua: Program, scua_core: int) -> None:
        if not 0 <= scua_core < self.config.num_cores:
            raise MethodologyError(f"scua core {scua_core} does not exist")
        if scua.is_infinite:
            raise MethodologyError(
                f"the scua ({scua.name!r}) must terminate; build it with a finite "
                "iteration count"
            )

    @staticmethod
    def _check_finished(result: SystemResult, core: int, label: str) -> None:
        if result.timed_out or result.done_cycles[core] is None:
            raise MethodologyError(
                f"{label} run did not finish within the cycle budget; raise max_cycles"
            )
