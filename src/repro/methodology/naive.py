"""The prior-art measurement approach the paper argues against.

Before this paper, ``ubdm`` was obtained by running a software component
under analysis against resource-stressing kernels and dividing the observed
execution-time increase by the number of bus requests:

    ``ubdm = det / nr``  with  ``det = ExecTime_rsk - ExecTime_isol``

(Section 1).  The paper's Sections 3.1/3.2 show that, because of the
synchrony effect, this value reflects one particular injection-time alignment
and can be arbitrarily far below the true ``ubd``.  This module implements
that estimator faithfully so the benchmarks can quantify the gap between the
naive value and both the rsk-nop result and the analytical bound.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import ArchConfig
from ..errors import MethodologyError
from ..kernels.rsk import build_rsk
from ..sim.isa import Program
from .experiment import ExperimentRunner


@dataclass(frozen=True)
class NaiveEstimate:
    """Outcome of the naive ``det / nr`` estimator.

    Attributes:
        ubdm: the naive per-request contention estimate (cycles, fractional).
        det: measured execution-time increase of the scua.
        requests: number of bus requests ``nr`` used as the divisor.
        isolation_time: scua execution time in isolation.
        contended_time: scua execution time against the contenders.
        scua_name: name of the analysed program.
    """

    ubdm: float
    det: int
    requests: int
    isolation_time: int
    contended_time: int
    scua_name: str

    def underestimation_versus(self, reference_ubd: int) -> float:
        """How far below ``reference_ubd`` the naive estimate lies (cycles)."""
        return reference_ubd - self.ubdm


class NaiveUbdEstimator:
    """Runs the naive estimator for an arbitrary scua (or an rsk).

    Args:
        config: platform to measure.
        scua_core: core hosting the analysed program.
        contender_kind: access type of the rsk contenders.
    """

    def __init__(
        self,
        config: ArchConfig,
        scua_core: int = 0,
        contender_kind: str = "load",
        preload_caches: bool = True,
    ) -> None:
        self.config = config
        self.scua_core = scua_core
        self.contender_kind = contender_kind
        self.runner = ExperimentRunner(
            config, preload_l2=preload_caches, preload_il1=preload_caches
        )

    def estimate(self, scua: Program) -> NaiveEstimate:
        """Apply ``det / nr`` to ``scua`` run against ``Nc - 1`` rsk contenders."""
        isolation = self.runner.run_isolation(scua, self.scua_core)
        if isolation.bus_requests == 0:
            raise MethodologyError(
                f"scua {scua.name!r} issued no bus requests; det/nr is undefined"
            )
        contended = self.runner.run_against_rsk(scua, self.scua_core, kind=self.contender_kind)
        det = contended.slowdown_versus(isolation)
        return NaiveEstimate(
            ubdm=det / isolation.bus_requests,
            det=det,
            requests=isolation.bus_requests,
            isolation_time=isolation.execution_time,
            contended_time=contended.execution_time,
            scua_name=scua.name,
        )

    def estimate_with_rsk_as_scua(self, iterations: int = 80) -> NaiveEstimate:
        """Section 3.2's variant: the scua is itself an rsk (finite copy)."""
        scua = build_rsk(
            self.config,
            self.scua_core,
            kind=self.contender_kind,
            iterations=iterations,
        )
        return self.estimate(scua)
