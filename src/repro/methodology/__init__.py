"""The measurement-based methodology (the paper's contribution).

* :mod:`repro.methodology.experiment` — running a software component under
  analysis (scua) in isolation and against contender kernels, and measuring
  execution-time differences.
* :mod:`repro.methodology.ubd` — the rsk-nop methodology of Section 4: sweep
  the nop count, measure ``dbus(t, k)``, detect the saw-tooth period and
  report ``ubdm`` together with its confidence checks.
* :mod:`repro.methodology.naive` — the prior-art estimator (execution-time
  increase divided by the number of requests) that the paper shows to
  underestimate ``ubd``.
* :mod:`repro.methodology.etb` — using ``ubdm`` to pad execution-time bounds
  for MBTA, or as a per-access contention term for STA.
* :mod:`repro.methodology.workloads` — randomly composed multiprogrammed
  workloads (the Figure 6(a) campaign).
"""

from .experiment import (
    ContendedMeasurement,
    ExperimentRunner,
    IsolationMeasurement,
    build_contender_set,
)
from .ubd import UbdEstimator, UbdMethodologyResult
from .naive import NaiveEstimate, NaiveUbdEstimator
from .etb import EtbReport, compute_etb, mbta_padding
from .mbta import TaskAnalysis, TaskSetAnalysis, TaskSetResult
from .workloads import (
    WorkloadCampaignResult,
    WorkloadRun,
    random_workloads,
    run_rsk_reference_workload,
    run_workload_campaign,
)

__all__ = [
    "ContendedMeasurement",
    "EtbReport",
    "ExperimentRunner",
    "IsolationMeasurement",
    "NaiveEstimate",
    "NaiveUbdEstimator",
    "TaskAnalysis",
    "TaskSetAnalysis",
    "TaskSetResult",
    "UbdEstimator",
    "UbdMethodologyResult",
    "WorkloadCampaignResult",
    "WorkloadRun",
    "build_contender_set",
    "compute_etb",
    "mbta_padding",
    "random_workloads",
    "run_rsk_reference_workload",
    "run_workload_campaign",
]
