"""The measurement-based methodology (the paper's contribution).

* :mod:`repro.methodology.experiment` — running a software component under
  analysis (scua) in isolation and against contender kernels, and measuring
  execution-time differences.
* :mod:`repro.methodology.ubd` — the rsk-nop methodology of Section 4 (sweep
  the nop count, measure ``dbus(t, k)``, detect the saw-tooth period and
  report ``ubdm`` together with its confidence checks) plus the
  resource-generic measured-bound pipeline that derives one measured
  ``ubdm`` term per shared resource of the configured topology and
  cross-checks each against its analytical envelope.
* :mod:`repro.methodology.naive` — the prior-art estimator (execution-time
  increase divided by the number of requests) that the paper shows to
  underestimate ``ubd``.
* :mod:`repro.methodology.etb` — using ``ubdm`` to pad execution-time bounds
  for MBTA, or as a per-access contention term for STA.
* :mod:`repro.methodology.composition` — per-resource worst-case delay terms
  for multi-resource topologies; they sum to the end-to-end bound and pad
  execution times resource by resource.
* :mod:`repro.methodology.workloads` — randomly composed multiprogrammed
  workloads (the Figure 6(a) campaign).
"""

from .experiment import (
    ContendedMeasurement,
    ExperimentRunner,
    IsolationMeasurement,
    build_contender_set,
)
from .ubd import (
    MeasuredBoundPipeline,
    MeasuredBoundReport,
    ResourceUbdm,
    UbdEstimator,
    UbdMethodologyResult,
)
from .naive import NaiveEstimate, NaiveUbdEstimator
from .etb import EtbReport, compute_etb, mbta_padding
from .composition import (
    ComposedEtbReport,
    compose_etb,
    compose_etb_for_config,
    end_to_end_bound,
    per_resource_bounds,
)
from .mbta import TaskAnalysis, TaskSetAnalysis, TaskSetResult
from .workloads import (
    WorkloadCampaignResult,
    WorkloadRun,
    random_workloads,
    run_rsk_reference_workload,
    run_workload_campaign,
)

__all__ = [
    "ComposedEtbReport",
    "ContendedMeasurement",
    "EtbReport",
    "ExperimentRunner",
    "IsolationMeasurement",
    "MeasuredBoundPipeline",
    "MeasuredBoundReport",
    "NaiveEstimate",
    "NaiveUbdEstimator",
    "ResourceUbdm",
    "TaskAnalysis",
    "TaskSetAnalysis",
    "TaskSetResult",
    "UbdEstimator",
    "UbdMethodologyResult",
    "WorkloadCampaignResult",
    "WorkloadRun",
    "build_contender_set",
    "compose_etb",
    "compose_etb_for_config",
    "compute_etb",
    "end_to_end_bound",
    "mbta_padding",
    "per_resource_bounds",
    "random_workloads",
    "run_rsk_reference_workload",
    "run_workload_campaign",
]
