"""Measurement-based timing analysis (MBTA) of whole tasks using ``ubdm``.

Section 4.3 of the paper ("Using ubdm"): once the per-request contention
bound is known, an MBTA flow analyses each task by

1. measuring its execution time in isolation;
2. bounding the number of bus requests ``nr`` it performs (here read from the
   performance monitoring counters of the isolation run, as the paper
   suggests for PMC-equipped platforms such as the NGMP);
3. padding the isolation measurement with ``pad = nr * ubdm``.

:class:`TaskSetAnalysis` packages that flow for a set of tasks and can
optionally validate each padded bound against an actual contended run — the
check an end user would perform to gain confidence in the derived bounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..config import ArchConfig
from ..errors import MethodologyError
from ..report.tables import render_table
from ..sim.isa import Program
from .etb import EtbReport, build_etb_report
from .experiment import ExperimentRunner


@dataclass(frozen=True)
class TaskAnalysis:
    """MBTA result for one task."""

    report: EtbReport
    isolation_time: int
    contended_time: Optional[int]
    requests: int

    @property
    def task_name(self) -> str:
        """Name of the analysed task."""
        return self.report.task_name

    @property
    def etb(self) -> int:
        """The padded execution-time bound."""
        return self.report.etb

    @property
    def contention_share(self) -> float:
        """Fraction of the ETB attributable to the contention pad."""
        if self.report.etb == 0:
            return 0.0
        return self.report.pad / self.report.etb


@dataclass(frozen=True)
class TaskSetResult:
    """MBTA results for a whole task set."""

    ubdm: float
    tasks: List[TaskAnalysis]

    @property
    def all_bounds_hold(self) -> Optional[bool]:
        """True/False when contended validation ran for every task, else ``None``."""
        verdicts = [task.report.covers_observation for task in self.tasks]
        if any(verdict is None for verdict in verdicts):
            return None
        return all(verdicts)

    def as_table(self) -> str:
        """Render the task-set analysis as a text table."""
        rows = []
        for task in self.tasks:
            observed = (task.contended_time if task.contended_time is not None else "-")
            covered = {True: "yes", False: "NO", None: "-"}[task.report.covers_observation]
            rows.append(
                [
                    task.task_name,
                    task.isolation_time,
                    task.requests,
                    task.report.pad,
                    task.etb,
                    observed,
                    covered,
                ]
            )
        return render_table(
            ["task", "isolation", "nr", "pad", "ETB", "observed contended", "bound holds"],
            rows,
        )


class TaskSetAnalysis:
    """Applies the MBTA padding flow to a set of tasks on one platform.

    Args:
        config: the platform the tasks run on.
        ubdm: the per-request contention bound to pad with (typically the
            output of :class:`repro.methodology.ubd.UbdEstimator`).
        validate_against_rsk: when True, each task is additionally run against
            ``Nc - 1`` rsk contenders and the padded bound is checked against
            that observation.
    """

    def __init__(
        self,
        config: ArchConfig,
        ubdm: float,
        validate_against_rsk: bool = True,
    ) -> None:
        if ubdm < 0:
            raise MethodologyError(f"ubdm must be non-negative, got {ubdm}")
        self.config = config
        self.ubdm = float(ubdm)
        self.validate_against_rsk = validate_against_rsk
        self.runner = ExperimentRunner(config)

    def analyse_task(self, task: Program, core_id: int = 0) -> TaskAnalysis:
        """Analyse a single task: isolation run, request count, padding."""
        isolation = self.runner.run_isolation(task, core_id)
        contended_time: Optional[int] = None
        if self.validate_against_rsk:
            contended = self.runner.run_against_rsk(task, core_id)
            contended_time = contended.execution_time
        report = build_etb_report(
            task.name,
            isolation_time=isolation.execution_time,
            requests=isolation.bus_requests,
            ubdm=self.ubdm,
            observed_contended_time=contended_time,
        )
        return TaskAnalysis(
            report=report,
            isolation_time=isolation.execution_time,
            contended_time=contended_time,
            requests=isolation.bus_requests,
        )

    def analyse(self, tasks: Sequence[Program], core_id: int = 0) -> TaskSetResult:
        """Analyse every task in ``tasks`` and return the combined result."""
        if not tasks:
            raise MethodologyError("the task set is empty")
        analyses = [self.analyse_task(task, core_id) for task in tasks]
        return TaskSetResult(ubdm=self.ubdm, tasks=analyses)
