"""Using the derived bound: execution-time bound (ETB) padding.

Section 4.3 of the paper describes how ``ubdm`` is consumed:

* **STA** — static timing analysis simply adds ``ubdm`` to the access time of
  every bus request it accounts for;
* **MBTA** — measurement-based timing analysis measures the task in isolation
  and pads its execution-time bound with ``pad = nr * ubdm``, where ``nr`` is
  an upper bound on the number of bus requests the task performs.

The report in this module additionally checks the padded bound against an
observed contended execution time, which is the trustworthiness argument the
paper's introduction builds: the bound is only trustworthy if it covers what
contention can actually do to the task.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..errors import MethodologyError


def mbta_padding(requests: int, ubdm: float) -> int:
    """The MBTA contention pad ``pad = nr * ubdm`` (rounded up to whole cycles)."""
    if requests < 0:
        raise MethodologyError(f"request count must be >= 0, got {requests}")
    if ubdm < 0:
        raise MethodologyError(f"ubdm must be >= 0, got {ubdm}")
    return int(math.ceil(requests * ubdm))


def compute_etb(isolation_time: int, requests: int, ubdm: float) -> int:
    """Execution-time bound: isolation measurement plus the contention pad."""
    if isolation_time < 0:
        raise MethodologyError(f"isolation time must be >= 0, got {isolation_time}")
    return isolation_time + mbta_padding(requests, ubdm)


@dataclass(frozen=True)
class EtbReport:
    """Execution-time bound derived for one task with one ``ubdm`` value.

    Attributes:
        task_name: the analysed task.
        isolation_time: measured execution time in isolation (cycles).
        requests: upper bound on the task's bus requests (``nr``).
        ubdm: per-request contention bound used for padding.
        etb: the resulting execution-time bound.
        observed_contended_time: execution time measured in a contended run,
            if available — used to check whether the bound holds.
    """

    task_name: str
    isolation_time: int
    requests: int
    ubdm: float
    etb: int
    observed_contended_time: Optional[int] = None

    @property
    def pad(self) -> int:
        """The contention pad added on top of the isolation time."""
        return self.etb - self.isolation_time

    @property
    def covers_observation(self) -> Optional[bool]:
        """True/False if an observation is available, ``None`` otherwise."""
        if self.observed_contended_time is None:
            return None
        return self.etb >= self.observed_contended_time

    @property
    def margin(self) -> Optional[int]:
        """ETB minus the observation (negative means the bound was violated)."""
        if self.observed_contended_time is None:
            return None
        return self.etb - self.observed_contended_time

    def summary(self) -> str:
        """One-line human readable report."""
        base = (
            f"{self.task_name}: isolation {self.isolation_time} + pad {self.pad} "
            f"= ETB {self.etb} cycles (nr={self.requests}, ubdm={self.ubdm:.2f})"
        )
        if self.observed_contended_time is None:
            return base
        status = "covers" if self.covers_observation else "VIOLATED by"
        return f"{base}; {status} observed {self.observed_contended_time}"


def build_etb_report(
    task_name: str,
    isolation_time: int,
    requests: int,
    ubdm: float,
    observed_contended_time: Optional[int] = None,
) -> EtbReport:
    """Convenience constructor computing the bound and returning the report."""
    return EtbReport(
        task_name=task_name,
        isolation_time=isolation_time,
        requests=requests,
        ubdm=ubdm,
        etb=compute_etb(isolation_time, requests, ubdm),
        observed_contended_time=observed_contended_time,
    )
