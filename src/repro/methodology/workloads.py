"""Randomly composed multiprogrammed workloads (the Figure 6(a) campaign).

The paper's first evaluation experiment runs "8 randomly generated 4-task
workloads with EEMBC benchmarks" and histograms how many contenders are ready
whenever the task in core 0 accesses the bus, contrasting that with a
workload of four rsk.  This module builds such campaigns from the synthetic
EEMBC substitute of :mod:`repro.kernels.synthetic`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.contention import ContenderHistogram, contender_histogram
from ..config import ArchConfig
from ..errors import MethodologyError
from ..kernels.rsk import build_rsk
from ..kernels.synthetic import build_synthetic_kernel, synthetic_kernel_names
from ..sim.isa import Program
from ..sim.system import System


@dataclass(frozen=True)
class WorkloadRun:
    """One multiprogrammed run and its contender histogram."""

    task_names: Tuple[str, ...]
    observed_core: int
    histogram: ContenderHistogram
    execution_time: int
    bus_utilisation: float


@dataclass(frozen=True)
class WorkloadCampaignResult:
    """Outcome of a whole campaign of random workloads."""

    runs: List[WorkloadRun]

    def aggregated_counts(self) -> Dict[int, int]:
        """Sum of the per-run contender histograms (the Figure 6(a) bars)."""
        totals: Dict[int, int] = {}
        for run in self.runs:
            for contenders, count in run.histogram.counts.items():
                totals[contenders] = totals.get(contenders, 0) + count
        return totals

    def fraction_with_at_most(self, contenders: int) -> float:
        """Aggregate fraction of requests that found at most ``contenders`` ready."""
        totals = self.aggregated_counts()
        total_requests = sum(totals.values())
        if total_requests == 0:
            return 0.0
        matching = sum(count for value, count in totals.items() if value <= contenders)
        return matching / total_requests


def random_workloads(
    num_workloads: int,
    tasks_per_workload: int,
    seed: int = 2015,
    names: Optional[Sequence[str]] = None,
) -> List[Tuple[str, ...]]:
    """Draw random task combinations from the synthetic suite.

    Args:
        num_workloads: how many workloads to generate (the paper uses 8).
        tasks_per_workload: tasks per workload (the paper uses 4, one per core).
        seed: RNG seed; the same seed always yields the same campaign.
        names: pool of kernel names to draw from (defaults to the full suite).
    """
    if num_workloads < 1 or tasks_per_workload < 1:
        raise MethodologyError("workload campaign sizes must be positive")
    pool = list(names) if names is not None else list(synthetic_kernel_names())
    if not pool:
        raise MethodologyError("the synthetic kernel pool is empty")
    rng = random.Random(seed)
    workloads = []
    for _ in range(num_workloads):
        workloads.append(tuple(rng.choice(pool) for _ in range(tasks_per_workload)))
    return workloads


def build_workload_programs(
    config: ArchConfig,
    task_names: Sequence[str],
    observed_core: int,
    observed_iterations: int,
    seed: int,
) -> List[Optional[Program]]:
    """Map ``task_names`` onto cores; the observed task gets a finite loop count.

    Cores beyond ``len(task_names)`` stay idle, which is how campaigns sweep
    the number of contenders on a fixed platform.
    """
    if len(task_names) > config.num_cores:
        raise MethodologyError(f"workload has {len(task_names)} tasks for {config.num_cores} cores")
    programs: List[Optional[Program]] = [None] * config.num_cores
    for core, name in enumerate(task_names):
        if core == observed_core:
            programs[core] = build_synthetic_kernel(
                config, name, core, iterations=observed_iterations, seed=seed
            )
        else:
            # Contender tasks must not finish before the observed one.
            programs[core] = build_synthetic_kernel(
                config, name, core, iterations=None, seed=seed
            ).with_iterations(None)
    return programs


def run_single_workload(
    config: ArchConfig,
    task_names: Sequence[str],
    observed_core: int = 0,
    observed_iterations: int = 30,
    seed: int = 2015,
) -> WorkloadRun:
    """Run one multiprogrammed workload and histogram its ready contenders.

    This is the simulation primitive behind both the legacy serial campaign
    and the parallel campaign engine (:mod:`repro.campaign`): one workload,
    one traced run, one :class:`WorkloadRun`.
    """
    programs = build_workload_programs(
        config, task_names, observed_core, observed_iterations, seed=seed
    )
    system = System(
        config,
        programs,
        trace=True,
        preload_l2=True,
        preload_il1=True,
        preload_dl1=True,
    )
    result = system.run(observed_cores=[observed_core])
    histogram = contender_histogram(result.trace, observed_core, config.num_cores)
    return WorkloadRun(
        task_names=tuple(task_names),
        observed_core=observed_core,
        histogram=histogram,
        execution_time=result.execution_time(observed_core),
        bus_utilisation=result.pmc.bus_utilisation(),
    )


def run_workload_campaign(
    config: ArchConfig,
    num_workloads: int = 8,
    observed_core: int = 0,
    observed_iterations: int = 30,
    seed: int = 2015,
    names: Optional[Sequence[str]] = None,
    runner: Optional[object] = None,
) -> WorkloadCampaignResult:
    """Run the Figure 6(a) campaign with EEMBC-like synthetic workloads.

    Every workload maps one synthetic task per core; the task on
    ``observed_core`` runs to completion while the histogram of ready
    contenders is collected from the request trace.

    Args:
        runner: optional :class:`repro.campaign.ParallelRunner` to fan the
            workloads out over worker processes (and reuse its result cache).
            ``None`` keeps the historical in-process serial execution; both
            paths produce bit-identical results.
    """
    workloads = random_workloads(num_workloads, config.num_cores, seed=seed, names=names)
    if runner is not None:
        # Imported lazily: repro.campaign imports this module at load time.
        from ..campaign import workload_campaign_descriptors, workload_run_from_record

        descriptors = workload_campaign_descriptors(
            config,
            workloads,
            observed_core=observed_core,
            observed_iterations=observed_iterations,
            seed=seed,
        )
        outcome = runner.run(descriptors)
        return WorkloadCampaignResult(
            runs=[workload_run_from_record(record) for record in outcome.records]
        )
    runs: List[WorkloadRun] = []
    for index, task_names in enumerate(workloads):
        runs.append(
            run_single_workload(
                config,
                task_names,
                observed_core=observed_core,
                observed_iterations=observed_iterations,
                seed=seed + index,
            )
        )
    return WorkloadCampaignResult(runs=runs)


def run_rsk_reference_workload(
    config: ArchConfig,
    observed_core: int = 0,
    iterations: int = 150,
    kind: str = "load",
) -> WorkloadRun:
    """Run the contrast case of Figure 6(a): every core executes an rsk.

    The observed core runs a finite rsk copy; the other cores run infinite
    rsk contenders.  Under this saturating workload nearly every request
    finds all other cores with a pending request.
    """
    programs: List[Optional[Program]] = [None] * config.num_cores
    programs[observed_core] = build_rsk(config, observed_core, kind=kind, iterations=iterations)
    for core in range(config.num_cores):
        if core != observed_core:
            programs[core] = build_rsk(config, core, kind=kind, iterations=None)
    system = System(config, programs, trace=True, preload_l2=True, preload_il1=True)
    result = system.run(observed_cores=[observed_core])
    histogram = contender_histogram(result.trace, observed_core, config.num_cores)
    return WorkloadRun(
        task_names=tuple(f"rsk-{kind}" for _ in range(config.num_cores)),
        observed_core=observed_core,
        histogram=histogram,
        execution_time=result.execution_time(observed_core),
        bus_utilisation=result.pmc.bus_utilisation(),
    )
