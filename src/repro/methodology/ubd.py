"""The measured-bound pipeline: deriving per-resource ``ubdm`` from
measurements alone.

The paper's contribution (Section 4) is the *bus* instance of a more general
recipe: pair a worst-case **resource stressing kernel** with a unit-of-
analysis kernel, measure the rsk-vs-nop differential, and read the resource's
measured upper-bound delay off the result.  This module implements both the
paper's instance and the resource-generic pipeline built on top of it:

* :class:`UbdEstimator` — the rsk-nop saw-tooth methodology for one
  arbitrated channel (Section 4):

  1. measure ``delta_nop`` with the nop-only kernel (Section 4.2);
  2. for every ``k`` in a sweep, build ``rsk-nop(t, k)`` as the software
     under analysis, measure its execution time in isolation and against
     ``Nc - 1`` rsk contenders, and form ``dbus(t, k)`` — the slowdown;
  3. detect the saw-tooth period of ``dbus(t, k)`` (Equation 3 plus the
     robust estimators of :mod:`repro.analysis.sawtooth`); the period,
     converted to cycles through ``delta_nop``, is ``ubdm``;
  4. evaluate the confidence checks of Section 4.3 (bus saturation via the
     PMCs, ``delta_nop`` reliability, estimator agreement, sweep coverage).

* :class:`MeasuredBoundPipeline` — the resource-generic pipeline.  For each
  resource contributing a term to the platform's analytical decomposition
  (:attr:`repro.config.ArchConfig.ubd_terms`), it selects the matching
  worst-case stressing kernel from the rsk registry
  (:data:`repro.kernels.rsk.RSK_REGISTRY`), runs the stressor against the
  unit-of-analysis kernel, reads that resource's PMC section (channel
  ``max_wait``, memory-queue ``max_queue_wait``) and per-request trace
  decomposition, and emits a measured :class:`ResourceUbdm` term.  The terms
  compose into an end-to-end measured bound the MBTA way
  (:mod:`repro.methodology.composition`) and are sandwich-checked per stage
  against the analytical terms (observed worst case <= ``ubdm`` <=
  analytical envelope, via
  :func:`repro.analysis.contention.cross_check_stage_bounds`).

On the paper's single-bus platform the pipeline degenerates to exactly the
legacy estimator: the only term is ``bus``, its stressing kernel is the
plain rsk, and its ``ubdm`` is the saw-tooth period — the differential
oracle in ``tests/test_measured_bounds.py`` pins this reproduction.

Nothing in either procedure uses the bus latency, the L2 latency or the
arbitration timing — only the knowledge that arbitration is fair (round
robin / FIFO) on every stage and which instruction types exercise which
resource, exactly as the paper requires.

The saw-tooth sweep can optionally auto-extend: if no period is detected
within the initial ``k`` range (because the range does not cover two
periods), the range is doubled up to a limit.  This is the "applicability to
a COTS multicore" mode of Section 5.3, where ``ubd`` is genuinely unknown
beforehand.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from ..analysis.confidence import (
    ConfidenceCheck,
    ConfidenceReport,
    assess_confidence,
    assess_write_burst,
)
from ..analysis.contention import (
    BoundCrossCheck,
    LatencyDecomposition,
    MemoryTermSplit,
    StageBoundCheck,
    latency_decomposition,
    memory_term_split,
)
from ..analysis.injection import DeltaNopEstimate, derive_delta_nop
from ..analysis.sawtooth import PeriodEstimate, SawtoothAnalyzer
from ..config import ArchConfig
from ..errors import AnalysisError, ConfigurationError, MethodologyError
from ..kernels.rsk import (
    build_rsk_nop,
    build_stress_contender_set,
    rsk_for_resource,
    rsk_request_count,
)
from .composition import ComposedEtbReport, compose_etb
from .experiment import ContendedMeasurement, ExperimentRunner


@dataclass(frozen=True)
class SweepPoint:
    """Measurements taken for one value of ``k``."""

    k: int
    isolation_time: int
    contended_time: int
    dbus: int
    bus_utilisation: float
    requests: int


@dataclass(frozen=True)
class UbdMethodologyResult:
    """Full outcome of the rsk-nop methodology on one platform.

    Attributes:
        arch_name: name of the measured platform configuration.
        instruction_type: bus access type used (``"load"`` or ``"store"``).
        points: one :class:`SweepPoint` per swept ``k``.
        delta_nop: measured per-nop latency.
        period: detected saw-tooth period.
        ubdm: the measurement-based upper-bound delay, in cycles.
        confidence: outcome of the Section 4.3 confidence checks.
    """

    arch_name: str
    instruction_type: str
    points: List[SweepPoint]
    delta_nop: DeltaNopEstimate
    period: PeriodEstimate
    ubdm: int
    confidence: ConfidenceReport

    @property
    def ks(self) -> List[int]:
        """The swept nop counts."""
        return [point.k for point in self.points]

    @property
    def dbus_values(self) -> List[int]:
        """The measured slowdowns ``dbus(t, k)``."""
        return [point.dbus for point in self.points]

    def summary(self) -> str:
        """Short human readable result line."""
        return (
            f"{self.arch_name}/{self.instruction_type}: ubdm = {self.ubdm} cycles "
            f"({self.period.summary()}); confidence "
            f"{'OK' if self.confidence.passed else 'NOT met'}"
        )


class UbdEstimator:
    """Runs the complete rsk-nop methodology on one platform.

    Args:
        config: the platform to measure.
        instruction_type: bus access type of both the scua and the
            contenders (``"load"`` is the paper's default; ``"store"``
            exercises the store-buffer behaviour of Figure 7(b)).
        k_values: explicit sweep of nop counts; by default ``1..k_max``.
        k_max: upper end of the default sweep.
        iterations: loop iterations of every rsk-nop kernel (more iterations
            sharpen the saw-tooth at the cost of simulation time).
        scua_core: core hosting the kernel under analysis.
        auto_extend: extend the sweep (doubling ``k_max``) when no period is
            found, up to ``max_k_limit``.
        max_k_limit: hard cap for the auto-extension.
    """

    def __init__(
        self,
        config: ArchConfig,
        instruction_type: str = "load",
        k_values: Optional[Sequence[int]] = None,
        k_max: int = 60,
        iterations: int = 80,
        scua_core: int = 0,
        auto_extend: bool = True,
        max_k_limit: int = 400,
        preload_caches: bool = True,
    ) -> None:
        if instruction_type not in ("load", "store"):
            raise MethodologyError(
                f"instruction type must be 'load' or 'store', got {instruction_type!r}"
            )
        if k_values is not None and len(k_values) < 4:
            raise MethodologyError("an explicit k sweep needs at least four points")
        if iterations < 1:
            raise MethodologyError("iterations must be >= 1")
        self.config = config
        self.instruction_type = instruction_type
        self.explicit_k_values = list(k_values) if k_values is not None else None
        self.k_max = k_max
        self.iterations = iterations
        self.scua_core = scua_core
        self.auto_extend = auto_extend
        self.max_k_limit = max_k_limit
        self.runner = ExperimentRunner(
            config, preload_l2=preload_caches, preload_il1=preload_caches
        )

    # ------------------------------------------------------------------ #
    # Measurement of one sweep point.
    # ------------------------------------------------------------------ #
    def measure_point(self, k: int) -> SweepPoint:
        """Measure ``dbus(t, k)`` for a single nop count ``k``."""
        scua = build_rsk_nop(
            self.config,
            self.scua_core,
            kind=self.instruction_type,
            k=k,
            iterations=self.iterations,
        )
        isolation = self.runner.run_isolation(scua, self.scua_core)
        contended = self.runner.run_against_rsk(scua, self.scua_core, kind=self.instruction_type)
        return SweepPoint(
            k=k,
            isolation_time=isolation.execution_time,
            contended_time=contended.execution_time,
            dbus=contended.slowdown_versus(isolation),
            bus_utilisation=contended.bus_utilisation,
            requests=rsk_request_count(scua),
        )

    def sweep(self, k_values: Sequence[int]) -> List[SweepPoint]:
        """Measure every ``k`` in ``k_values``."""
        return [self.measure_point(k) for k in k_values]

    # ------------------------------------------------------------------ #
    # Full methodology.
    # ------------------------------------------------------------------ #
    def run(self) -> UbdMethodologyResult:
        """Execute the full methodology and return its result."""
        delta_nop = derive_delta_nop(self.config, core_id=self.scua_core)

        if self.explicit_k_values is not None:
            k_values = list(self.explicit_k_values)
        else:
            k_values = list(range(1, self.k_max + 1))
        points = self.sweep(k_values)

        period = self._detect_period(points, delta_nop)
        while self._needs_extension(period, k_values):
            if not self.auto_extend:
                if period is not None:
                    break
                raise AnalysisError(
                    "no saw-tooth period detected and auto_extend is disabled; "
                    "widen the k sweep"
                )
            next_start = k_values[-1] + 1
            next_end = min(self.max_k_limit, k_values[-1] * 2)
            if next_start > next_end:
                if period is not None:
                    break
                raise AnalysisError(
                    f"no saw-tooth period detected for k up to {k_values[-1]}; "
                    f"the platform's ubd exceeds the search limit of {self.max_k_limit}"
                )
            extension = list(range(next_start, next_end + 1))
            points.extend(self.sweep(extension))
            k_values.extend(extension)
            period = self._detect_period(points, delta_nop)
        if period is None:
            raise AnalysisError(
                "no saw-tooth period detected; widen the k sweep or raise max_k_limit"
            )

        ubdm = period.period_cycles
        mean_utilisation = sum(point.bus_utilisation for point in points) / len(points)
        confidence = assess_confidence(
            bus_utilisation=mean_utilisation,
            delta_nop=delta_nop,
            period=period,
            sweep_span_k=k_values[-1] - k_values[0] + 1,
        )
        return UbdMethodologyResult(
            arch_name=self.config.name,
            instruction_type=self.instruction_type,
            points=points,
            delta_nop=delta_nop,
            period=period,
            ubdm=ubdm,
            confidence=confidence,
        )

    def _needs_extension(
        self, period: Optional[PeriodEstimate], k_values: Sequence[int]
    ) -> bool:
        """Decide whether the sweep must grow before the estimate is trusted.

        The sweep is extended while no period is found, or while the detected
        period is not covered at least twice (Equation 3 needs pairs of equal
        values one period apart, so a single period is never conclusive).
        """
        if period is None:
            return True
        span = k_values[-1] - k_values[0] + 1
        return span < 2 * period.period_k and k_values[-1] < self.max_k_limit

    @staticmethod
    def _detect_period(
        points: Sequence[SweepPoint], delta_nop: DeltaNopEstimate
    ) -> Optional[PeriodEstimate]:
        ks = [point.k for point in points]
        values = [point.dbus for point in points]
        try:
            analyzer = SawtoothAnalyzer(ks, values)
            return analyzer.estimate(delta_nop=delta_nop.rounded)
        except AnalysisError:
            return None


# --------------------------------------------------------------------------- #
# The resource-generic measured-bound pipeline.
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class ResourceUbdm:
    """One measured per-resource upper-bound delay term.

    Attributes:
        resource: the ``ArchConfig.ubd_terms`` key this term bounds.
        ubdm: the measured bound (cycles per request visiting the resource).
        observed_worst_case: worst per-request delay the observed core
            suffered at the resource across the pipeline's traced runs.
        analytical: the matching analytical term.
        method: how the bound was measured (``"rsk-nop saw-tooth"`` for
            arbitrated channels anchored by the paper's methodology,
            ``"stress-run PMC"`` for resources read off their own PMC
            section, ``"stress-run trace"`` for trace-only resources such as
            the shared-bus response envelope).
        requests: observed-core requests that visited the resource during
            its stressing run.
        pmc: raw snapshot of the resource's PMC section during the
            stressing run (shape varies per resource kind).
    """

    resource: str
    ubdm: int
    observed_worst_case: int
    analytical: int
    method: str
    requests: int
    pmc: Dict[str, int] = field(default_factory=dict)

    @property
    def sandwich(self) -> StageBoundCheck:
        """This term's sandwich check (the single predicate implementation;
        the report's :class:`~repro.analysis.contention.BoundCrossCheck` is
        assembled from exactly these)."""
        return StageBoundCheck(
            resource=self.resource,
            observed_worst_case=self.observed_worst_case,
            ubdm=self.ubdm,
            analytical=self.analytical,
        )

    @property
    def covers_observation(self) -> bool:
        """True when the measured bound covers the observed worst case."""
        return self.sandwich.covers_observation

    @property
    def within_envelope(self) -> bool:
        """True when the measured bound stays below the analytical term."""
        return self.sandwich.within_envelope

    def as_record(self) -> Dict[str, object]:
        """JSON-serialisable view (the shape campaign artifacts embed)."""
        return {
            "resource": self.resource,
            "ubdm": self.ubdm,
            "observed_worst_case": self.observed_worst_case,
            "analytical": self.analytical,
            "method": self.method,
            "requests": self.requests,
            "pmc": dict(self.pmc),
        }

    def summary(self) -> str:
        """One-line human readable report."""
        return (
            f"{self.resource}: ubdm = {self.ubdm} cycles "
            f"(observed {self.observed_worst_case}, analytical {self.analytical}, "
            f"{self.method})"
        )


@dataclass(frozen=True)
class MeasuredBoundReport:
    """Outcome of the resource-generic measured-bound pipeline.

    Attributes:
        arch_name: the measured platform configuration.
        topology: its shared-resource topology name.
        instruction_type: access type of the unit-of-analysis kernels.
        analytical_terms: the platform's analytical per-resource terms.
        terms: measured :class:`ResourceUbdm` per resource, in term order.
        bus_methodology: the saw-tooth methodology result anchoring the
            ``bus`` term (the paper's Section 4 output, unchanged).
        cross_check: per-stage sandwich checks (observed <= ubdm <=
            analytical).
        memory_split: queue-wait vs DRAM-service split of the measured
            memory stage (None on single-resource topologies).
        write_burst: the store-buffer write-burst gate of the ``memory``
            term's queueing assumption.
    """

    arch_name: str
    topology: str
    instruction_type: str
    analytical_terms: Dict[str, int]
    terms: Dict[str, ResourceUbdm]
    bus_methodology: UbdMethodologyResult
    cross_check: BoundCrossCheck
    memory_split: Optional[MemoryTermSplit] = None
    write_burst: Optional[ConfidenceCheck] = None

    @property
    def measured_terms(self) -> Dict[str, int]:
        """Per-resource measured bounds, keyed like ``ubd_terms``."""
        return {resource: term.ubdm for resource, term in self.terms.items()}

    @property
    def end_to_end_ubdm(self) -> int:
        """Sum of the measured terms: the end-to-end measured bound."""
        return sum(term.ubdm for term in self.terms.values())

    @property
    def end_to_end_analytical(self) -> int:
        """Sum of the analytical terms (the envelope the measurement tightens)."""
        return sum(self.analytical_terms.values())

    @property
    def passed(self) -> bool:
        """True when every check holds: the saw-tooth confidence report, the
        per-stage sandwiches, and the write-burst gate."""
        checks = [self.bus_methodology.confidence.passed, self.cross_check.passed]
        if self.write_burst is not None:
            checks.append(self.write_burst.passed)
        return all(checks)

    def compose(
        self,
        task_name: str,
        isolation_time: int,
        bus_requests: int,
        memory_requests: int,
        observed_contended_time: Optional[int] = None,
    ) -> ComposedEtbReport:
        """Compose the measured terms into an execution-time bound.

        The measured analogue of
        :func:`repro.methodology.composition.compose_etb_for_config`: the
        same MBTA padding rules, applied to the *measured* per-resource
        bounds instead of the analytical ones.
        """
        return compose_etb(
            task_name=task_name,
            isolation_time=isolation_time,
            bus_requests=bus_requests,
            memory_requests=memory_requests,
            terms=self.measured_terms,
            observed_contended_time=observed_contended_time,
        )

    def as_record(self) -> Dict[str, object]:
        """JSON-serialisable summary of the measured decomposition."""
        return {
            "arch_name": self.arch_name,
            "topology": self.topology,
            "instruction_type": self.instruction_type,
            "analytical_terms": dict(self.analytical_terms),
            "terms": {resource: term.as_record() for resource, term in self.terms.items()},
            "end_to_end_ubdm": self.end_to_end_ubdm,
            "end_to_end_analytical": self.end_to_end_analytical,
            "passed": self.passed,
        }

    def summary(self) -> str:
        """Multi-line human readable report."""
        lines = [
            f"{self.arch_name}/{self.topology}: end-to-end measured bound "
            f"{self.end_to_end_ubdm} cycles (analytical {self.end_to_end_analytical})"
        ]
        lines.extend(term.summary() for term in self.terms.values())
        if self.memory_split is not None:
            lines.append(self.memory_split.summary())
        return "\n".join(lines)


class MeasuredBoundPipeline:
    """Derives a measured ``ubdm`` term for every resource of a topology.

    The pipeline mirrors the engine's resource-generic shape one layer up:
    which terms exist is read from the platform's analytical decomposition
    (:attr:`~repro.config.ArchConfig.ubd_terms`), which stressing kernel
    drives each resource to its worst case is read from the rsk registry
    (:data:`repro.kernels.rsk.RSK_REGISTRY`), and each term's measurement is
    read from that resource's own PMC section and per-request trace.  A new
    topology whose terms name registered resources therefore gets measured
    bounds without any pipeline change.

    Stages:

    1. **Saw-tooth anchor.**  The legacy :class:`UbdEstimator` derives the
       ``bus`` term exactly as the paper does (rsk-nop sweep, period
       detection, confidence checks).  On ``bus_only`` this is the whole
       pipeline — the output reproduces the legacy estimator bit for bit.
    2. **Traced anchor run.**  The plain bus stressor runs traced against
       its contender set on the warmed platform, providing the per-request
       observation the ``bus`` term is sandwich-checked against.
    3. **Per-resource stress runs.**  For every other term, the registry's
       stressing kernel runs (cold L2, so every access reaches the memory
       stage) as both scua and contenders; the resource's measured bound is
       the worst case its PMC section recorded, and the traced decomposition
       (:func:`repro.analysis.contention.latency_decomposition`) provides
       the per-stage observations.
    4. **Cross-check and gates.**  Every measured term must cover its
       observed worst case and stay within its analytical envelope; the
       write-burst gate flags configurations whose store traffic can break
       the memory term's queueing assumption.

    Args:
        config: the platform to measure.
        instruction_type: access type of the kernels (only ``"load"`` —
            store traffic drains asynchronously through the store buffer, so
            its per-request stage waits are not observable the same way; the
            write-burst gate covers the store-side soundness question).
        k_values / k_max / iterations / auto_extend / max_k_limit /
            preload_caches: forwarded to the saw-tooth :class:`UbdEstimator`.
        scua_core: core hosting the unit-of-analysis kernels.
        stress_iterations: loop iterations of each finite stressing scua.
    """

    def __init__(
        self,
        config: ArchConfig,
        instruction_type: str = "load",
        k_values: Optional[Sequence[int]] = None,
        k_max: int = 60,
        iterations: int = 80,
        scua_core: int = 0,
        auto_extend: bool = True,
        max_k_limit: int = 400,
        preload_caches: bool = True,
        stress_iterations: int = 40,
    ) -> None:
        if instruction_type != "load":
            raise MethodologyError(
                "the measured-bound pipeline analyses demand (load) traffic; "
                "store traffic drains asynchronously through the store buffer "
                "and is gated by the write-burst check instead"
            )
        if stress_iterations < 1:
            raise MethodologyError("stress_iterations must be >= 1")
        self.config = config
        self.instruction_type = instruction_type
        self.scua_core = scua_core
        self.iterations = iterations
        self.stress_iterations = stress_iterations
        self.bus_estimator = UbdEstimator(
            config,
            instruction_type=instruction_type,
            k_values=k_values,
            k_max=k_max,
            iterations=iterations,
            scua_core=scua_core,
            auto_extend=auto_extend,
            max_k_limit=max_k_limit,
            preload_caches=preload_caches,
        )
        #: Stress runs must reach the memory stage, so the L2 stays cold.
        self.stress_runner = ExperimentRunner(config, preload_l2=False, preload_il1=True)

    # ------------------------------------------------------------------ #
    # Individual measurement stages.
    # ------------------------------------------------------------------ #
    def run_stress(self, resource: str) -> ContendedMeasurement:
        """Run ``resource``'s registered stressing kernel, traced, against
        ``Nc - 1`` contenders built from the same kernel."""
        entry = rsk_for_resource(resource)
        scua = entry.build(
            self.config,
            self.scua_core,
            kind=self.instruction_type,
            iterations=self.stress_iterations,
        )
        contenders = build_stress_contender_set(
            self.config, resource, self.scua_core, kind=self.instruction_type
        )
        return self.stress_runner.run_contended(
            scua, contenders, scua_core=self.scua_core, trace=True
        )

    def _anchor_run(self) -> ContendedMeasurement:
        """The traced synchrony run anchoring the ``bus`` observation."""
        scua = rsk_for_resource("bus").build(
            self.config,
            self.scua_core,
            kind=self.instruction_type,
            iterations=self.iterations,
        )
        return self.bus_estimator.runner.run_against_rsk(
            scua, self.scua_core, kind=self.instruction_type, trace=True
        )

    @staticmethod
    def _decompose(
        contended: ContendedMeasurement, scua_core: int
    ) -> LatencyDecomposition:
        if contended.trace is None:  # pragma: no cover - trace=True everywhere
            raise MethodologyError("stress runs must be traced")
        return latency_decomposition(contended.trace, scua_core, skip_first=1)

    @staticmethod
    def _pmc_measurement(
        resource: str, contended: ContendedMeasurement
    ) -> Optional[Dict[str, int]]:
        """The resource's own PMC section during its stressing run, if it
        has one (channels report through ``PerformanceCounters.resources``,
        the memory stage through ``MemCtrlStats``)."""
        result = contended.result
        if resource == "memory":
            stats = result.memctrl_stats
            if stats is None:
                return None
            return stats.as_dict()
        channel = result.pmc.resources.get(resource)
        if channel is None:
            return None
        return channel.as_dict()

    @staticmethod
    def _pmc_worst_case(resource: str, section: Mapping[str, int]) -> int:
        """The worst per-request wait the resource's PMC section recorded."""
        if resource == "memory":
            return int(section.get("max_queue_wait", 0))
        return int(section.get("max_wait", 0))

    # ------------------------------------------------------------------ #
    # Full pipeline.
    # ------------------------------------------------------------------ #
    def run(self) -> MeasuredBoundReport:
        """Execute the pipeline and return the measured decomposition."""
        config = self.config
        try:
            analytical = dict(config.ubd_terms)
        except ConfigurationError as exc:
            raise MethodologyError(
                f"no measured per-resource bound for this platform: {exc}"
            ) from exc

        # Stage 1: the paper's saw-tooth methodology anchors the bus term.
        bus_methodology = self.bus_estimator.run()

        # Stage 2 + 3: traced runs.  Every run's decomposition feeds the
        # per-stage observations; each non-bus resource additionally gets
        # its own PMC reading from its dedicated stressing run.
        observed: Dict[str, int] = {}
        requests: Dict[str, int] = {}
        pmc_sections: Dict[str, Dict[str, int]] = {}
        pmc_worst: Dict[str, int] = {}
        memory_split: Optional[MemoryTermSplit] = None
        write_burst: Optional[ConfidenceCheck] = None

        anchor = self._anchor_run()
        anchor_decomposition = self._decompose(anchor, self.scua_core)
        self._fold_observations(observed, anchor_decomposition, analytical)
        requests["bus"] = anchor_decomposition.total_requests
        bus_section = self._pmc_measurement("bus", anchor)
        if bus_section is not None:
            pmc_sections["bus"] = bus_section
            if config.bus.arbitration != "round_robin":
                # The saw-tooth period equals ubd only under round-robin
                # arbitration — the paper's stated assumption (a FIFO bus
                # serves in ready order, so dbus(k) repeats with the bus
                # occupancy, not the fair round).  Other fair policies read
                # the bus term from the channel's own PMC section, exactly
                # like the downstream resources.
                pmc_worst["bus"] = self._pmc_worst_case("bus", bus_section)

        for resource in analytical:
            if resource == "bus":
                continue
            contended = self.run_stress(resource)
            decomposition = self._decompose(contended, self.scua_core)
            self._fold_observations(observed, decomposition, analytical)
            requests[resource] = decomposition.memory_requests
            section = self._pmc_measurement(resource, contended)
            if section is not None:
                pmc_sections[resource] = section
                pmc_worst[resource] = self._pmc_worst_case(resource, section)
            if resource == "memory":
                memory_split = memory_term_split(decomposition)
            burst = assess_write_burst(config, contended.result.pmc)
            if write_burst is None or not burst.passed:
                write_burst = burst
        if write_burst is None:
            # Single-resource platform: gate on the anchor run (vacuous for
            # load traffic, but keeps the report shape uniform).
            write_burst = assess_write_burst(config, anchor.result.pmc)

        # Stage 4: assemble the terms and sandwich-check them.  The measured
        # value is reported exactly as measured — never inflated to cover
        # the observations — so the covers_observation direction of the
        # sandwich is a *genuine* check: a stressing methodology that
        # under-measures its resource fails the cross-check (and
        # ``report.passed``) instead of being silently patched over.  The
        # one necessarily-trivial case is a resource with no PMC section of
        # its own (method "stress-run trace"), whose measurement *is* the
        # observation.
        terms: Dict[str, ResourceUbdm] = {}
        for resource, bound in analytical.items():
            seen = observed.get(resource, 0)
            if resource == "bus" and resource not in pmc_worst:
                ubdm = bus_methodology.ubdm
                method = "rsk-nop saw-tooth"
            elif resource in pmc_worst:
                ubdm = pmc_worst[resource]
                method = "stress-run PMC"
            else:
                ubdm = seen
                method = "stress-run trace"
            terms[resource] = ResourceUbdm(
                resource=resource,
                ubdm=ubdm,
                observed_worst_case=seen,
                analytical=bound,
                method=method,
                requests=requests.get(resource, 0),
                pmc=pmc_sections.get(resource, {}),
            )
        cross_check = BoundCrossCheck(checks=[term.sandwich for term in terms.values()])
        return MeasuredBoundReport(
            arch_name=config.name,
            topology=config.topology.name,
            instruction_type=self.instruction_type,
            analytical_terms=analytical,
            terms=terms,
            bus_methodology=bus_methodology,
            cross_check=cross_check,
            memory_split=memory_split,
            write_burst=write_burst,
        )

    @staticmethod
    def _fold_observations(
        observed: Dict[str, int],
        decomposition: LatencyDecomposition,
        analytical: Mapping[str, int],
    ) -> None:
        """Merge a run's per-stage worst cases into the running observations."""
        for stage in analytical:
            worst = decomposition.max_observed(stage)
            if worst > observed.get(stage, 0):
                observed[stage] = worst
