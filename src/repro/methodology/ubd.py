"""The rsk-nop methodology: deriving ``ubd`` from measurements alone.

This is the paper's contribution (Section 4).  The estimator:

1. measures ``delta_nop`` with the nop-only kernel (Section 4.2);
2. for every ``k`` in a sweep, builds ``rsk-nop(t, k)`` as the software under
   analysis, measures its execution time in isolation and against ``Nc - 1``
   rsk contenders, and forms ``dbus(t, k)`` — the slowdown;
3. detects the saw-tooth period of ``dbus(t, k)`` (Equation 3 plus the robust
   estimators of :mod:`repro.analysis.sawtooth`); the period, converted to
   cycles through ``delta_nop``, is ``ubdm``;
4. evaluates the confidence checks of Section 4.3 (bus saturation via the
   PMCs, ``delta_nop`` reliability, estimator agreement, sweep coverage).

Nothing in the procedure uses the bus latency, the L2 latency or the
arbitration timing — only the knowledge that arbitration is round robin and
which instruction types generate bus requests, exactly as the paper requires.

The sweep can optionally auto-extend: if no period is detected within the
initial ``k`` range (because the range does not cover two periods), the range
is doubled up to a limit.  This is the "applicability to a COTS multicore"
mode of Section 5.3, where ``ubd`` is genuinely unknown beforehand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..analysis.confidence import ConfidenceReport, assess_confidence
from ..analysis.injection import DeltaNopEstimate, derive_delta_nop
from ..analysis.sawtooth import PeriodEstimate, SawtoothAnalyzer
from ..config import ArchConfig
from ..errors import AnalysisError, MethodologyError
from ..kernels.rsk import build_rsk_nop, rsk_request_count
from .experiment import ExperimentRunner


@dataclass(frozen=True)
class SweepPoint:
    """Measurements taken for one value of ``k``."""

    k: int
    isolation_time: int
    contended_time: int
    dbus: int
    bus_utilisation: float
    requests: int


@dataclass(frozen=True)
class UbdMethodologyResult:
    """Full outcome of the rsk-nop methodology on one platform.

    Attributes:
        arch_name: name of the measured platform configuration.
        instruction_type: bus access type used (``"load"`` or ``"store"``).
        points: one :class:`SweepPoint` per swept ``k``.
        delta_nop: measured per-nop latency.
        period: detected saw-tooth period.
        ubdm: the measurement-based upper-bound delay, in cycles.
        confidence: outcome of the Section 4.3 confidence checks.
    """

    arch_name: str
    instruction_type: str
    points: List[SweepPoint]
    delta_nop: DeltaNopEstimate
    period: PeriodEstimate
    ubdm: int
    confidence: ConfidenceReport

    @property
    def ks(self) -> List[int]:
        """The swept nop counts."""
        return [point.k for point in self.points]

    @property
    def dbus_values(self) -> List[int]:
        """The measured slowdowns ``dbus(t, k)``."""
        return [point.dbus for point in self.points]

    def summary(self) -> str:
        """Short human readable result line."""
        return (
            f"{self.arch_name}/{self.instruction_type}: ubdm = {self.ubdm} cycles "
            f"({self.period.summary()}); confidence "
            f"{'OK' if self.confidence.passed else 'NOT met'}"
        )


class UbdEstimator:
    """Runs the complete rsk-nop methodology on one platform.

    Args:
        config: the platform to measure.
        instruction_type: bus access type of both the scua and the
            contenders (``"load"`` is the paper's default; ``"store"``
            exercises the store-buffer behaviour of Figure 7(b)).
        k_values: explicit sweep of nop counts; by default ``1..k_max``.
        k_max: upper end of the default sweep.
        iterations: loop iterations of every rsk-nop kernel (more iterations
            sharpen the saw-tooth at the cost of simulation time).
        scua_core: core hosting the kernel under analysis.
        auto_extend: extend the sweep (doubling ``k_max``) when no period is
            found, up to ``max_k_limit``.
        max_k_limit: hard cap for the auto-extension.
    """

    def __init__(
        self,
        config: ArchConfig,
        instruction_type: str = "load",
        k_values: Optional[Sequence[int]] = None,
        k_max: int = 60,
        iterations: int = 80,
        scua_core: int = 0,
        auto_extend: bool = True,
        max_k_limit: int = 400,
        preload_caches: bool = True,
    ) -> None:
        if instruction_type not in ("load", "store"):
            raise MethodologyError(
                f"instruction type must be 'load' or 'store', got {instruction_type!r}"
            )
        if k_values is not None and len(k_values) < 4:
            raise MethodologyError("an explicit k sweep needs at least four points")
        if iterations < 1:
            raise MethodologyError("iterations must be >= 1")
        self.config = config
        self.instruction_type = instruction_type
        self.explicit_k_values = list(k_values) if k_values is not None else None
        self.k_max = k_max
        self.iterations = iterations
        self.scua_core = scua_core
        self.auto_extend = auto_extend
        self.max_k_limit = max_k_limit
        self.runner = ExperimentRunner(
            config, preload_l2=preload_caches, preload_il1=preload_caches
        )

    # ------------------------------------------------------------------ #
    # Measurement of one sweep point.
    # ------------------------------------------------------------------ #
    def measure_point(self, k: int) -> SweepPoint:
        """Measure ``dbus(t, k)`` for a single nop count ``k``."""
        scua = build_rsk_nop(
            self.config,
            self.scua_core,
            kind=self.instruction_type,
            k=k,
            iterations=self.iterations,
        )
        isolation = self.runner.run_isolation(scua, self.scua_core)
        contended = self.runner.run_against_rsk(
            scua, self.scua_core, kind=self.instruction_type
        )
        return SweepPoint(
            k=k,
            isolation_time=isolation.execution_time,
            contended_time=contended.execution_time,
            dbus=contended.slowdown_versus(isolation),
            bus_utilisation=contended.bus_utilisation,
            requests=rsk_request_count(scua),
        )

    def sweep(self, k_values: Sequence[int]) -> List[SweepPoint]:
        """Measure every ``k`` in ``k_values``."""
        return [self.measure_point(k) for k in k_values]

    # ------------------------------------------------------------------ #
    # Full methodology.
    # ------------------------------------------------------------------ #
    def run(self) -> UbdMethodologyResult:
        """Execute the full methodology and return its result."""
        delta_nop = derive_delta_nop(self.config, core_id=self.scua_core)

        if self.explicit_k_values is not None:
            k_values = list(self.explicit_k_values)
        else:
            k_values = list(range(1, self.k_max + 1))
        points = self.sweep(k_values)

        period = self._detect_period(points, delta_nop)
        while self._needs_extension(period, k_values):
            if not self.auto_extend:
                if period is not None:
                    break
                raise AnalysisError(
                    "no saw-tooth period detected and auto_extend is disabled; "
                    "widen the k sweep"
                )
            next_start = k_values[-1] + 1
            next_end = min(self.max_k_limit, k_values[-1] * 2)
            if next_start > next_end:
                if period is not None:
                    break
                raise AnalysisError(
                    f"no saw-tooth period detected for k up to {k_values[-1]}; "
                    f"the platform's ubd exceeds the search limit of {self.max_k_limit}"
                )
            extension = list(range(next_start, next_end + 1))
            points.extend(self.sweep(extension))
            k_values.extend(extension)
            period = self._detect_period(points, delta_nop)
        if period is None:
            raise AnalysisError(
                "no saw-tooth period detected; widen the k sweep or raise max_k_limit"
            )

        ubdm = period.period_cycles
        mean_utilisation = sum(point.bus_utilisation for point in points) / len(points)
        confidence = assess_confidence(
            bus_utilisation=mean_utilisation,
            delta_nop=delta_nop,
            period=period,
            sweep_span_k=k_values[-1] - k_values[0] + 1,
        )
        return UbdMethodologyResult(
            arch_name=self.config.name,
            instruction_type=self.instruction_type,
            points=points,
            delta_nop=delta_nop,
            period=period,
            ubdm=ubdm,
            confidence=confidence,
        )

    def _needs_extension(
        self, period: Optional[PeriodEstimate], k_values: Sequence[int]
    ) -> bool:
        """Decide whether the sweep must grow before the estimate is trusted.

        The sweep is extended while no period is found, or while the detected
        period is not covered at least twice (Equation 3 needs pairs of equal
        values one period apart, so a single period is never conclusive).
        """
        if period is None:
            return True
        span = k_values[-1] - k_values[0] + 1
        return span < 2 * period.period_k and k_values[-1] < self.max_k_limit

    @staticmethod
    def _detect_period(
        points: Sequence[SweepPoint], delta_nop: DeltaNopEstimate
    ) -> Optional[PeriodEstimate]:
        ks = [point.k for point in points]
        values = [point.dbus for point in points]
        try:
            analyzer = SawtoothAnalyzer(ks, values)
            return analyzer.estimate(delta_nop=delta_nop.rounded)
        except AnalysisError:
            return None
