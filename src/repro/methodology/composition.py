"""Per-resource bound composition for multi-resource topologies.

The paper derives a *single* per-request bound — ``ubd``/``ubdm`` for the
shared bus — because its platform has a single contention point.  On a
chained topology (``bus_bank_queues``: an arbitrated bus feeding per-bank
arbitrated memory-controller queues) one request can contend at several
resources, so the end-to-end bound decomposes into **per-resource worst-case
delay terms that sum**:

* ``bus`` — the request-phase bus wait (Equation 1; on ``bus_bank_queues``
  extended with the shared response port);
* ``memory`` — the bank-queue wait plus the row-state interference of the
  access itself;
* ``bus_response`` — the response-phase wait of an L2 miss: the shared-bus
  analytical envelope on ``bus_bank_queues``, or — on ``split_bus``, whose
  response channel is its own arbitrated resource — the measured
  per-resource quantity ``(Nc - 1) * response occupancy``.

The analytical terms live on the configuration
(:attr:`repro.config.ArchConfig.ubd_terms`) because they are pure functions
of the platform parameters; the *measured* terms come from the
resource-generic pipeline
(:class:`repro.methodology.ubd.MeasuredBoundPipeline`), whose
:meth:`~repro.methodology.ubd.MeasuredBoundReport.compose` feeds them
through the same :func:`compose_etb` below — the composition rules are
term-source agnostic.  Either way each term pads every request that
*visits* the resource, the MBTA way (Section 4.3 of the paper):

``etb = isolation + nr_bus * bound(bus) + nr_mem * (bound(memory) + bound(bus_response))``

where ``nr_bus`` is the task's bus request count and ``nr_mem`` the subset
that misses the L2 and reaches the memory stage.  The bounds assume at most
one outstanding demand request per core (true for the load/ifetch traffic
the methodology measures; deep store-buffer write bursts can exceed the
memory term — see the ROADMAP open items).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from ..config import ArchConfig
from ..errors import MethodologyError
from .etb import mbta_padding

#: Resources whose terms pad only requests that reach the memory stage.
_MEMORY_STAGE_RESOURCES = ("memory", "bus_response")


@dataclass(frozen=True)
class ComposedEtbReport:
    """Execution-time bound assembled from per-resource delay terms.

    Attributes:
        task_name: the analysed task.
        isolation_time: measured execution time in isolation (cycles).
        bus_requests: upper bound on the task's bus requests (``nr``).
        memory_requests: upper bound on the subset reaching the memory stage.
        terms: per-resource per-request delay bounds (cycles).
        pads: per-resource contention pads (``requests x term``).
        etb: the resulting end-to-end execution-time bound.
        observed_contended_time: contended measurement, if available.
    """

    task_name: str
    isolation_time: int
    bus_requests: int
    memory_requests: int
    terms: Dict[str, int]
    pads: Dict[str, int]
    etb: int
    observed_contended_time: Optional[int] = None

    @property
    def pad(self) -> int:
        """Total contention pad on top of the isolation time."""
        return self.etb - self.isolation_time

    @property
    def covers_observation(self) -> Optional[bool]:
        """True/False if an observation is available, ``None`` otherwise."""
        if self.observed_contended_time is None:
            return None
        return self.etb >= self.observed_contended_time

    @property
    def margin(self) -> Optional[int]:
        """ETB minus the observation (negative means the bound was violated)."""
        if self.observed_contended_time is None:
            return None
        return self.etb - self.observed_contended_time

    def summary(self) -> str:
        """One-line human readable report."""
        decomposition = " + ".join(f"{resource}:{pad}" for resource, pad in self.pads.items())
        base = (
            f"{self.task_name}: isolation {self.isolation_time} + pads "
            f"[{decomposition}] = ETB {self.etb} cycles "
            f"(nr={self.bus_requests}, nr_mem={self.memory_requests})"
        )
        if self.observed_contended_time is None:
            return base
        status = "covers" if self.covers_observation else "VIOLATED by"
        return f"{base}; {status} observed {self.observed_contended_time}"


def per_resource_bounds(config: ArchConfig) -> Dict[str, int]:
    """Per-resource per-request delay terms of ``config``'s topology.

    Thin forwarding of :attr:`~repro.config.ArchConfig.ubd_terms`, exposed
    here so methodology consumers do not reach into the configuration layer
    for bound semantics.
    """
    return dict(config.ubd_terms)


def end_to_end_bound(config: ArchConfig) -> int:
    """Sum of the per-resource terms: the end-to-end per-request bound."""
    return sum(per_resource_bounds(config).values())


def compose_etb(
    task_name: str,
    isolation_time: int,
    bus_requests: int,
    memory_requests: int,
    terms: Mapping[str, int],
    observed_contended_time: Optional[int] = None,
) -> ComposedEtbReport:
    """Build the composed execution-time bound for one task.

    Args:
        task_name: label for the report.
        isolation_time: measured isolation execution time (cycles).
        bus_requests: bound on the task's bus requests (every request pays
            the ``bus`` term).
        memory_requests: bound on the requests reaching the memory stage
            (each additionally pays every memory-stage term).
        terms: per-resource per-request delay bounds, e.g.
            :func:`per_resource_bounds` output.
        observed_contended_time: contended measurement to check coverage.
    """
    if isolation_time < 0:
        raise MethodologyError(f"isolation time must be >= 0, got {isolation_time}")
    if memory_requests > bus_requests:
        raise MethodologyError(
            f"memory requests ({memory_requests}) cannot exceed bus requests "
            f"({bus_requests}): every memory access crosses the bus first"
        )
    if memory_requests > 0 and not any(resource in _MEMORY_STAGE_RESOURCES for resource in terms):
        # Refuse rather than underbound (the same rule ArchConfig.ubd_terms
        # applies to unfair policies): a bus-only decomposition carries no
        # terms for DRAM-bank or response-port contention, so a task whose
        # requests reach the memory stage would get an ETB real contention
        # can exceed.
        raise MethodologyError(
            f"{memory_requests} request(s) reach the memory stage but the "
            "terms carry no memory-stage entries: the bus_only decomposition "
            "does not bound DRAM-stage contention — use a chained topology "
            "(e.g. bus_bank_queues) or a preloaded workload with "
            "memory_requests=0"
        )
    pads: Dict[str, int] = {}
    for resource, term in terms.items():
        requests = (memory_requests if resource in _MEMORY_STAGE_RESOURCES else bus_requests)
        pads[resource] = mbta_padding(requests, term)
    return ComposedEtbReport(
        task_name=task_name,
        isolation_time=isolation_time,
        bus_requests=bus_requests,
        memory_requests=memory_requests,
        terms=dict(terms),
        pads=pads,
        etb=isolation_time + sum(pads.values()),
        observed_contended_time=observed_contended_time,
    )


def compose_etb_for_config(
    config: ArchConfig,
    task_name: str,
    isolation_time: int,
    bus_requests: int,
    memory_requests: int,
    observed_contended_time: Optional[int] = None,
) -> ComposedEtbReport:
    """Convenience wrapper using ``config``'s analytical per-resource terms."""
    return compose_etb(
        task_name=task_name,
        isolation_time=isolation_time,
        bus_requests=bus_requests,
        memory_requests=memory_requests,
        terms=per_resource_bounds(config),
        observed_contended_time=observed_contended_time,
    )
