"""Durable, SQLite-indexed result store for campaign runs.

:class:`ResultStore` is the scale successor of the flat per-file
:class:`~repro.campaign.cache.ResultCache`.  It keeps the cache's
content-addressed JSON artifacts — one ``<digest>.json`` per run, written
atomically, human-inspectable, the durable source of truth — but adds a
SQLite index (``index.sqlite``, WAL mode) so a campaign resolves its whole
grid with a handful of batched queries instead of one filesystem probe per
run:

* ``runs(digest PRIMARY KEY, campaign_id, seed, created_at, path, record)``
  — one row per stored run.  ``record`` carries a write-through copy of the
  artifact's canonical JSON, so a warm campaign reads *zero* artifact
  files; ``path`` names the artifact the row can always be rebuilt from.
* ``meta(key, value)`` — the schema-version stamp
  (:data:`STORE_SCHEMA_VERSION`).  A store written by a newer layout is
  refused instead of misread.

Durability and concurrency contract:

* Artifacts are written first (tempfile + ``os.replace``), index rows
  second, inside one transaction — a crash can leave an artifact without a
  row (repaired by :meth:`ResultStore.rebuild_index`) but never a row
  without its artifact.
* WAL mode plus a busy timeout makes concurrent writers safe: two runners
  sharing one store commit batches independently; ``INSERT OR REPLACE`` on
  the content digest makes double-writes idempotent (both writers store the
  same bytes for the same digest, by construction of the digest).
* A corrupt or deleted index is an inconvenience, not data loss: the store
  drops it and re-indexes every readable ``*.json`` artifact.
* Lookups ignore ``campaign_id`` — any historical campaign's hit
  short-circuits simulation, which is what makes overlapping sweeps only
  simulate their frontier.
* Long-lived multi-threaded handles (the ``repro-bounds serve`` daemon) get
  a per-thread connection: every thread that touches the index lazily opens
  its own ``sqlite3`` connection, so no statement ever crosses threads.  On
  top of WAL's ``busy_timeout``, every statement retries with bounded
  exponential backoff when SQLite reports ``database is locked`` — a
  maintenance command racing a daemon degrades to a short wait, never to a
  crash.
* A daemon marks the campaigns it is actively executing via the ``claims``
  table (:meth:`ResultStore.claim`); ``gc`` skips — and reports — rows of
  actively claimed campaigns instead of deleting data another process is
  still appending to.  Claims expire after :data:`CLAIM_TTL_SECONDS` or
  when their process dies, so a crashed daemon never pins rows forever.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, TypeVar

from ..errors import ConfigurationError

#: Layout version of the index; bump when the table shapes or the meaning
#: of a column changes.  A store stamped with a *newer* version is refused
#: (the artifacts remain readable by re-indexing with the newer tool); an
#: older or missing stamp triggers a transparent rebuild.  Version 2 adds
#: the ``claims`` table (daemon in-use markers consulted by ``gc``).
STORE_SCHEMA_VERSION = 2

#: A claim whose heartbeat is older than this (and whose process cannot be
#: confirmed alive) is considered abandoned: ``gc`` ignores it and deletes
#: the stale row.  Daemons refresh their claims far more often than this.
CLAIM_TTL_SECONDS = 3600.0

#: Bounded retry-with-backoff for ``database is locked``/``busy`` errors:
#: attempt count and initial sleep (doubled per attempt, ~3 s worst case).
_LOCK_RETRY_ATTEMPTS = 6
_LOCK_RETRY_BASE_DELAY = 0.05

_T = TypeVar("_T")

#: File name of the SQLite index inside a store directory.
INDEX_NAME = "index.sqlite"

#: Subdirectory holding the replay engine's captured core traces
#: (``traces/<trace_key>.json``); see the "Trace section" methods.
TRACES_DIR_NAME = "traces"

#: ``campaign_id`` recorded for rows imported from a legacy flat cache.
LEGACY_CAMPAIGN_ID = "legacy-migration"

#: SQLite bind-variable budget per batched query (the engine's historical
#: default limit is 999; stay comfortably below it).
_BATCH = 500

_CREATE_RUNS = """
CREATE TABLE IF NOT EXISTS runs (
    digest      TEXT PRIMARY KEY,
    campaign_id TEXT NOT NULL,
    seed        INTEGER,
    created_at  REAL NOT NULL,
    path        TEXT NOT NULL,
    record      TEXT NOT NULL
)
"""

_CREATE_META = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
)
"""

_CREATE_CLAIMS = """
CREATE TABLE IF NOT EXISTS claims (
    campaign_id TEXT PRIMARY KEY,
    pid         INTEGER NOT NULL,
    heartbeat   REAL NOT NULL
)
"""


def _pid_alive(pid: int) -> bool:
    """Best-effort liveness probe; unknown states count as alive."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        return True  # exists but owned by someone else (EPERM), or exotic
    return True


@dataclass(frozen=True)
class GcOutcome:
    """What one :meth:`ResultStore.gc` pass did.

    ``skipped_in_use`` rows were old enough to expire but belong to a
    campaign another process actively claims — they are reported, not
    deleted, so a daemon's in-flight campaign never loses rows under it.
    """

    removed: int
    skipped_in_use: int
    in_use_campaigns: Tuple[str, ...] = ()
    traces_removed: int = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "removed": self.removed,
            "skipped_in_use": self.skipped_in_use,
            "in_use_campaigns": list(self.in_use_campaigns),
            "traces_removed": self.traces_removed,
        }


@dataclass
class StoreCounters:
    """Operation counters — what the throughput bench and tests assert on.

    ``index_queries`` counts SQL statements that hit the index,
    ``artifact_reads``/``artifact_writes`` count JSON files opened.  A warm
    grid lookup must cost O(grid / batch) queries and zero artifact reads;
    the legacy per-file cache costs one filesystem probe per run.
    """

    index_queries: int = 0
    artifact_reads: int = 0
    artifact_writes: int = 0
    batches_flushed: int = 0
    trace_hits: int = 0
    trace_misses: int = 0
    trace_writes: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "index_queries": self.index_queries,
            "artifact_reads": self.artifact_reads,
            "artifact_writes": self.artifact_writes,
            "batches_flushed": self.batches_flushed,
            "trace_hits": self.trace_hits,
            "trace_misses": self.trace_misses,
            "trace_writes": self.trace_writes,
        }

    def reset(self) -> None:
        """Zero every counter (phase boundaries in benches and tests)."""
        self.index_queries = 0
        self.artifact_reads = 0
        self.artifact_writes = 0
        self.batches_flushed = 0
        self.trace_hits = 0
        self.trace_misses = 0
        self.trace_writes = 0


class ResultStore:
    """Digest-keyed durable run store: JSON artifacts + SQLite index.

    Args:
        directory: store root (created on demand).  Holds the ``*.json``
            artifacts and ``index.sqlite``.
        campaign_id: label stamped on rows written through this handle so
            ``stats()`` can attribute entries to campaigns.  Lookups never
            filter on it — cross-campaign dedup is the point of the store.
    """

    def __init__(self, directory: "os.PathLike[str] | str", campaign_id: str = "adhoc") -> None:
        self.directory = Path(directory)
        self.campaign_id = campaign_id
        self.counters = StoreCounters()
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise ConfigurationError(
                f"cannot use {self.directory} as a result store: {exc}"
            ) from exc
        self._local = threading.local()
        self._connections: List[sqlite3.Connection] = []
        self._connections_lock = threading.Lock()
        self._open_index()

    # ------------------------------------------------------------------ #
    # Index lifecycle.
    # ------------------------------------------------------------------ #

    @property
    def index_path(self) -> Path:
        return self.directory / INDEX_NAME

    def _connect(self) -> sqlite3.Connection:
        # check_same_thread=False so close() can reap every thread's
        # connection; all *statements* stay on the connection's own thread
        # via the thread-local discipline of ``_db``.
        db = sqlite3.connect(self.index_path, timeout=30.0, check_same_thread=False)
        db.execute("PRAGMA journal_mode=WAL")
        db.execute("PRAGMA synchronous=NORMAL")
        db.execute("PRAGMA busy_timeout=30000")
        return db

    @property
    def _db(self) -> sqlite3.Connection:
        """This thread's connection, opened lazily.

        A long-lived store handle is shared by a daemon's scheduler,
        worker-handler and maintenance threads; per-thread connections mean
        no cursor or transaction ever crosses a thread boundary, which is
        the discipline SQLite's serialized mode is fast at and WAL makes
        concurrent.
        """
        db: Optional[sqlite3.Connection] = getattr(self._local, "db", None)
        if db is None:
            db = self._connect()
            self._local.db = db
            with self._connections_lock:
                self._connections.append(db)
        return db

    def _discard_thread_connection(self) -> None:
        db: Optional[sqlite3.Connection] = getattr(self._local, "db", None)
        if db is not None:
            with self._connections_lock:
                if db in self._connections:
                    self._connections.remove(db)
            db.close()
            self._local.db = None

    def _with_lock_retry(self, operation: Callable[[], _T]) -> _T:
        """Run ``operation``, retrying on ``database is locked``/``busy``.

        ``busy_timeout`` already absorbs most writer contention, but a
        checkpoint or a writer stuck beyond the timeout still surfaces as
        ``sqlite3.OperationalError``; bounded exponential backoff turns
        that into a short stall instead of a failed campaign or gc pass.
        Non-lock operational errors propagate immediately.
        """
        delay = _LOCK_RETRY_BASE_DELAY
        for attempt in range(_LOCK_RETRY_ATTEMPTS):
            try:
                return operation()
            except sqlite3.OperationalError as exc:
                message = str(exc).lower()
                if "locked" not in message and "busy" not in message:
                    raise
                if attempt == _LOCK_RETRY_ATTEMPTS - 1:
                    raise
                time.sleep(delay)
                delay *= 2
        raise AssertionError("unreachable")  # pragma: no cover

    def _open_index(self) -> None:
        try:
            db = self._db
            version = self._read_version(db)
        except sqlite3.DatabaseError:
            # Not a database / torn file: rebuild the index from the
            # artifacts, which remain the source of truth.
            self._recover_index()
            return
        if version is None:
            # Fresh index.  Artifacts are the source of truth, so adopt any
            # already in the directory (lost/deleted index, rsynced store).
            self._initialise(db)
            self.rebuild_index()
            return
        if version > STORE_SCHEMA_VERSION:
            self._discard_thread_connection()
            raise ConfigurationError(
                f"{self.index_path} uses store schema {version}, newer than "
                f"this tool's schema {STORE_SCHEMA_VERSION}; upgrade the "
                "tool or re-index the artifacts with `repro-bounds cache migrate`"
            )
        if version < STORE_SCHEMA_VERSION:
            self._recover_index()

    @staticmethod
    def _read_version(db: sqlite3.Connection) -> Optional[int]:
        try:
            row = db.execute("SELECT value FROM meta WHERE key = 'schema_version'").fetchone()
        except sqlite3.OperationalError:
            return None  # fresh database: no tables yet
        if row is None:
            return None
        try:
            return int(row[0])
        except (TypeError, ValueError):
            raise sqlite3.DatabaseError(f"malformed schema_version stamp {row[0]!r}")

    def _initialise(self, db: sqlite3.Connection) -> None:
        with db:
            db.execute(_CREATE_RUNS)
            db.execute(_CREATE_META)
            db.execute(_CREATE_CLAIMS)
            db.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES ('schema_version', ?)",
                (str(STORE_SCHEMA_VERSION),),
            )

    def _recover_index(self) -> None:
        """Drop the unusable index and rebuild it from the JSON artifacts."""
        self._discard_thread_connection()
        for suffix in ("", "-wal", "-shm"):
            try:
                os.unlink(f"{self.index_path}{suffix}")
            except OSError:
                pass
        self._initialise(self._db)
        self.rebuild_index()

    def close(self) -> None:
        """Close every thread's connection (the store can be reopened any time)."""
        with self._connections_lock:
            connections = list(self._connections)
            self._connections.clear()
        for db in connections:
            db.close()
        self._local = threading.local()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Lookups.
    # ------------------------------------------------------------------ #

    def get_many(self, digests: Sequence[str]) -> Dict[str, Dict[str, object]]:
        """Resolve ``digests`` in batched index queries.

        Returns a mapping of the *hits*; absent keys are misses.  One query
        resolves up to ``_BATCH`` digests, so a whole campaign grid costs
        ``ceil(grid / _BATCH)`` queries and zero artifact reads — versus one
        filesystem probe per run for the flat per-file cache.  A row whose
        inline record is unreadable falls back to its artifact; if that too
        is unreadable the digest is a miss (the run is simply re-simulated).
        """
        hits: Dict[str, Dict[str, object]] = {}
        unique = list(dict.fromkeys(digests))
        for start in range(0, len(unique), _BATCH):
            chunk = unique[start : start + _BATCH]
            marks = ",".join("?" for _ in chunk)
            self.counters.index_queries += 1
            rows = self._with_lock_retry(
                lambda: self._db.execute(
                    f"SELECT digest, path, record FROM runs WHERE digest IN ({marks})",
                    chunk,
                ).fetchall()
            )
            for digest, path, text in rows:
                record = self._decode(digest, text)
                if record is None:
                    record = self._read_artifact(digest, Path(path))
                if record is not None:
                    hits[digest] = record
        return hits

    def get(self, digest: str) -> Optional[Dict[str, object]]:
        """Single-digest convenience wrapper over :meth:`get_many`."""
        return self.get_many([digest]).get(digest)

    def _decode(self, digest: str, text: object) -> Optional[Dict[str, object]]:
        try:
            record = json.loads(text)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            return None
        if not isinstance(record, dict) or record.get("digest") != digest:
            return None
        return record

    def _read_artifact(self, digest: str, path: Path) -> Optional[Dict[str, object]]:
        # Index rows store bare artifact names; anchor those under the
        # store root.  Paths that already carry a directory (``glob``
        # results during rebuild/migration) are used as-is.
        if not path.is_absolute() and path.parent == Path("."):
            path = self.directory / path
        self.counters.artifact_reads += 1
        try:
            with path.open("r", encoding="utf-8") as handle:
                record = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(record, dict) or record.get("digest") != digest:
            return None
        return record

    def __contains__(self, digest: str) -> bool:
        self.counters.index_queries += 1
        row = self._with_lock_retry(
            lambda: self._db.execute("SELECT 1 FROM runs WHERE digest = ?", (digest,)).fetchone()
        )
        return row is not None

    def __len__(self) -> int:
        self.counters.index_queries += 1
        row = self._with_lock_retry(
            lambda: self._db.execute("SELECT COUNT(*) FROM runs").fetchone()
        )
        return int(row[0])

    # ------------------------------------------------------------------ #
    # Writes.
    # ------------------------------------------------------------------ #

    def put_many(self, items: Sequence[Tuple[str, Dict[str, object]]]) -> None:
        """Store ``(digest, record)`` pairs: artifacts first, then one
        indexed transaction.

        The write order is the crash-safety contract: after any prefix of
        this method, every indexed row has its artifact on disk.  Replays
        (same digest again) are idempotent.
        """
        if not items:
            return
        rows: List[Tuple[str, str, Optional[int], float, str, str]] = []
        now = time.time()
        for digest, record in items:
            text = json.dumps(record, sort_keys=True, separators=(",", ":"))
            name = f"{digest}.json"
            self._write_artifact(name, text)
            seed = record.get("seed")
            rows.append(
                (
                    digest,
                    self.campaign_id,
                    seed if isinstance(seed, int) else None,
                    now,
                    name,
                    text,
                )
            )
        self.counters.index_queries += 1
        self.counters.batches_flushed += 1

        def flush() -> None:
            with self._db:
                self._db.executemany(
                    "INSERT OR REPLACE INTO runs "
                    "(digest, campaign_id, seed, created_at, path, record) "
                    "VALUES (?, ?, ?, ?, ?, ?)",
                    rows,
                )

        self._with_lock_retry(flush)

    def put(self, digest: str, record: Dict[str, object]) -> None:
        """Single-record convenience wrapper over :meth:`put_many`."""
        self.put_many([(digest, record)])

    def _write_artifact(self, name: str, text: str) -> None:
        path = self.directory / name
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        self.counters.artifact_writes += 1
        with tmp.open("w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp, path)

    # ------------------------------------------------------------------ #
    # Trace section: the replay engine's durable core-trace memos.
    # ------------------------------------------------------------------ #
    #
    # Captured core traces (repro.sim.trace.CoreTrace payloads) live under
    # ``traces/<key>.json``, content-addressed by the core-side trace key.
    # They are deliberately *not* indexed: a trace lookup is a single
    # exact-path probe (no grid resolution to batch), the subdirectory
    # keeps them invisible to the run artifacts' ``glob("*.json")``, and a
    # missing or corrupt file is always just a cache miss — the capture
    # run regenerates it.  Writes are atomic (tempfile + os.replace) and
    # idempotent by construction of the key.

    @property
    def traces_dir(self) -> Path:
        return self.directory / TRACES_DIR_NAME

    def _trace_path(self, key: str) -> Path:
        if not key or not all(c in "0123456789abcdef" for c in key):
            raise ConfigurationError(f"malformed trace key: {key!r}")
        return self.traces_dir / f"{key}.json"

    def get_trace(self, key: str) -> Optional[Dict[str, object]]:
        """The stored trace payload for ``key``, or ``None``.

        Schema validation is the caller's job
        (:meth:`repro.sim.trace.CoreTrace.from_payload` treats stale
        schemas as misses); this layer only promises a well-formed dict.
        """
        path = self._trace_path(key)
        try:
            with path.open("r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            self.counters.trace_misses += 1
            return None
        if not isinstance(payload, dict):
            self.counters.trace_misses += 1
            return None
        self.counters.trace_hits += 1
        return payload

    def put_trace(self, key: str, payload: Dict[str, object]) -> None:
        """Persist a trace payload under ``traces/<key>.json`` atomically."""
        path = self._trace_path(key)
        self.traces_dir.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        self.counters.trace_writes += 1
        with tmp.open("w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True, separators=(",", ":"))
        os.replace(tmp, path)

    def trace_stats(self) -> Dict[str, int]:
        """Entry count and on-disk bytes of the trace section."""
        entries = 0
        total = 0
        try:
            for path in self.traces_dir.glob("*.json"):
                entries += 1
                try:
                    total += path.stat().st_size
                except OSError:
                    pass
        except OSError:
            pass
        return {"entries": entries, "bytes": total}

    # ------------------------------------------------------------------ #
    # Maintenance: rebuild, migration, stats, gc.
    # ------------------------------------------------------------------ #

    def rebuild_index(self) -> int:
        """Re-index every readable ``*.json`` artifact not already indexed.

        Returns the number of rows added.  Used both for corrupt-index
        recovery and to adopt artifacts copied in from elsewhere.
        """
        indexed = {
            row[0]
            for row in self._with_lock_retry(
                lambda: self._db.execute("SELECT digest FROM runs").fetchall()
            )
        }
        self.counters.index_queries += 1
        added = 0
        batch: List[Tuple[str, Dict[str, object]]] = []
        for path in sorted(self.directory.glob("*.json")):
            digest = path.stem
            if digest in indexed:
                continue
            record = self._read_artifact(digest, path)
            if record is None:
                continue
            batch.append((digest, record))
            added += 1
            if len(batch) >= _BATCH:
                self.put_many(batch)
                batch = []
        self.put_many(batch)
        return added

    def migrate_legacy(self, legacy_dir: "os.PathLike[str] | str") -> int:
        """One-shot import of a legacy flat :class:`ResultCache` directory.

        Copies every readable ``<digest>.json`` whose embedded digest
        matches its file name into the store (artifact + index row, stamped
        ``legacy-migration``), skipping digests already present.  The source
        directory is left untouched.  Returns the number of imported runs.
        """
        source = Path(legacy_dir)
        if not source.is_dir():
            raise ConfigurationError(f"legacy cache directory {source} does not exist")
        if source.resolve() == self.directory.resolve():
            # In-place adoption: the flat cache layout is already the
            # store's artifact layout; only the index is missing.
            return self.rebuild_index()
        campaign_id = self.campaign_id
        self.campaign_id = LEGACY_CAMPAIGN_ID
        try:
            imported = 0
            batch: List[Tuple[str, Dict[str, object]]] = []
            candidates = sorted(source.glob("*.json"))
            known = self.get_many([path.stem for path in candidates])
            for path in candidates:
                digest = path.stem
                if digest in known:
                    continue
                record = self._read_artifact(digest, path)
                if record is None:
                    continue
                batch.append((digest, record))
                imported += 1
                if len(batch) >= _BATCH:
                    self.put_many(batch)
                    batch = []
            self.put_many(batch)
        finally:
            self.campaign_id = campaign_id
        return imported

    # ------------------------------------------------------------------ #
    # Claims: in-use markers for long-lived (daemon) campaign execution.
    # ------------------------------------------------------------------ #

    def claim(self, campaign_id: Optional[str] = None) -> None:
        """Mark ``campaign_id`` (default: this handle's) as actively in use.

        Claims are advisory: lookups and writes ignore them, but ``gc``
        skips the claimed campaign's rows and ``stats`` reports the claim.
        Re-claiming refreshes the heartbeat; daemons call this periodically
        so a claim outliving :data:`CLAIM_TTL_SECONDS` means the claimant
        is gone.
        """
        target = campaign_id if campaign_id is not None else self.campaign_id
        now = time.time()

        def upsert() -> None:
            with self._db:
                self._db.execute(
                    "INSERT OR REPLACE INTO claims (campaign_id, pid, heartbeat) "
                    "VALUES (?, ?, ?)",
                    (target, os.getpid(), now),
                )

        self.counters.index_queries += 1
        self._with_lock_retry(upsert)

    def release_claim(self, campaign_id: Optional[str] = None) -> None:
        """Drop the in-use marker for ``campaign_id`` (default: this handle's)."""
        target = campaign_id if campaign_id is not None else self.campaign_id

        def delete() -> None:
            with self._db:
                self._db.execute("DELETE FROM claims WHERE campaign_id = ?", (target,))

        self.counters.index_queries += 1
        self._with_lock_retry(delete)

    def active_claims(self, ttl: float = CLAIM_TTL_SECONDS) -> Dict[str, Dict[str, object]]:
        """Live in-use markers: fresh heartbeat, or a confirmed-alive pid.

        A claim is *live* while its heartbeat is younger than ``ttl``; an
        older claim survives only if its process can be confirmed alive on
        this host (a crashed daemon's claim therefore expires on its own).
        """
        self.counters.index_queries += 1
        rows = self._with_lock_retry(
            lambda: self._db.execute("SELECT campaign_id, pid, heartbeat FROM claims").fetchall()
        )
        now = time.time()
        active: Dict[str, Dict[str, object]] = {}
        for campaign_id, pid, heartbeat in rows:
            age = now - float(heartbeat)
            if age > ttl and not _pid_alive(int(pid)):
                continue
            active[str(campaign_id)] = {"pid": int(pid), "age_seconds": age}
        return active

    def stats(self) -> Dict[str, object]:
        """Entries, per-campaign attribution, claims and on-disk sizes."""
        self.counters.index_queries += 2
        entries = int(
            self._with_lock_retry(
                lambda: self._db.execute("SELECT COUNT(*) FROM runs").fetchone()
            )[0]
        )
        campaigns = {
            str(campaign): int(count)
            for campaign, count in self._with_lock_retry(
                lambda: self._db.execute(
                    "SELECT campaign_id, COUNT(*) FROM runs "
                    "GROUP BY campaign_id ORDER BY campaign_id"
                ).fetchall()
            )
        }
        artifact_bytes = sum(
            path.stat().st_size for path in self.directory.glob("*.json")
        )
        try:
            index_bytes = self.index_path.stat().st_size
        except OSError:
            index_bytes = 0
        return {
            "directory": str(self.directory),
            "schema": STORE_SCHEMA_VERSION,
            "entries": entries,
            "campaigns": campaigns,
            "active_claims": self.active_claims(),
            "artifact_bytes": artifact_bytes,
            "index_bytes": index_bytes,
            "traces": self.trace_stats(),
        }

    def gc(self, keep_days: float) -> GcOutcome:
        """Delete runs older than ``keep_days`` days (rows *and* artifacts).

        Rows belonging to an actively claimed campaign (a daemon holding
        the store open) are left alone and reported via
        :attr:`GcOutcome.skipped_in_use`.  Artifacts are unlinked after
        their rows so a crash mid-gc leaves re-indexable files, never
        dangling rows.  Stale claims (expired heartbeat, dead pid) are
        purged as a side effect.  The trace section ages by file mtime
        (traces are unindexed); an expired trace is only a future capture
        run, never data loss.
        """
        if keep_days < 0:
            raise ConfigurationError(f"keep_days must be >= 0, got {keep_days}")
        cutoff = time.time() - keep_days * 86400.0
        traces_removed = self._gc_traces(cutoff)
        active = self.active_claims()
        self.counters.index_queries += 2
        rows = self._with_lock_retry(
            lambda: self._db.execute(
                "SELECT digest, path, campaign_id FROM runs WHERE created_at < ?",
                (cutoff,),
            ).fetchall()
        )
        victims: List[Tuple[str, str]] = []
        skipped = 0
        in_use: Dict[str, None] = {}
        for digest, path, campaign_id in rows:
            if str(campaign_id) in active:
                skipped += 1
                in_use[str(campaign_id)] = None
                continue
            victims.append((str(digest), str(path)))
        self._purge_stale_claims(active)
        if not victims:
            return GcOutcome(
                removed=0,
                skipped_in_use=skipped,
                in_use_campaigns=tuple(in_use),
                traces_removed=traces_removed,
            )

        def delete_rows() -> None:
            with self._db:
                for start in range(0, len(victims), _BATCH):
                    chunk = victims[start : start + _BATCH]
                    marks = ",".join("?" for _ in chunk)
                    self._db.execute(
                        f"DELETE FROM runs WHERE digest IN ({marks})",
                        [digest for digest, _ in chunk],
                    )

        self._with_lock_retry(delete_rows)
        for _, path in victims:
            target = Path(path)
            if not target.is_absolute():
                target = self.directory / target
            try:
                os.unlink(target)
            except OSError:
                pass
        return GcOutcome(
            removed=len(victims),
            skipped_in_use=skipped,
            in_use_campaigns=tuple(in_use),
            traces_removed=traces_removed,
        )

    def _gc_traces(self, cutoff: float) -> int:
        """Unlink trace files last modified before ``cutoff``; returns count."""
        removed = 0
        try:
            candidates = list(self.traces_dir.glob("*.json"))
        except OSError:
            return 0
        for path in candidates:
            try:
                if path.stat().st_mtime < cutoff:
                    os.unlink(path)
                    removed += 1
            except OSError:
                pass
        return removed

    def _purge_stale_claims(self, active: Dict[str, Dict[str, object]]) -> None:
        """Drop claims rows that are no longer live (dead pid, old heartbeat)."""

        def purge() -> None:
            rows = self._db.execute("SELECT campaign_id FROM claims").fetchall()
            stale = [str(cid) for (cid,) in rows if str(cid) not in active]
            if not stale:
                return
            with self._db:
                marks = ",".join("?" for _ in stale)
                self._db.execute(
                    f"DELETE FROM claims WHERE campaign_id IN ({marks})", stale
                )

        self._with_lock_retry(purge)


def is_store_directory(directory: "os.PathLike[str] | str") -> bool:
    """True when ``directory`` holds (or held) a SQLite-indexed store."""
    return (Path(directory) / INDEX_NAME).exists()


def iter_legacy_entries(directory: "os.PathLike[str] | str") -> Iterable[Tuple[str, Path]]:
    """Yield ``(digest, path)`` for every flat-cache artifact in ``directory``."""
    root = Path(directory)
    for path in sorted(root.glob("*.json")):
        yield path.stem, path
