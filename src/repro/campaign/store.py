"""Durable, SQLite-indexed result store for campaign runs.

:class:`ResultStore` is the scale successor of the flat per-file
:class:`~repro.campaign.cache.ResultCache`.  It keeps the cache's
content-addressed JSON artifacts — one ``<digest>.json`` per run, written
atomically, human-inspectable, the durable source of truth — but adds a
SQLite index (``index.sqlite``, WAL mode) so a campaign resolves its whole
grid with a handful of batched queries instead of one filesystem probe per
run:

* ``runs(digest PRIMARY KEY, campaign_id, seed, created_at, path, record)``
  — one row per stored run.  ``record`` carries a write-through copy of the
  artifact's canonical JSON, so a warm campaign reads *zero* artifact
  files; ``path`` names the artifact the row can always be rebuilt from.
* ``meta(key, value)`` — the schema-version stamp
  (:data:`STORE_SCHEMA_VERSION`).  A store written by a newer layout is
  refused instead of misread.

Durability and concurrency contract:

* Artifacts are written first (tempfile + ``os.replace``), index rows
  second, inside one transaction — a crash can leave an artifact without a
  row (repaired by :meth:`ResultStore.rebuild_index`) but never a row
  without its artifact.
* WAL mode plus a busy timeout makes concurrent writers safe: two runners
  sharing one store commit batches independently; ``INSERT OR REPLACE`` on
  the content digest makes double-writes idempotent (both writers store the
  same bytes for the same digest, by construction of the digest).
* A corrupt or deleted index is an inconvenience, not data loss: the store
  drops it and re-indexes every readable ``*.json`` artifact.
* Lookups ignore ``campaign_id`` — any historical campaign's hit
  short-circuits simulation, which is what makes overlapping sweeps only
  simulate their frontier.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError

#: Layout version of the index; bump when the table shapes or the meaning
#: of a column changes.  A store stamped with a *newer* version is refused
#: (the artifacts remain readable by re-indexing with the newer tool); an
#: older or missing stamp triggers a transparent rebuild.
STORE_SCHEMA_VERSION = 1

#: File name of the SQLite index inside a store directory.
INDEX_NAME = "index.sqlite"

#: ``campaign_id`` recorded for rows imported from a legacy flat cache.
LEGACY_CAMPAIGN_ID = "legacy-migration"

#: SQLite bind-variable budget per batched query (the engine's historical
#: default limit is 999; stay comfortably below it).
_BATCH = 500

_CREATE_RUNS = """
CREATE TABLE IF NOT EXISTS runs (
    digest      TEXT PRIMARY KEY,
    campaign_id TEXT NOT NULL,
    seed        INTEGER,
    created_at  REAL NOT NULL,
    path        TEXT NOT NULL,
    record      TEXT NOT NULL
)
"""

_CREATE_META = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
)
"""


@dataclass
class StoreCounters:
    """Operation counters — what the throughput bench and tests assert on.

    ``index_queries`` counts SQL statements that hit the index,
    ``artifact_reads``/``artifact_writes`` count JSON files opened.  A warm
    grid lookup must cost O(grid / batch) queries and zero artifact reads;
    the legacy per-file cache costs one filesystem probe per run.
    """

    index_queries: int = 0
    artifact_reads: int = 0
    artifact_writes: int = 0
    batches_flushed: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "index_queries": self.index_queries,
            "artifact_reads": self.artifact_reads,
            "artifact_writes": self.artifact_writes,
            "batches_flushed": self.batches_flushed,
        }

    def reset(self) -> None:
        """Zero every counter (phase boundaries in benches and tests)."""
        self.index_queries = 0
        self.artifact_reads = 0
        self.artifact_writes = 0
        self.batches_flushed = 0


class ResultStore:
    """Digest-keyed durable run store: JSON artifacts + SQLite index.

    Args:
        directory: store root (created on demand).  Holds the ``*.json``
            artifacts and ``index.sqlite``.
        campaign_id: label stamped on rows written through this handle so
            ``stats()`` can attribute entries to campaigns.  Lookups never
            filter on it — cross-campaign dedup is the point of the store.
    """

    def __init__(self, directory: "os.PathLike[str] | str", campaign_id: str = "adhoc") -> None:
        self.directory = Path(directory)
        self.campaign_id = campaign_id
        self.counters = StoreCounters()
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise ConfigurationError(
                f"cannot use {self.directory} as a result store: {exc}"
            ) from exc
        self._db = self._open_index()

    # ------------------------------------------------------------------ #
    # Index lifecycle.
    # ------------------------------------------------------------------ #

    @property
    def index_path(self) -> Path:
        return self.directory / INDEX_NAME

    def _connect(self) -> sqlite3.Connection:
        db = sqlite3.connect(self.index_path, timeout=30.0)
        db.execute("PRAGMA journal_mode=WAL")
        db.execute("PRAGMA synchronous=NORMAL")
        db.execute("PRAGMA busy_timeout=30000")
        return db

    def _open_index(self) -> sqlite3.Connection:
        try:
            db = self._connect()
            version = self._read_version(db)
        except sqlite3.DatabaseError:
            # Not a database / torn file: rebuild the index from the
            # artifacts, which remain the source of truth.
            return self._recover_index()
        if version is None:
            # Fresh index.  Artifacts are the source of truth, so adopt any
            # already in the directory (lost/deleted index, rsynced store).
            self._initialise(db)
            self._db = db
            self.rebuild_index()
            return db
        if version > STORE_SCHEMA_VERSION:
            db.close()
            raise ConfigurationError(
                f"{self.index_path} uses store schema {version}, newer than "
                f"this tool's schema {STORE_SCHEMA_VERSION}; upgrade the "
                "tool or re-index the artifacts with `repro-bounds cache migrate`"
            )
        if version < STORE_SCHEMA_VERSION:
            db.close()
            return self._recover_index()
        return db

    @staticmethod
    def _read_version(db: sqlite3.Connection) -> Optional[int]:
        try:
            row = db.execute("SELECT value FROM meta WHERE key = 'schema_version'").fetchone()
        except sqlite3.OperationalError:
            return None  # fresh database: no tables yet
        if row is None:
            return None
        try:
            return int(row[0])
        except (TypeError, ValueError):
            raise sqlite3.DatabaseError(f"malformed schema_version stamp {row[0]!r}")

    def _initialise(self, db: sqlite3.Connection) -> None:
        with db:
            db.execute(_CREATE_RUNS)
            db.execute(_CREATE_META)
            db.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES ('schema_version', ?)",
                (str(STORE_SCHEMA_VERSION),),
            )

    def _recover_index(self) -> sqlite3.Connection:
        """Drop the unusable index and rebuild it from the JSON artifacts."""
        for suffix in ("", "-wal", "-shm"):
            try:
                os.unlink(f"{self.index_path}{suffix}")
            except OSError:
                pass
        db = self._connect()
        self._initialise(db)
        self._db = db
        self.rebuild_index()
        return db

    def close(self) -> None:
        """Close the index connection (the store can be reopened any time)."""
        self._db.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Lookups.
    # ------------------------------------------------------------------ #

    def get_many(self, digests: Sequence[str]) -> Dict[str, Dict[str, object]]:
        """Resolve ``digests`` in batched index queries.

        Returns a mapping of the *hits*; absent keys are misses.  One query
        resolves up to ``_BATCH`` digests, so a whole campaign grid costs
        ``ceil(grid / _BATCH)`` queries and zero artifact reads — versus one
        filesystem probe per run for the flat per-file cache.  A row whose
        inline record is unreadable falls back to its artifact; if that too
        is unreadable the digest is a miss (the run is simply re-simulated).
        """
        hits: Dict[str, Dict[str, object]] = {}
        unique = list(dict.fromkeys(digests))
        for start in range(0, len(unique), _BATCH):
            chunk = unique[start : start + _BATCH]
            marks = ",".join("?" for _ in chunk)
            self.counters.index_queries += 1
            rows = self._db.execute(
                f"SELECT digest, path, record FROM runs WHERE digest IN ({marks})",
                chunk,
            ).fetchall()
            for digest, path, text in rows:
                record = self._decode(digest, text)
                if record is None:
                    record = self._read_artifact(digest, Path(path))
                if record is not None:
                    hits[digest] = record
        return hits

    def get(self, digest: str) -> Optional[Dict[str, object]]:
        """Single-digest convenience wrapper over :meth:`get_many`."""
        return self.get_many([digest]).get(digest)

    def _decode(self, digest: str, text: object) -> Optional[Dict[str, object]]:
        try:
            record = json.loads(text)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            return None
        if not isinstance(record, dict) or record.get("digest") != digest:
            return None
        return record

    def _read_artifact(self, digest: str, path: Path) -> Optional[Dict[str, object]]:
        # Index rows store bare artifact names; anchor those under the
        # store root.  Paths that already carry a directory (``glob``
        # results during rebuild/migration) are used as-is.
        if not path.is_absolute() and path.parent == Path("."):
            path = self.directory / path
        self.counters.artifact_reads += 1
        try:
            with path.open("r", encoding="utf-8") as handle:
                record = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(record, dict) or record.get("digest") != digest:
            return None
        return record

    def __contains__(self, digest: str) -> bool:
        self.counters.index_queries += 1
        row = self._db.execute("SELECT 1 FROM runs WHERE digest = ?", (digest,)).fetchone()
        return row is not None

    def __len__(self) -> int:
        self.counters.index_queries += 1
        row = self._db.execute("SELECT COUNT(*) FROM runs").fetchone()
        return int(row[0])

    # ------------------------------------------------------------------ #
    # Writes.
    # ------------------------------------------------------------------ #

    def put_many(self, items: Sequence[Tuple[str, Dict[str, object]]]) -> None:
        """Store ``(digest, record)`` pairs: artifacts first, then one
        indexed transaction.

        The write order is the crash-safety contract: after any prefix of
        this method, every indexed row has its artifact on disk.  Replays
        (same digest again) are idempotent.
        """
        if not items:
            return
        rows: List[Tuple[str, str, Optional[int], float, str, str]] = []
        now = time.time()
        for digest, record in items:
            text = json.dumps(record, sort_keys=True, separators=(",", ":"))
            name = f"{digest}.json"
            self._write_artifact(name, text)
            seed = record.get("seed")
            rows.append(
                (
                    digest,
                    self.campaign_id,
                    seed if isinstance(seed, int) else None,
                    now,
                    name,
                    text,
                )
            )
        self.counters.index_queries += 1
        self.counters.batches_flushed += 1
        with self._db:
            self._db.executemany(
                "INSERT OR REPLACE INTO runs "
                "(digest, campaign_id, seed, created_at, path, record) "
                "VALUES (?, ?, ?, ?, ?, ?)",
                rows,
            )

    def put(self, digest: str, record: Dict[str, object]) -> None:
        """Single-record convenience wrapper over :meth:`put_many`."""
        self.put_many([(digest, record)])

    def _write_artifact(self, name: str, text: str) -> None:
        path = self.directory / name
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        self.counters.artifact_writes += 1
        with tmp.open("w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp, path)

    # ------------------------------------------------------------------ #
    # Maintenance: rebuild, migration, stats, gc.
    # ------------------------------------------------------------------ #

    def rebuild_index(self) -> int:
        """Re-index every readable ``*.json`` artifact not already indexed.

        Returns the number of rows added.  Used both for corrupt-index
        recovery and to adopt artifacts copied in from elsewhere.
        """
        indexed = {
            row[0] for row in self._db.execute("SELECT digest FROM runs").fetchall()
        }
        self.counters.index_queries += 1
        added = 0
        batch: List[Tuple[str, Dict[str, object]]] = []
        for path in sorted(self.directory.glob("*.json")):
            digest = path.stem
            if digest in indexed:
                continue
            record = self._read_artifact(digest, path)
            if record is None:
                continue
            batch.append((digest, record))
            added += 1
            if len(batch) >= _BATCH:
                self.put_many(batch)
                batch = []
        self.put_many(batch)
        return added

    def migrate_legacy(self, legacy_dir: "os.PathLike[str] | str") -> int:
        """One-shot import of a legacy flat :class:`ResultCache` directory.

        Copies every readable ``<digest>.json`` whose embedded digest
        matches its file name into the store (artifact + index row, stamped
        ``legacy-migration``), skipping digests already present.  The source
        directory is left untouched.  Returns the number of imported runs.
        """
        source = Path(legacy_dir)
        if not source.is_dir():
            raise ConfigurationError(f"legacy cache directory {source} does not exist")
        if source.resolve() == self.directory.resolve():
            # In-place adoption: the flat cache layout is already the
            # store's artifact layout; only the index is missing.
            return self.rebuild_index()
        campaign_id = self.campaign_id
        self.campaign_id = LEGACY_CAMPAIGN_ID
        try:
            imported = 0
            batch: List[Tuple[str, Dict[str, object]]] = []
            candidates = sorted(source.glob("*.json"))
            known = self.get_many([path.stem for path in candidates])
            for path in candidates:
                digest = path.stem
                if digest in known:
                    continue
                record = self._read_artifact(digest, path)
                if record is None:
                    continue
                batch.append((digest, record))
                imported += 1
                if len(batch) >= _BATCH:
                    self.put_many(batch)
                    batch = []
            self.put_many(batch)
        finally:
            self.campaign_id = campaign_id
        return imported

    def stats(self) -> Dict[str, object]:
        """Entries, per-campaign attribution and on-disk sizes."""
        self.counters.index_queries += 2
        entries = int(self._db.execute("SELECT COUNT(*) FROM runs").fetchone()[0])
        campaigns = {
            str(campaign): int(count)
            for campaign, count in self._db.execute(
                "SELECT campaign_id, COUNT(*) FROM runs "
                "GROUP BY campaign_id ORDER BY campaign_id"
            ).fetchall()
        }
        artifact_bytes = sum(
            path.stat().st_size for path in self.directory.glob("*.json")
        )
        try:
            index_bytes = self.index_path.stat().st_size
        except OSError:
            index_bytes = 0
        return {
            "directory": str(self.directory),
            "schema": STORE_SCHEMA_VERSION,
            "entries": entries,
            "campaigns": campaigns,
            "artifact_bytes": artifact_bytes,
            "index_bytes": index_bytes,
        }

    def gc(self, keep_days: float) -> int:
        """Delete runs older than ``keep_days`` days (rows *and* artifacts).

        Returns the number of runs removed.  Artifacts are unlinked after
        their rows so a crash mid-gc leaves re-indexable files, never
        dangling rows.
        """
        if keep_days < 0:
            raise ConfigurationError(f"keep_days must be >= 0, got {keep_days}")
        cutoff = time.time() - keep_days * 86400.0
        self.counters.index_queries += 2
        victims = [
            (str(digest), str(path))
            for digest, path in self._db.execute(
                "SELECT digest, path FROM runs WHERE created_at < ?", (cutoff,)
            ).fetchall()
        ]
        if not victims:
            return 0
        with self._db:
            for start in range(0, len(victims), _BATCH):
                chunk = victims[start : start + _BATCH]
                marks = ",".join("?" for _ in chunk)
                self._db.execute(
                    f"DELETE FROM runs WHERE digest IN ({marks})",
                    [digest for digest, _ in chunk],
                )
        for _, path in victims:
            target = Path(path)
            if not target.is_absolute():
                target = self.directory / target
            try:
                os.unlink(target)
            except OSError:
                pass
        return len(victims)


def is_store_directory(directory: "os.PathLike[str] | str") -> bool:
    """True when ``directory`` holds (or held) a SQLite-indexed store."""
    return (Path(directory) / INDEX_NAME).exists()


def iter_legacy_entries(directory: "os.PathLike[str] | str") -> Iterable[Tuple[str, Path]]:
    """Yield ``(digest, path)`` for every flat-cache artifact in ``directory``."""
    root = Path(directory)
    for path in sorted(root.glob("*.json")):
        yield path.stem, path
