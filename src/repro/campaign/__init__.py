"""Parallel experiment-campaign engine with JSON artifacts.

The paper's evaluation is built on *campaigns*: large sweeps of
isolation-versus-contended simulation runs over workloads, contender counts,
arbiters and seeds.  This package makes such sweeps declarative, parallel
and cached:

* :class:`CampaignSpec` / :class:`RunDescriptor` — declare the grid of runs
  (:mod:`repro.campaign.spec`);
* :class:`ParallelRunner` / :func:`execute_shard` — execute descriptors as
  shards over a process pool with deterministic, order-independent results
  (:mod:`repro.campaign.runner`);
* :class:`ResultCache` / :class:`ResultStore` — content-addressed result
  backends so re-runs only simulate what changed; the store adds a durable
  SQLite index with cross-campaign dedup (:mod:`repro.campaign.cache`,
  :mod:`repro.campaign.store`);
* :func:`write_campaign_artifacts` / :class:`CampaignStreamWriter` /
  :func:`load_campaign` — the ``results.jsonl`` / ``summary.json`` /
  ``campaign.json`` artifact layer (:mod:`repro.campaign.artifacts`).

The CLI front-end is ``repro-bounds campaign --jobs N --out DIR``; the
report renderer lives in :mod:`repro.report.campaign`.
"""

from .artifacts import (
    CampaignArtifacts,
    CampaignStreamWriter,
    MANIFEST_NAME,
    RESULTS_NAME,
    SUMMARY_NAME,
    build_manifest,
    load_campaign,
    load_manifest,
    load_results,
    load_summary,
    write_campaign_artifacts,
    write_manifest,
)
from .cache import ResultCache
from .runner import (
    CampaignOutcome,
    ParallelRunner,
    RecordEmitter,
    ShardRun,
    ShardTask,
    compact_shard,
    default_shard_size,
    execute_run,
    execute_shard,
    histogram_from_json,
    summarize_records,
    workload_run_from_record,
)
from .spec import (
    KIND_RSK,
    KIND_SYNTHETIC,
    SCHEMA_VERSION,
    CampaignSpec,
    RunDescriptor,
    campaign_digest,
    workload_campaign_descriptors,
)
from .store import (
    CLAIM_TTL_SECONDS,
    LEGACY_CAMPAIGN_ID,
    STORE_SCHEMA_VERSION,
    GcOutcome,
    ResultStore,
    StoreCounters,
    is_store_directory,
)

__all__ = [
    "CLAIM_TTL_SECONDS",
    "CampaignArtifacts",
    "CampaignOutcome",
    "CampaignSpec",
    "CampaignStreamWriter",
    "GcOutcome",
    "KIND_RSK",
    "KIND_SYNTHETIC",
    "LEGACY_CAMPAIGN_ID",
    "MANIFEST_NAME",
    "ParallelRunner",
    "RESULTS_NAME",
    "RecordEmitter",
    "ResultCache",
    "ResultStore",
    "RunDescriptor",
    "SCHEMA_VERSION",
    "STORE_SCHEMA_VERSION",
    "SUMMARY_NAME",
    "ShardRun",
    "ShardTask",
    "StoreCounters",
    "build_manifest",
    "campaign_digest",
    "compact_shard",
    "default_shard_size",
    "execute_run",
    "execute_shard",
    "histogram_from_json",
    "is_store_directory",
    "load_campaign",
    "load_manifest",
    "load_results",
    "load_summary",
    "summarize_records",
    "workload_campaign_descriptors",
    "workload_run_from_record",
    "write_campaign_artifacts",
    "write_manifest",
]
