"""Parallel experiment-campaign engine with JSON artifacts.

The paper's evaluation is built on *campaigns*: large sweeps of
isolation-versus-contended simulation runs over workloads, contender counts,
arbiters and seeds.  This package makes such sweeps declarative, parallel
and cached:

* :class:`CampaignSpec` / :class:`RunDescriptor` — declare the grid of runs
  (:mod:`repro.campaign.spec`);
* :class:`ParallelRunner` / :func:`execute_run` — execute descriptors over a
  process pool with deterministic, order-independent results
  (:mod:`repro.campaign.runner`);
* :class:`ResultCache` — content-addressed cache so re-runs only simulate
  what changed (:mod:`repro.campaign.cache`);
* :func:`write_campaign_artifacts` / :func:`load_campaign` — the
  ``results.jsonl`` / ``summary.json`` artifact layer
  (:mod:`repro.campaign.artifacts`).

The CLI front-end is ``repro-bounds campaign --jobs N --out DIR``; the
report renderer lives in :mod:`repro.report.campaign`.
"""

from .artifacts import (
    CampaignArtifacts,
    RESULTS_NAME,
    SUMMARY_NAME,
    load_campaign,
    load_results,
    load_summary,
    write_campaign_artifacts,
)
from .cache import ResultCache
from .runner import (
    CampaignOutcome,
    ParallelRunner,
    execute_run,
    histogram_from_json,
    summarize_records,
    workload_run_from_record,
)
from .spec import (
    KIND_RSK,
    KIND_SYNTHETIC,
    SCHEMA_VERSION,
    CampaignSpec,
    RunDescriptor,
    workload_campaign_descriptors,
)

__all__ = [
    "CampaignArtifacts",
    "CampaignOutcome",
    "CampaignSpec",
    "KIND_RSK",
    "KIND_SYNTHETIC",
    "ParallelRunner",
    "RESULTS_NAME",
    "ResultCache",
    "RunDescriptor",
    "SCHEMA_VERSION",
    "SUMMARY_NAME",
    "execute_run",
    "histogram_from_json",
    "load_campaign",
    "load_results",
    "load_summary",
    "summarize_records",
    "workload_campaign_descriptors",
    "workload_run_from_record",
    "write_campaign_artifacts",
]
