"""JSON artifact emission and loading for campaigns.

A campaign writes two files into its output directory:

* ``results.jsonl`` — one canonical-JSON line per run, in run order.  Every
  byte is a pure function of the campaign's descriptors, so serial and
  parallel executions of the same campaign produce identical files (the
  artifact-level determinism check in ``tests/test_campaign.py``).
* ``summary.json`` — the aggregated view (per-preset histograms, worst
  contention delays versus the analytical ``ubd``) plus a ``timing`` section
  with wall-clock/cache/job statistics.  ``timing`` is the only
  non-deterministic content; strip it before comparing summaries.

The exact field layout is documented in ``DESIGN.md`` ("Campaign artifact
schema") and demonstrated by ``examples/campaign_artifacts.py``, which loads
a saved campaign and re-renders its report without re-simulating anything.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..errors import AnalysisError
from .runner import CampaignOutcome

#: File names inside a campaign output directory.
RESULTS_NAME = "results.jsonl"
SUMMARY_NAME = "summary.json"


@dataclass(frozen=True)
class CampaignArtifacts:
    """Paths of the files one campaign emitted."""

    directory: Path
    results_path: Path
    summary_path: Path


def write_campaign_artifacts(
    outcome: CampaignOutcome,
    out_dir: os.PathLike,
    summary: Optional[Dict[str, object]] = None,
) -> CampaignArtifacts:
    """Write ``results.jsonl`` and ``summary.json`` for ``outcome``.

    The directory is created on demand; existing artifacts are overwritten
    (a campaign directory always reflects its last run).  Pass ``summary``
    when ``outcome.summary()`` was already computed (e.g. for rendering) to
    avoid aggregating the records twice.
    """
    directory = Path(out_dir)
    try:
        directory.mkdir(parents=True, exist_ok=True)
    except OSError as exc:
        raise AnalysisError(
            f"cannot create campaign output directory {directory}: {exc}"
        ) from exc
    results_path = directory / RESULTS_NAME
    with results_path.open("w", encoding="utf-8") as handle:
        for record in outcome.records:
            handle.write(json.dumps(record, sort_keys=True, separators=(",", ":")))
            handle.write("\n")
    summary_path = directory / SUMMARY_NAME
    with summary_path.open("w", encoding="utf-8") as handle:
        json.dump(
            outcome.summary() if summary is None else summary,
            handle,
            sort_keys=True,
            indent=2,
        )
        handle.write("\n")
    return CampaignArtifacts(
        directory=directory, results_path=results_path, summary_path=summary_path
    )


def load_results(path: os.PathLike) -> List[Dict[str, object]]:
    """Load the per-run records from a ``results.jsonl`` file."""
    records: List[Dict[str, object]] = []
    path = Path(path)
    try:
        with path.open("r", encoding="utf-8") as handle:
            for number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except ValueError as exc:
                    raise AnalysisError(
                        f"{path}:{number}: malformed result record: {exc}"
                    ) from exc
    except OSError as exc:
        raise AnalysisError(f"cannot read campaign results: {exc}") from exc
    return records


def load_summary(path: os.PathLike) -> Dict[str, object]:
    """Load a ``summary.json`` file."""
    path = Path(path)
    try:
        with path.open("r", encoding="utf-8") as handle:
            summary = json.load(handle)
    except (OSError, ValueError) as exc:
        raise AnalysisError(f"cannot read campaign summary: {exc}") from exc
    if not isinstance(summary, dict):
        raise AnalysisError(f"{path}: summary must be a JSON object")
    return summary


def load_campaign(
    directory: os.PathLike,
) -> Tuple[List[Dict[str, object]], Dict[str, object]]:
    """Load ``(records, summary)`` from a campaign output directory."""
    directory = Path(directory)
    return (
        load_results(directory / RESULTS_NAME),
        load_summary(directory / SUMMARY_NAME),
    )
