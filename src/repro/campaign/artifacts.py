"""JSON artifact emission and loading for campaigns.

A campaign writes three files into its output directory:

* ``results.jsonl`` — one canonical-JSON line per run, in run order.  Every
  byte is a pure function of the campaign's descriptors, so serial and
  parallel executions of the same campaign produce identical files (the
  artifact-level determinism check in ``tests/test_campaign.py``).
* ``summary.json`` — the aggregated view (per-preset histograms, worst
  contention delays versus the analytical ``ubd``) plus a ``timing`` section
  with wall-clock/cache/job statistics.  ``timing`` is the only
  non-deterministic content; strip it before comparing summaries.
* ``campaign.json`` — a small manifest stamping the campaign's identity
  (content digest of its ordered run digests), its expected run count and
  whether the campaign *completed*.  A streaming campaign writes the
  manifest with ``"completed": false`` up front and flips it at
  finalisation, so a crashed campaign directory is detectable by the audit
  instead of masquerading as a short but finished sweep.

Streaming: :class:`CampaignStreamWriter` appends result lines while the
campaign runs and periodically rewrites ``summary.json`` from the emitted
prefix, so a long campaign's artifacts are inspectable mid-flight.  The
finalised bytes are identical to a one-shot
:func:`write_campaign_artifacts` — streaming changes *when* artifacts
appear, never what they contain.

The exact field layout is documented in ``DESIGN.md`` ("Campaign artifact
schema") and demonstrated by ``examples/campaign_artifacts.py``, which loads
a saved campaign and re-renders its report without re-simulating anything.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, TextIO, Tuple

from ..errors import AnalysisError
from .runner import CampaignOutcome, summarize_records
from .spec import SCHEMA_VERSION, campaign_digest

#: File names inside a campaign output directory.
RESULTS_NAME = "results.jsonl"
SUMMARY_NAME = "summary.json"
MANIFEST_NAME = "campaign.json"


@dataclass(frozen=True)
class CampaignArtifacts:
    """Paths of the files one campaign emitted."""

    directory: Path
    results_path: Path
    summary_path: Path
    manifest_path: Optional[Path] = None


def build_manifest(
    campaign_id: str,
    total_runs: int,
    completed: bool,
    owner: Optional[str] = None,
) -> Dict[str, object]:
    """The ``campaign.json`` payload: deterministic campaign identity.

    Every field is a pure function of the campaign's descriptors plus the
    ``completed`` flag, so serial and parallel executions finalise
    bit-identical manifests.  ``owner`` names the process that holds the
    in-flight directory (e.g. ``"serve:1234"`` for a daemon job); it is
    stamped only while ``completed`` is false and dropped at finalisation,
    so finished artifacts stay byte-identical regardless of who ran them.
    """
    manifest: Dict[str, object] = {
        "schema": SCHEMA_VERSION,
        "campaign_id": campaign_id,
        "total_runs": total_runs,
        "completed": completed,
    }
    if owner is not None and not completed:
        manifest["owner"] = owner
    return manifest


def _atomic_write_json(path: Path, payload: Dict[str, object]) -> None:
    tmp = path.with_suffix(f".tmp.{os.getpid()}")
    with tmp.open("w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True, indent=2)
        handle.write("\n")
    os.replace(tmp, path)


def write_manifest(directory: os.PathLike, manifest: Dict[str, object]) -> Path:
    """Atomically write ``campaign.json`` into ``directory``."""
    path = Path(directory) / MANIFEST_NAME
    _atomic_write_json(path, manifest)
    return path


def load_manifest(directory: os.PathLike) -> Optional[Dict[str, object]]:
    """Load ``campaign.json`` if present; ``None`` for pre-manifest layouts.

    A *present but unreadable* manifest raises — a campaign directory whose
    identity stamp is garbage should fail loudly, not silently downgrade to
    the legacy layout.
    """
    path = Path(directory) / MANIFEST_NAME
    if not path.exists():
        return None
    try:
        with path.open("r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except (OSError, ValueError) as exc:
        raise AnalysisError(f"cannot read campaign manifest {path}: {exc}") from exc
    if not isinstance(manifest, dict):
        raise AnalysisError(f"{path}: campaign manifest must be a JSON object")
    return manifest


class CampaignStreamWriter:
    """Incremental artifact writer: results stream, summary checkpoints.

    The runner appends result records (in final order) as shards complete;
    the writer keeps ``results.jsonl`` flushed line-by-line, rewrites
    ``summary.json`` at most every ``checkpoint_interval`` seconds, and
    marks the manifest ``completed`` only at :meth:`finalize`.  All content
    written here uses the exact serialisation of
    :func:`write_campaign_artifacts`, which is what keeps streamed and
    one-shot artifacts byte-identical.
    """

    def __init__(
        self,
        out_dir: os.PathLike,
        checkpoint_interval: float = 2.0,
        owner: Optional[str] = None,
    ) -> None:
        self.owner = owner
        self.directory = Path(out_dir)
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise AnalysisError(
                f"cannot create campaign output directory {self.directory}: {exc}"
            ) from exc
        self.checkpoint_interval = checkpoint_interval
        self.results_path = self.directory / RESULTS_NAME
        self.summary_path = self.directory / SUMMARY_NAME
        self.manifest_path = self.directory / MANIFEST_NAME
        self._handle: Optional[TextIO] = None
        self._emitted: List[Dict[str, object]] = []
        self._last_checkpoint = 0.0
        self._campaign_id: Optional[str] = None
        self._total_runs = 0

    @property
    def emitted(self) -> int:
        """Number of result records streamed so far."""
        return len(self._emitted)

    def begin(self, campaign_id: str, total_runs: int) -> None:
        """Open the stream: truncate ``results.jsonl``, stamp the manifest
        as in-flight (``completed: false``)."""
        self._campaign_id = campaign_id
        self._total_runs = total_runs
        write_manifest(
            self.directory,
            build_manifest(campaign_id, total_runs, False, owner=self.owner),
        )
        self._handle = self.results_path.open("w", encoding="utf-8")
        self._last_checkpoint = time.monotonic()

    def append(self, records: Sequence[Dict[str, object]]) -> None:
        """Stream ``records`` (already in final order) to ``results.jsonl``
        and checkpoint the summary when the interval elapsed."""
        if self._handle is None:
            raise AnalysisError("CampaignStreamWriter.append before begin()")
        for record in records:
            self._handle.write(json.dumps(record, sort_keys=True, separators=(",", ":")))
            self._handle.write("\n")
            self._emitted.append(record)
        self._handle.flush()
        if (
            self._emitted
            and time.monotonic() - self._last_checkpoint >= self.checkpoint_interval
        ):
            self.checkpoint()

    def checkpoint(self) -> None:
        """Rewrite ``summary.json`` from the emitted prefix (atomically).

        The checkpoint is a valid summary of the runs emitted so far; its
        ``timing`` section carries ``"partial": true`` so readers (and the
        audit) can tell an in-flight snapshot from a finished campaign.
        """
        if not self._emitted:
            return
        summary = summarize_records(self._emitted)
        summary["timing"] = {
            "partial": True,
            "emitted": len(self._emitted),
            "total_runs": self._total_runs,
        }
        _atomic_write_json(self.summary_path, summary)
        self._last_checkpoint = time.monotonic()

    def finalize(self, summary: Dict[str, object]) -> CampaignArtifacts:
        """Write the final ``summary.json``, flip the manifest to
        ``completed`` and close the results stream."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        _atomic_write_json(self.summary_path, summary)
        assert self._campaign_id is not None, "finalize before begin()"
        write_manifest(
            self.directory,
            build_manifest(self._campaign_id, self._total_runs, True),
        )
        return CampaignArtifacts(
            directory=self.directory,
            results_path=self.results_path,
            summary_path=self.summary_path,
            manifest_path=self.manifest_path,
        )

    def abandon(self) -> None:
        """Close the stream without completing (the manifest stays
        ``completed: false`` — the crash signature the audit detects)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def write_campaign_artifacts(
    outcome: CampaignOutcome,
    out_dir: os.PathLike,
    summary: Optional[Dict[str, object]] = None,
) -> CampaignArtifacts:
    """Write ``results.jsonl``, ``summary.json`` and the manifest for
    ``outcome``.

    The directory is created on demand; existing artifacts are overwritten
    (a campaign directory always reflects its last run).  Pass ``summary``
    when ``outcome.summary()`` was already computed (e.g. for rendering) to
    avoid aggregating the records twice.
    """
    directory = Path(out_dir)
    try:
        directory.mkdir(parents=True, exist_ok=True)
    except OSError as exc:
        raise AnalysisError(
            f"cannot create campaign output directory {directory}: {exc}"
        ) from exc
    results_path = directory / RESULTS_NAME
    with results_path.open("w", encoding="utf-8") as handle:
        for record in outcome.records:
            handle.write(json.dumps(record, sort_keys=True, separators=(",", ":")))
            handle.write("\n")
    summary_path = directory / SUMMARY_NAME
    with summary_path.open("w", encoding="utf-8") as handle:
        json.dump(
            outcome.summary() if summary is None else summary,
            handle,
            sort_keys=True,
            indent=2,
        )
        handle.write("\n")
    campaign_id = campaign_digest(
        [str(record.get("digest", "")) for record in outcome.records]
    )
    manifest_path = write_manifest(
        directory, build_manifest(campaign_id, len(outcome.records), True)
    )
    return CampaignArtifacts(
        directory=directory,
        results_path=results_path,
        summary_path=summary_path,
        manifest_path=manifest_path,
    )


def load_results(path: os.PathLike) -> List[Dict[str, object]]:
    """Load the per-run records from a ``results.jsonl`` file."""
    records: List[Dict[str, object]] = []
    path = Path(path)
    try:
        with path.open("r", encoding="utf-8") as handle:
            for number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except ValueError as exc:
                    raise AnalysisError(
                        f"{path}:{number}: malformed result record: {exc}"
                    ) from exc
    except OSError as exc:
        raise AnalysisError(f"cannot read campaign results: {exc}") from exc
    return records


def load_summary(path: os.PathLike) -> Dict[str, object]:
    """Load a ``summary.json`` file."""
    path = Path(path)
    try:
        with path.open("r", encoding="utf-8") as handle:
            summary = json.load(handle)
    except (OSError, ValueError) as exc:
        raise AnalysisError(f"cannot read campaign summary: {exc}") from exc
    if not isinstance(summary, dict):
        raise AnalysisError(f"{path}: summary must be a JSON object")
    return summary


def load_campaign(
    directory: os.PathLike,
) -> Tuple[List[Dict[str, object]], Dict[str, object]]:
    """Load ``(records, summary)`` from a campaign output directory."""
    directory = Path(directory)
    return (
        load_results(directory / RESULTS_NAME),
        load_summary(directory / SUMMARY_NAME),
    )
