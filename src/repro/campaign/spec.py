"""Campaign specifications and picklable run descriptors.

A *campaign* is the paper's experimental unit: hundreds of contended
simulation runs swept over platforms, workloads, contender counts, arbiters
and seeds (Section 5 runs "8 randomly generated 4-task workloads" per
platform, plus rsk reference workloads, for every figure).  This module
declares such sweeps:

* :class:`RunDescriptor` — one fully specified simulation run.  Descriptors
  are frozen dataclasses of frozen dataclasses, so they pickle cleanly across
  ``ProcessPoolExecutor`` boundaries and hash stably for the result cache.
* :class:`CampaignSpec` — the grid (preset x arbiter x contender count x
  seed x workload) that expands deterministically into descriptors.

Determinism contract: expanding the same spec always yields the same
descriptors in the same order, and a descriptor fully determines its
simulation result — which is what makes parallel execution and content-
addressed caching safe.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

from ..config import ArchConfig, TopologyConfig, canonical_digest, get_preset
from ..errors import MethodologyError, ReproError
from ..kernels.synthetic import synthetic_kernel_names
from ..methodology.workloads import random_workloads

#: Version stamp embedded in digests and artifacts; bump when the meaning of
#: a descriptor field or the result record layout changes, so stale cache
#: entries and artifacts are never misread.  Version 2: configurations carry
#: a ``topology`` section (shared-resource chaining) and records a
#: ``topology`` field.  Version 3: the topology section grows the
#: ``split_bus`` response-channel parameters (``response_arbitration``,
#: ``response_tdma_slot``), which changes every embedded configuration
#: dictionary and therefore every digest.  Version 4: rsk records carry the
#: per-resource measured-bound fields (``stage_worst_case`` per-resource
#: observed worst cases, ``memory_requests``, isolation ``memory_requests``)
#: and summary buckets carry ``analytical_terms`` plus the per-stage
#: aggregated ``stage_worst_case`` next to ``end_to_end_ubd``.
SCHEMA_VERSION = 4

#: Workload kinds a descriptor can request.
KIND_SYNTHETIC = "synthetic"
KIND_RSK = "rsk"


@dataclass(frozen=True)
class RunDescriptor:
    """One simulation run of a campaign, fully specified and picklable.

    Attributes:
        run_id: position of the run inside its campaign (zero-padded string);
            stable across serial and parallel execution but *excluded* from
            the content digest so identical runs from different campaigns
            share cache entries.
        preset: label of the platform the configuration came from (reporting
            only; the authoritative platform is ``config``).
        config: the complete platform, including any arbiter override.
        kind: ``"synthetic"`` (EEMBC-like multiprogrammed workload) or
            ``"rsk"`` (resource-stressing kernels, the worst-case contenders).
        tasks: synthetic kernel names, one per occupied core, observed task
            first in core order.  For rsk runs the tuple is informational
            (``("rsk-load", ...)``); its length still sets the occupied cores.
        observed_core: core whose execution time and trace are analysed.
        iterations: loop iterations of the observed program.
        seed: seed for the observed/contender synthetic program generators.
        rsk_kind: bus access type of rsk runs (``"load"`` or ``"store"``).
    """

    run_id: str
    preset: str
    config: ArchConfig
    kind: str
    tasks: Tuple[str, ...]
    observed_core: int
    iterations: int
    seed: int
    rsk_kind: str = "load"

    def __post_init__(self) -> None:
        if self.kind not in (KIND_SYNTHETIC, KIND_RSK):
            raise MethodologyError(f"unknown run kind {self.kind!r}")
        if self.rsk_kind not in ("load", "store"):
            raise MethodologyError(f"unknown rsk kind {self.rsk_kind!r}")
        if not self.tasks:
            raise MethodologyError("a run descriptor needs at least one task")
        if len(self.tasks) > self.config.num_cores:
            raise MethodologyError(
                f"run {self.run_id}: {len(self.tasks)} tasks for "
                f"{self.config.num_cores} cores"
            )
        if not 0 <= self.observed_core < len(self.tasks):
            raise MethodologyError(
                f"run {self.run_id}: observed core {self.observed_core} is not "
                f"one of the {len(self.tasks)} occupied cores"
            )
        if self.iterations < 1:
            raise MethodologyError("observed iterations must be positive")

    @property
    def contenders(self) -> int:
        """Number of co-running contender tasks."""
        return len(self.tasks) - 1

    def digest(self) -> str:
        """Content hash identifying this run's *result* (cache key).

        ``run_id``, ``preset`` and the configuration's ``name`` are labels,
        not simulation inputs, so they do not participate; everything that
        can change a single simulated cycle does.  The simulation ``engine``
        is excluded too: both engines are cycle-exact (property-tested), so
        campaigns run with either engine share cache entries.
        """
        config_dict = self.config.to_dict()
        del config_dict["name"]
        del config_dict["engine"]
        return canonical_digest(
            {
                "schema": SCHEMA_VERSION,
                "config": config_dict,
                "kind": self.kind,
                "tasks": list(self.tasks),
                "observed_core": self.observed_core,
                "iterations": self.iterations,
                "seed": self.seed,
                "rsk_kind": self.rsk_kind,
            }
        )


@dataclass(frozen=True)
class CampaignSpec:
    """Declarative grid of runs: preset x arbiter x contenders x seed x workload.

    Attributes:
        presets: platform preset names (``ref``, ``var``, ``small``,
            ``multi_resource``).
        arbiters: bus arbitration policies to sweep; each overrides the
            preset's ``BusConfig.arbitration``.
        topologies: shared-resource topologies to sweep; each overrides the
            *name* of the preset's ``TopologyConfig``, keeping the preset's
            memory-side arbitration parameters.  ``()`` keeps every
            preset's own topology — the backwards-compatible default.
        contender_counts: numbers of co-runners to sweep; ``()`` means the
            platform maximum (``num_cores - 1``), the paper's default.
        seeds: base seeds; each seed draws an independent set of workloads.
        num_workloads: random synthetic workloads per grid point.
        iterations: loop iterations of the observed task.
        include_rsk_reference: also run the rsk contrast workload per grid
            point (the light bars of Figure 6(a)).
        rsk_iterations: loop iterations of the observed rsk.
        kernel_pool: synthetic kernel names to draw from (default full suite).
        engine: simulation engine for every run (``"event"`` — the fast
            path — or ``"stepped"``, the cycle-by-cycle oracle).  Both are
            cycle-exact, so this never changes results or cache keys.
    """

    presets: Tuple[str, ...] = ("ref",)
    arbiters: Tuple[str, ...] = ("round_robin",)
    topologies: Tuple[str, ...] = ()
    contender_counts: Tuple[int, ...] = ()
    seeds: Tuple[int, ...] = (2015,)
    num_workloads: int = 8
    iterations: int = 25
    include_rsk_reference: bool = True
    rsk_iterations: int = 125
    kernel_pool: Optional[Tuple[str, ...]] = None
    engine: str = "event"

    def __post_init__(self) -> None:
        from ..sim.scheduler import registered_engines

        if self.engine not in registered_engines():
            raise MethodologyError(
                f"unknown simulation engine {self.engine!r}; "
                f"registered: {list(registered_engines())}"
            )
        if not self.presets:
            raise MethodologyError("a campaign needs at least one preset")
        if not self.arbiters:
            raise MethodologyError("a campaign needs at least one arbiter")
        for topology in self.topologies:
            try:
                TopologyConfig(name=topology)
            except ReproError as exc:
                raise MethodologyError(f"unknown topology {topology!r}") from exc
        if not self.seeds:
            raise MethodologyError("a campaign needs at least one seed")
        if self.num_workloads < 0:
            raise MethodologyError("num_workloads must be non-negative")
        if self.iterations < 1 or self.rsk_iterations < 1:
            raise MethodologyError("iteration counts must be positive")
        for count in self.contender_counts:
            if count < 1:
                raise MethodologyError("contender counts must be positive")

    def to_dict(self) -> dict:
        """JSON-ready form; the service protocol's wire representation.

        Inverse of :meth:`from_dict`.  Tuples become lists (JSON has no
        tuples); the round-trip is exact because every field is a scalar
        or a flat sequence of scalars.
        """
        return {
            "presets": list(self.presets),
            "arbiters": list(self.arbiters),
            "topologies": list(self.topologies),
            "contender_counts": list(self.contender_counts),
            "seeds": list(self.seeds),
            "num_workloads": self.num_workloads,
            "iterations": self.iterations,
            "include_rsk_reference": self.include_rsk_reference,
            "rsk_iterations": self.rsk_iterations,
            "kernel_pool": list(self.kernel_pool) if self.kernel_pool is not None else None,
            "engine": self.engine,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CampaignSpec":
        """Rebuild a spec from :meth:`to_dict` output (or a spec JSON file).

        Unknown keys are rejected — a typo'd field silently falling back to
        a default would run the wrong grid.  Missing keys keep their
        defaults, so hand-written spec files stay terse.
        """
        if not isinstance(payload, dict):
            raise MethodologyError(
                f"campaign spec must be a JSON object, got {type(payload).__name__}"
            )
        known = {
            "presets",
            "arbiters",
            "topologies",
            "contender_counts",
            "seeds",
            "num_workloads",
            "iterations",
            "include_rsk_reference",
            "rsk_iterations",
            "kernel_pool",
            "engine",
        }
        unknown = sorted(set(payload) - known)
        if unknown:
            raise MethodologyError(f"unknown campaign spec fields: {', '.join(unknown)}")
        kwargs: dict = dict(payload)
        for field in ("presets", "arbiters", "topologies"):
            if field in kwargs:
                kwargs[field] = tuple(str(value) for value in kwargs[field])
        for field in ("contender_counts", "seeds"):
            if field in kwargs:
                kwargs[field] = tuple(int(value) for value in kwargs[field])
        if kwargs.get("kernel_pool") is not None and "kernel_pool" in kwargs:
            kwargs["kernel_pool"] = tuple(str(value) for value in kwargs["kernel_pool"])
        try:
            return cls(**kwargs)
        except TypeError as exc:
            raise MethodologyError(f"invalid campaign spec: {exc}") from exc

    def expand(self) -> Tuple[RunDescriptor, ...]:
        """Expand the grid into an ordered tuple of run descriptors."""
        pool = (
            list(self.kernel_pool)
            if self.kernel_pool is not None
            else list(synthetic_kernel_names())
        )
        descriptors: List[RunDescriptor] = []
        for preset in self.presets:
            base = get_preset(preset)
            # () keeps the preset's own topology (None marks "no override").
            topology_axis = self.topologies or (None,)
            for arbiter in self.arbiters:
                for topology in topology_axis:
                    config = base.with_overrides(
                        bus=replace(base.bus, arbitration=arbiter),
                        engine=self.engine,
                    )
                    if topology is not None:
                        config = config.with_topology_name(topology)
                    counts = self.contender_counts or (config.num_cores - 1,)
                    for count in counts:
                        if count >= config.num_cores:
                            raise MethodologyError(
                                f"preset {preset!r} has {config.num_cores} cores; "
                                f"cannot host {count} contenders"
                            )
                        for seed in self.seeds:
                            if self.num_workloads:
                                workloads = random_workloads(
                                    self.num_workloads,
                                    count + 1,
                                    seed=seed,
                                    names=pool,
                                )
                                for index, tasks in enumerate(workloads):
                                    descriptors.append(
                                        RunDescriptor(
                                            run_id=_run_id(len(descriptors)),
                                            preset=preset,
                                            config=config,
                                            kind=KIND_SYNTHETIC,
                                            tasks=tasks,
                                            observed_core=0,
                                            iterations=self.iterations,
                                            seed=seed + index,
                                        )
                                    )
                            if self.include_rsk_reference:
                                descriptors.append(
                                    RunDescriptor(
                                        run_id=_run_id(len(descriptors)),
                                        preset=preset,
                                        config=config,
                                        kind=KIND_RSK,
                                        tasks=tuple("rsk-load" for _ in range(count + 1)),
                                        observed_core=0,
                                        iterations=self.rsk_iterations,
                                        seed=seed,
                                    )
                                )
        if not descriptors:
            raise MethodologyError(
                "campaign expands to zero runs; enable workloads or the rsk reference"
            )
        return tuple(descriptors)


def workload_campaign_descriptors(
    config: ArchConfig,
    workloads: Sequence[Tuple[str, ...]],
    observed_core: int = 0,
    observed_iterations: int = 30,
    seed: int = 2015,
) -> Tuple[RunDescriptor, ...]:
    """Descriptors for an explicit workload list on one platform.

    This is the bridge used by
    :func:`repro.methodology.workloads.run_workload_campaign`: the legacy
    serial sweep and the parallel engine share these descriptors, which is
    what guarantees bit-identical results on either path.
    """
    return tuple(
        RunDescriptor(
            run_id=_run_id(index),
            preset=config.name,
            config=config,
            kind=KIND_SYNTHETIC,
            tasks=tuple(tasks),
            observed_core=observed_core,
            iterations=observed_iterations,
            seed=seed + index,
        )
        for index, tasks in enumerate(workloads)
    )


def campaign_digest(digests: Sequence[str]) -> str:
    """Content identity of a campaign: the digest of its ordered run digests.

    Pure function of the expanded descriptors, so serial and parallel
    executions (and re-runs on any machine) agree on it; stamped into the
    ``campaign.json`` manifest and onto the result store's rows for
    per-campaign attribution.
    """
    return canonical_digest({"schema": SCHEMA_VERSION, "runs": list(digests)})


def _run_id(index: int) -> str:
    return f"{index:05d}"
