"""Content-addressed result cache for campaign runs.

Every run descriptor hashes to a digest of everything that can influence its
simulated cycles (configuration, programs, seeds — see
:meth:`repro.campaign.spec.RunDescriptor.digest`).  The cache maps that
digest to the run's JSON result record, so re-running a campaign only
simulates cache misses: a warm re-run of an unchanged campaign performs zero
simulations, and editing one axis of the grid only re-simulates the affected
runs.

Records are stored one file per digest (``<digest>.json``) under a flat
directory.  Writes go through a temporary file plus ``os.replace`` so a
killed campaign never leaves a truncated record behind; unreadable entries
are treated as misses and overwritten.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple

from ..errors import ConfigurationError


class ResultCache:
    """Digest-keyed JSON store under ``directory`` (created on demand)."""

    def __init__(self, directory: os.PathLike) -> None:
        self.directory = Path(directory)
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise ConfigurationError(
                f"cannot use {self.directory} as a result cache: {exc}"
            ) from exc

    def _path(self, digest: str) -> Path:
        return self.directory / f"{digest}.json"

    def get(self, digest: str) -> Optional[Dict[str, object]]:
        """Return the cached record for ``digest``, or ``None`` on a miss.

        A corrupt or unreadable entry counts as a miss, and so does a record
        whose embedded digest disagrees with its file name (e.g. a file
        copied into the cache under the wrong name): the run is simply
        re-simulated and the entry rewritten.
        """
        path = self._path(digest)
        try:
            with path.open("r", encoding="utf-8") as handle:
                record = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(record, dict) or record.get("digest") != digest:
            return None
        return record

    def put(self, digest: str, record: Dict[str, object]) -> None:
        """Store ``record`` under ``digest`` atomically."""
        path = self._path(digest)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with tmp.open("w", encoding="utf-8") as handle:
            json.dump(record, handle, sort_keys=True, separators=(",", ":"))
        os.replace(tmp, path)

    def get_many(self, digests: Sequence[str]) -> Dict[str, Dict[str, object]]:
        """Batched lookup: one filesystem probe per digest (no index).

        This is the interface the campaign runner drives; the SQLite-backed
        :class:`~repro.campaign.store.ResultStore` resolves the same call
        with one query per ~500 digests, which is where the warm-path
        throughput difference comes from.
        """
        hits: Dict[str, Dict[str, object]] = {}
        for digest in digests:
            if digest in hits:
                continue
            record = self.get(digest)
            if record is not None:
                hits[digest] = record
        return hits

    def put_many(self, items: Sequence[Tuple[str, Dict[str, object]]]) -> None:
        """Batched store: one atomic file write per record."""
        for digest, record in items:
            self.put(digest, record)

    def __contains__(self, digest: str) -> bool:
        return self._path(digest).is_file()

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.json"))
